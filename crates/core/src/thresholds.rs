//! The three input-dependence tests and their thresholds (Figure 9c).

use crate::BranchState;

/// How the MEAN-test threshold is chosen.
///
/// The paper sets `MEAN_th` to the program's overall branch prediction
/// accuracy, "determined at the end of the profiling run for each benchmark"
/// (§4.1) — i.e. the threshold adapts per program. A fixed value is also
/// supported for sensitivity studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MeanThreshold {
    /// Use the profiling run's overall prediction accuracy (the paper's
    /// choice).
    ProgramAccuracy,
    /// Use a fixed accuracy in `[0, 1]`.
    Fixed(f64),
}

/// Threshold set for the MEAN/STD/PAM tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// MEAN-test threshold: a branch passes if its mean slice accuracy is
    /// *below* this.
    pub mean: MeanThreshold,
    /// STD-test threshold: a branch passes if the standard deviation of its
    /// slice accuracies *exceeds* this. The paper uses 4 (percentage
    /// points), i.e. 0.04 in fraction units.
    pub std: f64,
    /// PAM-test threshold: a branch passes if its fraction of
    /// points-above-mean lies within `[pam, 1 − pam]`. Two-tailed outlier
    /// filter; default 0.05.
    pub pam: f64,
}

impl Thresholds {
    /// The paper's thresholds: `MEAN_th` = program accuracy, `STD_th` = 0.04,
    /// `PAM_th` = 0.05.
    pub fn paper() -> Self {
        Self {
            mean: MeanThreshold::ProgramAccuracy,
            std: 0.04,
            pam: 0.05,
        }
    }

    /// Resolves the MEAN threshold against the profiling run's measured
    /// overall accuracy.
    pub fn resolve_mean(&self, program_accuracy: f64) -> f64 {
        match self.mean {
            MeanThreshold::ProgramAccuracy => program_accuracy,
            MeanThreshold::Fixed(v) => v,
        }
    }

    /// Applies the three tests to already-computed slice statistics: the
    /// mean and standard deviation of a branch's (filtered) slice
    /// accuracies, its points-above-mean fraction, and the program accuracy
    /// the MEAN threshold resolves against.
    ///
    /// This is the pure comparison step of Figure 9c, shared by the
    /// end-of-run evaluation and the streaming profiler's windowed verdicts
    /// (which feed it sliding-window statistics instead of whole-run ones).
    pub fn apply(
        &self,
        mean: f64,
        std_dev: f64,
        pam_fraction: f64,
        program_accuracy: f64,
    ) -> TestOutcomes {
        let mean_th = self.resolve_mean(program_accuracy);
        TestOutcomes {
            mean: mean < mean_th,
            std: std_dev > self.std,
            pam: pam_fraction >= self.pam && pam_fraction <= 1.0 - self.pam,
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Self::paper()
    }
}

/// Outcome of the three tests for one branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestOutcomes {
    /// MEAN-test: mean slice accuracy below `MEAN_th`.
    pub mean: bool,
    /// STD-test: slice-accuracy standard deviation above `STD_th`.
    pub std: bool,
    /// PAM-test: points-above-mean fraction inside the two-tailed window.
    pub pam: bool,
}

impl TestOutcomes {
    /// The paper's combination rule (Figure 9c lines 26–28): a branch is
    /// predicted input-dependent iff it passes the PAM-test *and* at least
    /// one of the MEAN-test and STD-test.
    pub fn predicts_dependent(&self) -> bool {
        (self.mean || self.std) && self.pam
    }
}

/// Runs the three tests on a branch's end-of-run statistics.
///
/// Returns `None` if the branch accumulated no counted slices (the paper has
/// nothing to test in that case; such branches default to input-independent
/// downstream).
pub(crate) fn evaluate(
    state: &BranchState,
    thresholds: &Thresholds,
    program_accuracy: f64,
) -> Option<TestOutcomes> {
    let mean = state.mean()?;
    let std = state.std_dev().expect("mean exists implies std exists");
    let pam_frac = state
        .points_above_mean()
        .expect("mean exists implies PAM exists");
    Some(thresholds.apply(mean, std, pam_frac, program_accuracy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state_with_slices(accs: &[(u64, u64)]) -> BranchState {
        // (correct, wrong) per slice, threshold 10
        let mut s = BranchState::new();
        for &(c, w) in accs {
            for _ in 0..c {
                s.record(true);
            }
            for _ in 0..w {
                s.record(false);
            }
            s.end_slice(10);
        }
        s
    }

    #[test]
    fn paper_default_thresholds() {
        let t = Thresholds::default();
        assert_eq!(t.mean, MeanThreshold::ProgramAccuracy);
        assert!((t.std - 0.04).abs() < 1e-12);
        assert!((t.pam - 0.05).abs() < 1e-12);
        assert!((t.resolve_mean(0.93) - 0.93).abs() < 1e-12);
        let f = Thresholds {
            mean: MeanThreshold::Fixed(0.8),
            ..t
        };
        assert!((f.resolve_mean(0.93) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn combination_rule() {
        let cases = [
            // (mean, std, pam) -> dependent?
            ((false, false, false), false),
            ((true, false, false), false), // fails PAM
            ((false, true, false), false),
            ((false, false, true), false), // PAM alone is not enough
            ((true, false, true), true),
            ((false, true, true), true),
            ((true, true, true), true),
        ];
        for ((m, s, p), expect) in cases {
            let o = TestOutcomes {
                mean: m,
                std: s,
                pam: p,
            };
            assert_eq!(o.predicts_dependent(), expect, "case {:?}", (m, s, p));
        }
    }

    #[test]
    fn phased_branch_passes_std_and_pam() {
        // Half the slices near 55%, half near 95%, with per-slice jitter as
        // real predictor accuracies always have: large std, PAM near 0.5.
        let slices: Vec<(u64, u64)> = (0..40u64)
            .map(|i| {
                let base = if i < 20 { 55 } else { 95 };
                let jitter = (i * 7) % 5; // 0..4 extra correct predictions
                let c = base + jitter;
                (c, 100 - c)
            })
            .collect();
        let s = state_with_slices(&slices);
        let o = evaluate(&s, &Thresholds::default(), 0.95).unwrap();
        assert!(o.std, "std {:?} should exceed 0.04", s.std_dev());
        assert!(
            o.pam,
            "PAM fraction {:?} should be mid-range",
            s.points_above_mean()
        );
        assert!(o.predicts_dependent());
    }

    #[test]
    fn stable_low_accuracy_branch_fails_pam() {
        // The paper's Figure 8 (right): accuracy ~58% but perfectly stable.
        // MEAN passes (58% < program accuracy 95%) but PAM fails because no
        // slice deviates from the mean.
        let slices: Vec<(u64, u64)> = (0..40).map(|_| (58, 42)).collect();
        let s = state_with_slices(&slices);
        let o = evaluate(&s, &Thresholds::default(), 0.95).unwrap();
        assert!(o.mean);
        assert!(!o.std);
        assert!(!o.pam, "constant series has zero points above mean");
        assert!(!o.predicts_dependent());
    }

    #[test]
    fn outlier_only_variation_fails_pam() {
        // One trailing outlier slice out of 40: STD passes, but no slice ever
        // rises above the running mean (the stable ones equal it, the outlier
        // is below it), so the PAM fraction is 0 and the two-tailed filter
        // rejects the branch — exactly the outlier case PAM exists for.
        let mut slices: Vec<(u64, u64)> = (0..39).map(|_| (95, 5)).collect();
        slices.push((20, 80));
        let s = state_with_slices(&slices);
        let o = evaluate(&s, &Thresholds::default(), 0.93).unwrap();
        assert!(o.std, "the outlier inflates std: {:?}", s.std_dev());
        assert_eq!(s.points_above_mean(), Some(0.0));
        assert!(!o.pam);
        assert!(!o.predicts_dependent());
    }

    #[test]
    fn no_slices_yields_none() {
        let s = BranchState::new();
        assert_eq!(evaluate(&s, &Thresholds::default(), 0.9), None);
    }

    #[test]
    fn high_accuracy_stable_branch_is_independent() {
        let slices: Vec<(u64, u64)> = (0..40).map(|_| (99, 1)).collect();
        let s = state_with_slices(&slices);
        let o = evaluate(&s, &Thresholds::default(), 0.93).unwrap();
        assert!(!o.mean, "99% > program accuracy");
        assert!(!o.std);
        assert!(!o.predicts_dependent());
    }
}
