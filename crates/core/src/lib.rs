//! `twodprof_core` — the 2D-profiling algorithm from *"2D-Profiling:
//! Detecting Input-Dependent Branches with a Single Input Data Set"*
//! (Kim, Suleman, Mutlu, Patt — CGO 2006), plus the evaluation machinery the
//! paper builds around it.
//!
//! # What 2D-profiling is
//!
//! Ordinary branch profiling records one number per static branch (its
//! aggregate prediction accuracy, or its taken rate). 2D-profiling records a
//! second dimension — *time* — by splitting a single profiling run into
//! fixed-size **slices** and tracking each branch's per-slice prediction
//! accuracy. Branches whose accuracy varies across slices are predicted to be
//! **input-dependent**: their accuracy would also change if the program were
//! run with a different input set. That prediction is made from *one* input
//! set, which is the paper's headline contribution.
//!
//! # Module map
//!
//! - [`TwoDProfiler`] — the profiler (Figure 9 of the paper): per-branch
//!   7-variable state, FIR-filtered slice accuracies, MEAN/STD/PAM tests.
//! - [`ProfileReport`] — per-branch statistics and classifications.
//! - [`GroundTruth`] — the multi-input-set definition of input-dependence
//!   used to *evaluate* the profiler (5% accuracy-delta rule, §2/§4.2).
//! - [`Metrics`] — COV-dep / ACC-dep / COV-indep / ACC-indep (Table 3).
//! - [`CostModel`] — the if-conversion cost model motivating the work
//!   (§2.1, Figure 2), and [`advise`] for the wish-branch decision on top.
//! - [`Bias2DProfiler`] — the edge-profiling variant the paper sketches:
//!   the same tests applied to per-slice branch *bias* instead of prediction
//!   accuracy, requiring no predictor model at all.
//!
//! # Example
//!
//! ```
//! use bpred::Gshare;
//! use btrace::{SiteId, Tracer};
//! use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
//!
//! // Site 0 flips behaviour halfway through the run (phase behaviour):
//! // unpredictable noise first, then a steady direction. Site 1 stays
//! // trivially predictable throughout. 2D-profiling flags only site 0.
//! let mut prof = TwoDProfiler::new(2, Gshare::new_4kb(), SliceConfig::new(1_000, 16));
//! for i in 0..100_000u64 {
//!     let noise = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).count_ones() % 2 == 0;
//!     let phase_taken = if i < 50_000 { noise } else { true };
//!     prof.branch(SiteId(0), phase_taken);
//!     prof.branch(SiteId(1), true);
//! }
//! let report = prof.finish(Thresholds::default());
//! assert!(report.classification(SiteId(0)).is_dependent());
//! assert!(!report.classification(SiteId(1)).is_dependent());
//! ```

mod accum;
mod bias2d;
mod ground_truth;
mod ifconv;
mod metrics;
mod phases;
mod profiler;
mod report;
mod slice;
mod state;
mod thresholds;
mod wish;

pub use accum::SliceAccum;
pub use bias2d::Bias2DProfiler;
pub use ground_truth::{GroundTruth, GroundTruthBuilder, InputDependence};
pub use ifconv::{CostModel, PredicationDecision};
pub use metrics::{Confusion, Metrics};
pub use phases::{detect_phases, detect_phases_in_series, Phase, PhaseConfig};
pub use profiler::TwoDProfiler;
pub use report::{BranchStats, Classification, ProfileReport};
pub use slice::SliceConfig;
pub use state::BranchState;
pub use thresholds::{MeanThreshold, TestOutcomes, Thresholds};
pub use wish::{advise, BranchAdvice, BranchTreatment};

/// The paper's input-dependence threshold: a branch is input-dependent if its
/// prediction accuracy differs by more than 5% (absolute) across input sets.
pub const INPUT_DEPENDENCE_DELTA: f64 = 0.05;
