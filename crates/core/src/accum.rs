//! Slice-boundary accounting shared by the per-event profiler and the
//! engine's batched bit-sliced replay.
//!
//! [`SliceAccum`] owns everything in a 2D-profiling run *except* the
//! predictor simulation: the per-branch [`BranchState`](crate::BranchState)
//! table, the global slice clock, the program-accuracy totals, optional
//! time-series recording, and the finish-time MEAN/STD/PAM evaluation.
//! [`TwoDProfiler`](crate::TwoDProfiler) drives it one event at a time;
//! the sweep engine's bit-sliced lane group drives it in per-site batches,
//! folding each site's `(executions, correct)` once per slice.
//!
//! Both drivers produce bit-identical [`ProfileReport`]s because every
//! per-event quantity is a `u64` addition (associative, so batch order
//! within a slice is irrelevant) and all floating-point arithmetic happens
//! here, at slice boundaries, in site order — exactly where and how the
//! per-event path has always done it.

use crate::report::SeriesData;
use crate::thresholds::evaluate;
use crate::{BranchStats, Classification, ProfileReport, SliceConfig, Thresholds};
use btrace::SiteId;

/// Slice accounting for one profiling run: per-branch state, the global
/// slice clock, and the end-of-run classification fold.
#[derive(Clone, Debug)]
pub struct SliceAccum {
    states: Vec<crate::BranchState>,
    config: SliceConfig,
    in_slice: u64,
    slice_index: u64,
    total_exec: u64,
    total_correct: u64,
    slice_exec: u64,
    slice_correct: u64,
    series: Option<SeriesData>,
}

impl SliceAccum {
    /// Creates accounting for a workload with `num_sites` static branches,
    /// slicing the run per `config`.
    pub fn new(num_sites: usize, config: SliceConfig) -> Self {
        twodprof_obs::counter!(
            "profiler_branches_tracked_total",
            "Static branch sites tracked across all profiler instances."
        )
        .add(num_sites as u64);
        Self {
            states: vec![crate::BranchState::new(); num_sites],
            config,
            in_slice: 0,
            slice_index: 0,
            total_exec: 0,
            total_correct: 0,
            slice_exec: 0,
            slice_correct: 0,
            series: None,
        }
    }

    /// Like [`new`](Self::new), but additionally records each branch's
    /// per-slice filtered accuracy and the per-slice overall program
    /// accuracy, for time-series plots like the paper's Figure 8.
    ///
    /// Costs `O(sites × slices)` memory; leave disabled for large sweeps.
    pub fn with_series(num_sites: usize, config: SliceConfig) -> Self {
        let mut a = Self::new(num_sites, config);
        a.series = Some(SeriesData {
            per_site: vec![Vec::new(); num_sites],
            overall: Vec::new(),
        });
        a
    }

    /// The slice configuration in effect.
    pub fn config(&self) -> SliceConfig {
        self.config
    }

    /// Per-branch state accumulated so far.
    pub fn state(&self, site: SiteId) -> &crate::BranchState {
        &self.states[site.index()]
    }

    /// Total dynamic branch events recorded.
    pub fn total_events(&self) -> u64 {
        self.total_exec
    }

    /// Events still needed to fill the currently open slice.
    pub fn remaining_in_slice(&self) -> u64 {
        self.config.slice_len() - self.in_slice
    }

    /// Records one dynamic branch event, closing the slice automatically
    /// when it fills.
    #[inline]
    pub fn record(&mut self, site: SiteId, correct: bool) {
        self.states[site.index()].record(correct);
        self.total_exec += 1;
        self.total_correct += correct as u64;
        self.slice_exec += 1;
        self.slice_correct += correct as u64;
        self.in_slice += 1;
        if self.in_slice == self.config.slice_len() {
            self.roll_slice();
        }
    }

    /// Records a within-slice batch of `executions` events at `site`,
    /// `correct` of them predicted correctly. Unlike [`record`](Self::record)
    /// this never closes the slice: the batching driver must call
    /// [`roll_slice`](Self::roll_slice) itself exactly when the slice fills
    /// (and must split batches at slice boundaries — see
    /// [`remaining_in_slice`](Self::remaining_in_slice)).
    ///
    /// # Panics
    ///
    /// Panics if the batch would overflow the open slice.
    #[inline]
    pub fn record_batch(&mut self, site: SiteId, executions: u64, correct: u64) {
        assert!(
            self.in_slice + executions <= self.config.slice_len(),
            "batch of {executions} events crosses a slice boundary"
        );
        self.states[site.index()].record_batch(executions, correct);
        self.total_exec += executions;
        self.total_correct += correct;
        self.slice_exec += executions;
        self.slice_correct += correct;
        self.in_slice += executions;
    }

    /// Closes the current slice (the paper's "function executed at the end
    /// of each slice"): folds every branch's per-slice counters into its
    /// running statistics, in site order, and resets the slice clock.
    pub fn roll_slice(&mut self) {
        let thr = self.config.exec_threshold();
        // Metrics are accumulated here, at the slice boundary, so the
        // per-event `record` path stays untouched; the FIR/PAM deltas ride
        // the O(sites) fold loop that runs anyway.
        let mut fir_updates = 0u64;
        let mut pam_updates = 0u64;
        match &mut self.series {
            Some(series) => {
                for (i, st) in self.states.iter_mut().enumerate() {
                    let pam_before = st.slices_above_mean();
                    if let Some(acc) = st.end_slice_sampled(thr) {
                        series.per_site[i].push((self.slice_index, acc));
                        fir_updates += 1;
                    }
                    pam_updates += st.slices_above_mean() - pam_before;
                }
                if self.slice_exec > 0 {
                    series.overall.push((
                        self.slice_index,
                        self.slice_correct as f64 / self.slice_exec as f64,
                    ));
                }
            }
            None => {
                for st in &mut self.states {
                    let n_before = st.slices();
                    let pam_before = st.slices_above_mean();
                    st.end_slice(thr);
                    fir_updates += st.slices() - n_before;
                    pam_updates += st.slices_above_mean() - pam_before;
                }
            }
        }
        twodprof_obs::counter!(
            "profiler_events_total",
            "Dynamic branch events ingested by all profiler instances."
        )
        .add(self.in_slice);
        twodprof_obs::counter!(
            "profiler_slices_closed_total",
            "Global slice boundaries folded (including trailing partials)."
        )
        .inc();
        twodprof_obs::counter!(
            "profiler_filter_updates_total",
            "Per-branch FIR filter updates (slices counted into statistics)."
        )
        .add(fir_updates);
        twodprof_obs::counter!(
            "profiler_pam_updates_total",
            "NPAM increments (counted slices above the running mean)."
        )
        .add(pam_updates);
        self.slice_exec = 0;
        self.slice_correct = 0;
        self.slice_index += 1;
        self.in_slice = 0;
    }

    /// Ends the run: folds any open partial slice, resolves the MEAN-test
    /// threshold against the run's overall accuracy, applies the three
    /// tests to every branch, and returns the report attributed to
    /// `predictor_name`.
    pub fn finish(mut self, thresholds: Thresholds, predictor_name: String) -> ProfileReport {
        if self.in_slice > 0 {
            self.roll_slice();
        }
        let program_accuracy =
            (self.total_exec > 0).then(|| self.total_correct as f64 / self.total_exec as f64);
        // With an empty run every branch is Insufficient and the MEAN
        // threshold is never consulted; 1.0 is a harmless stand-in.
        let resolved = program_accuracy.map(|a| thresholds.resolve_mean(a));
        let stats = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let site = SiteId(i as u32);
                let outcomes = evaluate(st, &thresholds, program_accuracy.unwrap_or(1.0));
                let classification = match outcomes {
                    None => Classification::Insufficient,
                    Some(o) if o.predicts_dependent() => Classification::Dependent,
                    Some(_) => Classification::Independent,
                };
                BranchStats {
                    site,
                    slices: st.slices(),
                    mean: st.mean(),
                    std_dev: st.std_dev(),
                    pam_fraction: st.points_above_mean(),
                    executions: st.total_executions(),
                    aggregate_accuracy: st.aggregate_accuracy(),
                    outcomes,
                    classification,
                }
            })
            .collect();
        ProfileReport::new(
            stats,
            thresholds,
            program_accuracy,
            resolved,
            self.slice_index,
            self.total_exec,
            predictor_name,
            self.series,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The batched path must reproduce the per-event path bit-exactly when
    /// batches are folded per site within each slice.
    #[test]
    fn batched_fold_matches_per_event_fold() {
        let config = SliceConfig::new(1_000, 50);
        let mut per_event = SliceAccum::new(3, config);
        let mut batched = SliceAccum::new(3, config);
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut pending = [[0u64; 2]; 3]; // per site: [exec, correct]
        let mut total = 0u64;
        for _ in 0..10_500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let site = (x % 3) as usize;
            let correct = x & 4 != 0;
            per_event.record(SiteId(site as u32), correct);
            pending[site][0] += 1;
            pending[site][1] += correct as u64;
            total += 1;
            if total.is_multiple_of(1_000) {
                // slice boundary: fold the batches, then roll
                for (s, p) in pending.iter_mut().enumerate() {
                    batched.record_batch(SiteId(s as u32), p[0], p[1]);
                    *p = [0, 0];
                }
                batched.roll_slice();
            }
        }
        for (s, p) in pending.iter_mut().enumerate() {
            batched.record_batch(SiteId(s as u32), p[0], p[1]);
        }
        let a = per_event.finish(Thresholds::default(), "x".into());
        let b = batched.finish(Thresholds::default(), "x".into());
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        a.write_to(&mut buf_a).unwrap();
        b.write_to(&mut buf_b).unwrap();
        assert_eq!(buf_a, buf_b, "batched fold must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "crosses a slice boundary")]
    fn record_batch_rejects_boundary_crossing() {
        let mut a = SliceAccum::new(1, SliceConfig::new(100, 4));
        a.record_batch(SiteId(0), 101, 0);
    }

    #[test]
    fn remaining_in_slice_counts_down() {
        let mut a = SliceAccum::new(1, SliceConfig::new(10, 1));
        assert_eq!(a.remaining_in_slice(), 10);
        a.record_batch(SiteId(0), 4, 2);
        assert_eq!(a.remaining_in_slice(), 6);
        a.record_batch(SiteId(0), 6, 3);
        assert_eq!(a.remaining_in_slice(), 0);
        a.roll_slice();
        assert_eq!(a.remaining_in_slice(), 10);
        assert_eq!(a.total_events(), 10);
    }
}
