//! Slice configuration.

/// Configuration of the profiling-run slicing (§3.2, §4.1 of the paper).
///
/// The paper fixes the slice size at 15 million dynamic branches and discards
/// a branch's slice sample when the branch executed fewer than
/// `exec_threshold = 1000` times in the slice (to suppress noise from
/// infrequent execution and predictor warm-up).
///
/// Workloads in this reproduction run for millions rather than billions of
/// branches, so [`SliceConfig::auto`] scales both knobs to the run length at
/// the paper's ratios.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SliceConfig {
    slice_len: u64,
    exec_threshold: u64,
}

impl SliceConfig {
    /// The paper's slice size: 15 million dynamic branches.
    pub const PAPER_SLICE_LEN: u64 = 15_000_000;
    /// The paper's per-slice minimum execution count for a branch's sample
    /// to be kept.
    pub const PAPER_EXEC_THRESHOLD: u64 = 1000;
    /// Default number of slices targeted by [`SliceConfig::auto`].
    pub const AUTO_TARGET_SLICES: u64 = 200;

    /// Creates a slice configuration.
    ///
    /// # Panics
    ///
    /// Panics if `slice_len` is zero or `exec_threshold >= slice_len` (no
    /// branch could ever reach the threshold).
    pub fn new(slice_len: u64, exec_threshold: u64) -> Self {
        assert!(slice_len > 0, "slice_len must be positive");
        assert!(
            exec_threshold < slice_len,
            "exec_threshold ({exec_threshold}) must be smaller than slice_len ({slice_len})"
        );
        Self {
            slice_len,
            exec_threshold,
        }
    }

    /// The paper's configuration: 15M-branch slices, threshold 1000.
    pub fn paper() -> Self {
        Self::new(Self::PAPER_SLICE_LEN, Self::PAPER_EXEC_THRESHOLD)
    }

    /// Scales the paper's configuration to a run of `total_branches` dynamic
    /// branches: aims for [`Self::AUTO_TARGET_SLICES`] slices and keeps the
    /// paper's `exec_threshold : slice_len` ratio (1 : 15 000), with floors
    /// that keep tiny runs sane (slice ≥ 500, threshold ≥ 16).
    pub fn auto(total_branches: u64) -> Self {
        let slice_len = (total_branches / Self::AUTO_TARGET_SLICES).max(500);
        let exec_threshold = (slice_len / 15_000).max(16).min(slice_len - 1);
        Self::new(slice_len, exec_threshold)
    }

    /// Number of dynamic branches per slice.
    pub fn slice_len(&self) -> u64 {
        self.slice_len
    }

    /// Minimum executions of a branch within a slice for the slice's sample
    /// to count toward that branch's statistics.
    pub fn exec_threshold(&self) -> u64 {
        self.exec_threshold
    }
}

impl Default for SliceConfig {
    /// Defaults to the paper's configuration.
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let c = SliceConfig::paper();
        assert_eq!(c.slice_len(), 15_000_000);
        assert_eq!(c.exec_threshold(), 1000);
        assert_eq!(SliceConfig::default(), c);
    }

    #[test]
    fn auto_keeps_paper_ratio_for_large_runs() {
        let c = SliceConfig::auto(3_000_000_000);
        assert_eq!(c.slice_len(), 15_000_000);
        assert_eq!(c.exec_threshold(), 1000);
    }

    #[test]
    fn auto_scales_down_with_floors() {
        let c = SliceConfig::auto(2_000_000);
        assert_eq!(c.slice_len(), 10_000);
        assert_eq!(c.exec_threshold(), 16); // floor, since 10_000/15_000 < 1

        let tiny = SliceConfig::auto(100);
        assert_eq!(tiny.slice_len(), 500);
        assert!(tiny.exec_threshold() < tiny.slice_len());
    }

    #[test]
    #[should_panic(expected = "slice_len must be positive")]
    fn rejects_zero_slice() {
        let _ = SliceConfig::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "must be smaller than slice_len")]
    fn rejects_threshold_at_or_above_slice() {
        let _ = SliceConfig::new(100, 100);
    }
}
