//! End-of-run profiling reports.

use crate::{TestOutcomes, Thresholds};
use btrace::SiteId;

/// 2D-profiling verdict for one static branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// Predicted input-dependent: passed (MEAN ∨ STD) ∧ PAM.
    Dependent,
    /// Predicted input-independent.
    Independent,
    /// Not enough data: the branch never accumulated a counted slice
    /// (it executed rarely or not at all). Treated as input-independent by
    /// the evaluation metrics, matching the paper's handling of branches the
    /// profiler cannot see.
    Insufficient,
}

impl Classification {
    /// Whether the branch is predicted input-dependent.
    pub fn is_dependent(self) -> bool {
        matches!(self, Classification::Dependent)
    }
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Classification::Dependent => "input-dependent",
            Classification::Independent => "input-independent",
            Classification::Insufficient => "insufficient-data",
        };
        f.write_str(s)
    }
}

/// Per-branch statistics at the end of a 2D-profiling run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchStats {
    /// The static branch.
    pub site: SiteId,
    /// Number of counted slices (`N`).
    pub slices: u64,
    /// Mean filtered slice accuracy, if any slice was counted.
    pub mean: Option<f64>,
    /// Standard deviation of filtered slice accuracies.
    pub std_dev: Option<f64>,
    /// Fraction of slices above the running mean.
    pub pam_fraction: Option<f64>,
    /// Total dynamic executions over the whole run.
    pub executions: u64,
    /// Whole-run aggregate prediction accuracy (the 1-D profile value).
    pub aggregate_accuracy: Option<f64>,
    /// Raw outcomes of the three tests, if the branch had data.
    pub outcomes: Option<TestOutcomes>,
    /// Final verdict.
    pub classification: Classification,
}

/// The complete result of one 2D-profiling run.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    stats: Vec<BranchStats>,
    thresholds: Thresholds,
    program_accuracy: Option<f64>,
    resolved_mean_threshold: Option<f64>,
    total_slices: u64,
    total_branches: u64,
    predictor_name: String,
    series: Option<SeriesData>,
}

/// Recorded per-slice time series (Figure 8 support).
#[derive(Clone, Debug, Default)]
pub(crate) struct SeriesData {
    /// For each site: `(slice index, filtered accuracy)` samples for counted
    /// slices.
    pub per_site: Vec<Vec<(u64, f64)>>,
    /// Overall program accuracy per slice.
    pub overall: Vec<(u64, f64)>,
}

impl ProfileReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stats: Vec<BranchStats>,
        thresholds: Thresholds,
        program_accuracy: Option<f64>,
        resolved_mean_threshold: Option<f64>,
        total_slices: u64,
        total_branches: u64,
        predictor_name: String,
        series: Option<SeriesData>,
    ) -> Self {
        Self {
            stats,
            thresholds,
            program_accuracy,
            resolved_mean_threshold,
            total_slices,
            total_branches,
            predictor_name,
            series,
        }
    }

    /// Statistics for one branch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn stats(&self, site: SiteId) -> &BranchStats {
        &self.stats[site.index()]
    }

    /// Final verdict for one branch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn classification(&self, site: SiteId) -> Classification {
        self.stats[site.index()].classification
    }

    /// Iterates over all branches' statistics in site order.
    pub fn iter(&self) -> impl Iterator<Item = &BranchStats> {
        self.stats.iter()
    }

    /// Iterates over the branches predicted input-dependent.
    pub fn predicted_dependent(&self) -> impl Iterator<Item = &BranchStats> {
        self.stats
            .iter()
            .filter(|s| s.classification.is_dependent())
    }

    /// Dense `site -> predicted input-dependent?` vector, aligned with the
    /// workload's site table.
    pub fn predicted_mask(&self) -> Vec<bool> {
        self.stats
            .iter()
            .map(|s| s.classification.is_dependent())
            .collect()
    }

    /// Number of static branch sites covered by the report.
    pub fn num_sites(&self) -> usize {
        self.stats.len()
    }

    /// The thresholds the classification used.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// Overall prediction accuracy of the profiling run, or `None` for an
    /// empty run.
    pub fn program_accuracy(&self) -> Option<f64> {
        self.program_accuracy
    }

    /// The concrete MEAN-test threshold after resolving
    /// [`MeanThreshold::ProgramAccuracy`](crate::MeanThreshold), if the run
    /// was non-empty.
    pub fn resolved_mean_threshold(&self) -> Option<f64> {
        self.resolved_mean_threshold
    }

    /// Number of global slices the run was divided into (counted or not).
    pub fn total_slices(&self) -> u64 {
        self.total_slices
    }

    /// Total dynamic branch events in the run.
    pub fn total_branches(&self) -> u64 {
        self.total_branches
    }

    /// Name of the predictor the profiler simulated.
    pub fn predictor_name(&self) -> &str {
        &self.predictor_name
    }

    /// Per-slice `(slice index, filtered accuracy)` samples for `site`, if
    /// the profiler ran with time-series recording enabled.
    pub fn series(&self, site: SiteId) -> Option<&[(u64, f64)]> {
        self.series
            .as_ref()
            .map(|s| s.per_site[site.index()].as_slice())
    }

    /// Per-slice overall program accuracy, if time-series recording was
    /// enabled.
    pub fn overall_series(&self) -> Option<&[(u64, f64)]> {
        self.series.as_ref().map(|s| s.overall.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_display_and_predicate() {
        assert!(Classification::Dependent.is_dependent());
        assert!(!Classification::Independent.is_dependent());
        assert!(!Classification::Insufficient.is_dependent());
        assert_eq!(Classification::Dependent.to_string(), "input-dependent");
        assert_eq!(
            Classification::Insufficient.to_string(),
            "insufficient-data"
        );
    }
}
