//! End-of-run profiling reports.

use crate::{MeanThreshold, TestOutcomes, Thresholds};
use btrace::{read_varint, write_varint, SiteId};
use std::io::{self, Read, Write};

/// 2D-profiling verdict for one static branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Classification {
    /// Predicted input-dependent: passed (MEAN ∨ STD) ∧ PAM.
    Dependent,
    /// Predicted input-independent.
    Independent,
    /// Not enough data: the branch never accumulated a counted slice
    /// (it executed rarely or not at all). Treated as input-independent by
    /// the evaluation metrics, matching the paper's handling of branches the
    /// profiler cannot see.
    Insufficient,
}

impl Classification {
    /// Whether the branch is predicted input-dependent.
    pub fn is_dependent(self) -> bool {
        matches!(self, Classification::Dependent)
    }
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Classification::Dependent => "input-dependent",
            Classification::Independent => "input-independent",
            Classification::Insufficient => "insufficient-data",
        };
        f.write_str(s)
    }
}

/// Per-branch statistics at the end of a 2D-profiling run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchStats {
    /// The static branch.
    pub site: SiteId,
    /// Number of counted slices (`N`).
    pub slices: u64,
    /// Mean filtered slice accuracy, if any slice was counted.
    pub mean: Option<f64>,
    /// Standard deviation of filtered slice accuracies.
    pub std_dev: Option<f64>,
    /// Fraction of slices above the running mean.
    pub pam_fraction: Option<f64>,
    /// Total dynamic executions over the whole run.
    pub executions: u64,
    /// Whole-run aggregate prediction accuracy (the 1-D profile value).
    pub aggregate_accuracy: Option<f64>,
    /// Raw outcomes of the three tests, if the branch had data.
    pub outcomes: Option<TestOutcomes>,
    /// Final verdict.
    pub classification: Classification,
}

/// The complete result of one 2D-profiling run.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileReport {
    stats: Vec<BranchStats>,
    thresholds: Thresholds,
    program_accuracy: Option<f64>,
    resolved_mean_threshold: Option<f64>,
    total_slices: u64,
    total_branches: u64,
    predictor_name: String,
    series: Option<SeriesData>,
}

/// Recorded per-slice time series (Figure 8 support).
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct SeriesData {
    /// For each site: `(slice index, filtered accuracy)` samples for counted
    /// slices.
    pub per_site: Vec<Vec<(u64, f64)>>,
    /// Overall program accuracy per slice.
    pub overall: Vec<(u64, f64)>,
}

impl ProfileReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        stats: Vec<BranchStats>,
        thresholds: Thresholds,
        program_accuracy: Option<f64>,
        resolved_mean_threshold: Option<f64>,
        total_slices: u64,
        total_branches: u64,
        predictor_name: String,
        series: Option<SeriesData>,
    ) -> Self {
        Self {
            stats,
            thresholds,
            program_accuracy,
            resolved_mean_threshold,
            total_slices,
            total_branches,
            predictor_name,
            series,
        }
    }

    /// Statistics for one branch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn stats(&self, site: SiteId) -> &BranchStats {
        &self.stats[site.index()]
    }

    /// Final verdict for one branch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn classification(&self, site: SiteId) -> Classification {
        self.stats[site.index()].classification
    }

    /// Iterates over all branches' statistics in site order.
    pub fn iter(&self) -> impl Iterator<Item = &BranchStats> {
        self.stats.iter()
    }

    /// Iterates over the branches predicted input-dependent.
    pub fn predicted_dependent(&self) -> impl Iterator<Item = &BranchStats> {
        self.stats
            .iter()
            .filter(|s| s.classification.is_dependent())
    }

    /// Dense `site -> predicted input-dependent?` vector, aligned with the
    /// workload's site table.
    pub fn predicted_mask(&self) -> Vec<bool> {
        self.stats
            .iter()
            .map(|s| s.classification.is_dependent())
            .collect()
    }

    /// Number of static branch sites covered by the report.
    pub fn num_sites(&self) -> usize {
        self.stats.len()
    }

    /// The thresholds the classification used.
    pub fn thresholds(&self) -> &Thresholds {
        &self.thresholds
    }

    /// Overall prediction accuracy of the profiling run, or `None` for an
    /// empty run.
    pub fn program_accuracy(&self) -> Option<f64> {
        self.program_accuracy
    }

    /// The concrete MEAN-test threshold after resolving
    /// [`MeanThreshold::ProgramAccuracy`](crate::MeanThreshold), if the run
    /// was non-empty.
    pub fn resolved_mean_threshold(&self) -> Option<f64> {
        self.resolved_mean_threshold
    }

    /// Number of global slices the run was divided into (counted or not).
    pub fn total_slices(&self) -> u64 {
        self.total_slices
    }

    /// Total dynamic branch events in the run.
    pub fn total_branches(&self) -> u64 {
        self.total_branches
    }

    /// Name of the predictor the profiler simulated.
    pub fn predictor_name(&self) -> &str {
        &self.predictor_name
    }

    /// Per-slice `(slice index, filtered accuracy)` samples for `site`, if
    /// the profiler ran with time-series recording enabled.
    pub fn series(&self, site: SiteId) -> Option<&[(u64, f64)]> {
        self.series
            .as_ref()
            .map(|s| s.per_site[site.index()].as_slice())
    }

    /// Per-slice overall program accuracy, if time-series recording was
    /// enabled.
    pub fn overall_series(&self) -> Option<&[(u64, f64)]> {
        self.series.as_ref().map(|s| s.overall.as_slice())
    }

    /// Writes the full report (statistics, thresholds, series) in a compact
    /// binary format — the payload the sweep engine's result cache stores.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_thresholds(w, &self.thresholds)?;
        write_opt_f64(w, self.program_accuracy)?;
        write_opt_f64(w, self.resolved_mean_threshold)?;
        write_varint(w, self.total_slices)?;
        write_varint(w, self.total_branches)?;
        let name = self.predictor_name.as_bytes();
        write_varint(w, name.len() as u64)?;
        w.write_all(name)?;
        write_varint(w, self.stats.len() as u64)?;
        for s in &self.stats {
            write_varint(w, s.slices)?;
            write_opt_f64(w, s.mean)?;
            write_opt_f64(w, s.std_dev)?;
            write_opt_f64(w, s.pam_fraction)?;
            write_varint(w, s.executions)?;
            write_opt_f64(w, s.aggregate_accuracy)?;
            let outcome_bits = match s.outcomes {
                None => 0u64,
                Some(o) => 0b1000 | (o.mean as u64) | ((o.std as u64) << 1) | ((o.pam as u64) << 2),
            };
            write_varint(w, outcome_bits)?;
            let class = match s.classification {
                Classification::Dependent => 0u64,
                Classification::Independent => 1,
                Classification::Insufficient => 2,
            };
            write_varint(w, class)?;
        }
        match &self.series {
            None => write_varint(w, 0)?,
            Some(series) => {
                write_varint(w, 1)?;
                write_varint(w, series.per_site.len() as u64)?;
                for samples in &series.per_site {
                    write_series(w, samples)?;
                }
                write_series(w, &series.overall)?;
            }
        }
        Ok(())
    }

    /// Serializes the report to an owned buffer via
    /// [`write_to`](Self::write_to).
    ///
    /// This is the exact payload the ingestion daemon ships back over the
    /// wire, so byte-equality of two `to_bytes` results is the "bit-identical
    /// report" check the remote/in-process equivalence tests rely on.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("writing to a Vec<u8> cannot fail");
        buf
    }

    /// Parses a report from a [`to_bytes`](Self::to_bytes) buffer, rejecting
    /// trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input or leftover bytes.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let report = Self::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(invalid("trailing bytes after report"));
        }
        Ok(report)
    }

    /// Reads a report written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let thresholds = read_thresholds(r)?;
        let program_accuracy = read_opt_f64(r)?;
        let resolved_mean_threshold = read_opt_f64(r)?;
        let total_slices = read_varint(r)?;
        let total_branches = read_varint(r)?;
        let name_len = read_varint(r)? as usize;
        if name_len > 1 << 16 {
            return Err(invalid("unreasonable predictor-name length"));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let predictor_name =
            String::from_utf8(name).map_err(|_| invalid("predictor name is not UTF-8"))?;
        let num_sites = read_varint(r)? as usize;
        if num_sites > 1 << 28 {
            return Err(invalid("unreasonable site count"));
        }
        // the declared count is untrusted until the entries actually arrive:
        // clamp the reservation so a short hostile prefix cannot make the
        // decoder reserve gigabytes before hitting EOF
        let mut stats = Vec::with_capacity(num_sites.min(1 << 16));
        for i in 0..num_sites {
            let slices = read_varint(r)?;
            let mean = read_opt_f64(r)?;
            let std_dev = read_opt_f64(r)?;
            let pam_fraction = read_opt_f64(r)?;
            let executions = read_varint(r)?;
            let aggregate_accuracy = read_opt_f64(r)?;
            let outcome_bits = read_varint(r)?;
            let outcomes = if outcome_bits & 0b1000 != 0 {
                Some(TestOutcomes {
                    mean: outcome_bits & 1 != 0,
                    std: outcome_bits & 2 != 0,
                    pam: outcome_bits & 4 != 0,
                })
            } else {
                None
            };
            let classification = match read_varint(r)? {
                0 => Classification::Dependent,
                1 => Classification::Independent,
                2 => Classification::Insufficient,
                _ => return Err(invalid("unknown classification tag")),
            };
            stats.push(BranchStats {
                site: SiteId(i as u32),
                slices,
                mean,
                std_dev,
                pam_fraction,
                executions,
                aggregate_accuracy,
                outcomes,
                classification,
            });
        }
        let series = match read_varint(r)? {
            0 => None,
            1 => {
                let n = read_varint(r)? as usize;
                if n != num_sites {
                    return Err(invalid("series table size mismatch"));
                }
                let mut per_site = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    per_site.push(read_series(r)?);
                }
                let overall = read_series(r)?;
                Some(SeriesData { per_site, overall })
            }
            _ => return Err(invalid("unknown series tag")),
        };
        Ok(Self {
            stats,
            thresholds,
            program_accuracy,
            resolved_mean_threshold,
            total_slices,
            total_branches,
            predictor_name,
            series,
        })
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_bits().to_le_bytes())
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_bits(u64::from_le_bytes(buf)))
}

fn write_opt_f64<W: Write>(w: &mut W, v: Option<f64>) -> io::Result<()> {
    match v {
        None => w.write_all(&[0]),
        Some(v) => {
            w.write_all(&[1])?;
            write_f64(w, v)
        }
    }
}

fn read_opt_f64<R: Read>(r: &mut R) -> io::Result<Option<f64>> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        0 => Ok(None),
        1 => Ok(Some(read_f64(r)?)),
        _ => Err(invalid("bad optional-float tag")),
    }
}

fn write_thresholds<W: Write>(w: &mut W, t: &Thresholds) -> io::Result<()> {
    match t.mean {
        MeanThreshold::ProgramAccuracy => w.write_all(&[0])?,
        MeanThreshold::Fixed(v) => {
            w.write_all(&[1])?;
            write_f64(w, v)?;
        }
    }
    write_f64(w, t.std)?;
    write_f64(w, t.pam)
}

fn read_thresholds<R: Read>(r: &mut R) -> io::Result<Thresholds> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mean = match tag[0] {
        0 => MeanThreshold::ProgramAccuracy,
        1 => MeanThreshold::Fixed(read_f64(r)?),
        _ => return Err(invalid("bad mean-threshold tag")),
    };
    Ok(Thresholds {
        mean,
        std: read_f64(r)?,
        pam: read_f64(r)?,
    })
}

fn write_series<W: Write>(w: &mut W, samples: &[(u64, f64)]) -> io::Result<()> {
    write_varint(w, samples.len() as u64)?;
    for &(slice, acc) in samples {
        write_varint(w, slice)?;
        write_f64(w, acc)?;
    }
    Ok(())
}

fn read_series<R: Read>(r: &mut R) -> io::Result<Vec<(u64, f64)>> {
    let n = read_varint(r)? as usize;
    if n > 1 << 28 {
        return Err(invalid("unreasonable series length"));
    }
    let mut samples = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let slice = read_varint(r)?;
        samples.push((slice, read_f64(r)?));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SliceConfig, TwoDProfiler};
    use btrace::Tracer;

    fn sample_report(with_series: bool) -> ProfileReport {
        let make = if with_series {
            TwoDProfiler::with_series
        } else {
            TwoDProfiler::new
        };
        let mut prof = make(3, bpred::Gshare::new(8, 8), SliceConfig::new(500, 8));
        for i in 0..20_000u64 {
            let noisy = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).count_ones() % 2 == 0;
            prof.branch(SiteId(0), if i < 10_000 { noisy } else { true });
            prof.branch(SiteId(1), true);
            // site 2 never executes: exercises the Insufficient path
        }
        prof.finish(Thresholds::paper())
    }

    #[test]
    fn report_serialization_roundtrips() {
        for with_series in [false, true] {
            let report = sample_report(with_series);
            let mut buf = Vec::new();
            report.write_to(&mut buf).unwrap();
            let back = ProfileReport::read_from(&mut buf.as_slice()).unwrap();
            assert_eq!(back, report, "with_series={with_series}");
        }
    }

    #[test]
    fn report_deserialization_rejects_corruption() {
        let report = sample_report(false);
        let mut buf = Vec::new();
        report.write_to(&mut buf).unwrap();
        assert!(ProfileReport::read_from(&mut &buf[..buf.len() - 2]).is_err());
        let mut bad = buf.clone();
        bad[0] = 99; // mean-threshold tag
        assert!(ProfileReport::read_from(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn byte_helpers_match_streaming_forms() {
        let report = sample_report(true);
        let bytes = report.to_bytes();
        let mut streamed = Vec::new();
        report.write_to(&mut streamed).unwrap();
        assert_eq!(bytes, streamed);
        assert_eq!(ProfileReport::from_bytes(&bytes).unwrap(), report);
        // trailing garbage after a valid report is rejected
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ProfileReport::from_bytes(&padded).is_err());
    }

    #[test]
    fn classification_display_and_predicate() {
        assert!(Classification::Dependent.is_dependent());
        assert!(!Classification::Independent.is_dependent());
        assert!(!Classification::Insufficient.is_dependent());
        assert_eq!(Classification::Dependent.to_string(), "input-dependent");
        assert_eq!(
            Classification::Insufficient.to_string(),
            "insufficient-data"
        );
    }
}
