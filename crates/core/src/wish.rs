//! Compile-time branch-handling decisions driven by 2D-profiling — the
//! paper's motivating use case (§2.1, §2.2).
//!
//! With the cost model of equation (3) and the 2D classification, the
//! compiler picks one of three treatments per branch:
//!
//! - input-independent + predication profitable → **predicate**;
//! - input-independent + branch profitable → **keep the branch**;
//! - input-dependent → **defer**: emit a *wish branch* (Kim et al., ISCA
//!   2005, cited by the paper) or leave the choice to a dynamic optimizer,
//!   because the profile cannot be trusted across input sets.

use crate::{Classification, CostModel, PredicationDecision, ProfileReport};
use btrace::SiteId;

/// The compiler's per-branch treatment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchTreatment {
    /// If-convert: the profile is trustworthy and predication wins.
    Predicate,
    /// Keep the conditional branch: the profile is trustworthy and the
    /// branch wins.
    KeepBranch,
    /// Emit a wish branch / defer to a dynamic optimizer: the branch is
    /// predicted input-dependent, so any static choice may backfire on
    /// other input sets.
    WishBranch,
    /// Not enough profile data to decide; conservatively keep the branch.
    KeepBranchNoData,
}

impl BranchTreatment {
    /// Whether this treatment commits statically to predicated code.
    pub fn is_static_predication(self) -> bool {
        self == BranchTreatment::Predicate
    }
}

impl std::fmt::Display for BranchTreatment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BranchTreatment::Predicate => "predicate",
            BranchTreatment::KeepBranch => "keep-branch",
            BranchTreatment::WishBranch => "wish-branch",
            BranchTreatment::KeepBranchNoData => "keep-branch(no-data)",
        };
        f.write_str(s)
    }
}

/// Per-branch advice derived from one profiling run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BranchAdvice {
    /// The branch.
    pub site: SiteId,
    /// Chosen treatment.
    pub treatment: BranchTreatment,
    /// The misprediction rate the decision used.
    pub misprediction_rate: Option<f64>,
    /// Expected cycles of branch code at the profiled rates.
    pub branch_cost: Option<f64>,
    /// Cycles of the predicated version.
    pub predicated_cost: f64,
}

/// Derives treatments for every branch of a profiling run.
///
/// `taken_rates[site]` supplies each branch's taken probability (from an
/// edge profile of the same run); branches with no data get
/// [`BranchTreatment::KeepBranchNoData`].
///
/// # Panics
///
/// Panics if `taken_rates` is shorter than the report's site count.
pub fn advise(
    report: &ProfileReport,
    taken_rates: &[Option<f64>],
    model: &CostModel,
) -> Vec<BranchAdvice> {
    assert!(
        taken_rates.len() >= report.num_sites(),
        "need a taken rate slot per site"
    );
    report
        .iter()
        .map(|stats| {
            let misp = stats.aggregate_accuracy.map(|a| 1.0 - a);
            let taken = taken_rates[stats.site.index()];
            let (treatment, branch_cost) = match (stats.classification, misp, taken) {
                (Classification::Insufficient, _, _) | (_, None, _) | (_, _, None) => {
                    (BranchTreatment::KeepBranchNoData, None)
                }
                (Classification::Dependent, Some(_), Some(_)) => {
                    (BranchTreatment::WishBranch, None)
                }
                (Classification::Independent, Some(m), Some(p)) => {
                    let cost = model.branch_cost(p, m);
                    let t = match model.decide(p, m) {
                        PredicationDecision::Predicate => BranchTreatment::Predicate,
                        PredicationDecision::KeepBranch => BranchTreatment::KeepBranch,
                    };
                    (t, Some(cost))
                }
            };
            BranchAdvice {
                site: stats.site,
                treatment,
                misprediction_rate: misp,
                branch_cost,
                predicated_cost: model.predicated_cost(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SliceConfig, Thresholds, TwoDProfiler};
    use bpred::StaticTaken;
    use btrace::Tracer;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Builds a report with three behaviours: a phased branch (dependent),
    /// a stable hard one (independent, predication territory), and a stable
    /// easy one (independent, keep-branch territory). Site 3 never runs.
    fn scenario() -> (ProfileReport, Vec<Option<f64>>) {
        let mut prof = TwoDProfiler::new(4, StaticTaken, SliceConfig::new(3_000, 32));
        let mut rng = 0xABCDEFu64;
        for i in 0..300_000u64 {
            let phased = if i < 150_000 {
                xorshift(&mut rng) % 100 < 97
            } else {
                xorshift(&mut rng).is_multiple_of(2)
            };
            prof.branch(SiteId(0), phased);
            prof.branch(SiteId(1), i % 100 < 75); // stable, 25% mispredicted
            prof.branch(SiteId(2), i % 100 < 99); // stable, 1% mispredicted
        }
        let report = prof.finish(Thresholds::paper());
        let rates = vec![Some(0.75), Some(0.75), Some(0.99), None];
        (report, rates)
    }

    #[test]
    fn treatments_cover_all_three_outcomes() {
        let (report, rates) = scenario();
        let advice = advise(&report, &rates, &CostModel::paper_example());
        assert_eq!(advice[0].treatment, BranchTreatment::WishBranch);
        // 25% misprediction is far past the 7% crossover
        assert_eq!(advice[1].treatment, BranchTreatment::Predicate);
        assert!(advice[1].branch_cost.unwrap() > advice[1].predicated_cost);
        // 1% misprediction keeps the branch
        assert_eq!(advice[2].treatment, BranchTreatment::KeepBranch);
        assert_eq!(advice[3].treatment, BranchTreatment::KeepBranchNoData);
    }

    #[test]
    fn wish_branch_never_commits_statically() {
        let (report, rates) = scenario();
        let advice = advise(&report, &rates, &CostModel::paper_example());
        for a in advice {
            if a.treatment == BranchTreatment::WishBranch {
                assert!(!a.treatment.is_static_predication());
                assert!(a.misprediction_rate.is_some());
            }
        }
    }

    #[test]
    fn display_strings_are_distinct() {
        let all = [
            BranchTreatment::Predicate,
            BranchTreatment::KeepBranch,
            BranchTreatment::WishBranch,
            BranchTreatment::KeepBranchNoData,
        ];
        let mut names: Vec<String> = all.iter().map(|t| t.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    #[should_panic(expected = "taken rate slot")]
    fn advise_validates_rate_table() {
        let (report, _) = scenario();
        let _ = advise(&report, &[None], &CostModel::paper_example());
    }
}
