//! Evaluation metrics (Table 3 of the paper).
//!
//! 2D-profiling is scored against ground truth with four numbers:
//!
//! - **COV-dep** — correctly-identified dependent / all dependent (recall).
//! - **ACC-dep** — correctly-identified dependent / all identified dependent
//!   (precision).
//! - **COV-indep**, **ACC-indep** — the same for input-independent branches.

use crate::{GroundTruth, InputDependence};
use btrace::SiteId;

/// Confusion counts between predicted and actual input-dependence, over the
/// branches whose ground truth is observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted dependent, actually dependent.
    pub true_dep: usize,
    /// Predicted dependent, actually independent.
    pub false_dep: usize,
    /// Predicted independent, actually independent.
    pub true_indep: usize,
    /// Predicted independent, actually dependent.
    pub false_indep: usize,
}

impl Confusion {
    /// Tallies a predicted-dependence mask (aligned with the site table)
    /// against ground truth. Branches whose ground truth is
    /// [`InputDependence::Unobserved`] are skipped: the paper cannot score a
    /// branch it cannot compare across input sets.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the ground truth's site count.
    pub fn from_mask(predicted: &[bool], truth: &GroundTruth) -> Self {
        assert_eq!(
            predicted.len(),
            truth.num_sites(),
            "mask must align with the site table"
        );
        let mut c = Confusion::default();
        for (i, &pred) in predicted.iter().enumerate() {
            match (truth.label(SiteId(i as u32)), pred) {
                (InputDependence::Unobserved, _) => {}
                (InputDependence::Dependent, true) => c.true_dep += 1,
                (InputDependence::Dependent, false) => c.false_indep += 1,
                (InputDependence::Independent, true) => c.false_dep += 1,
                (InputDependence::Independent, false) => c.true_indep += 1,
            }
        }
        c
    }

    /// Number of scored branches.
    pub fn total(&self) -> usize {
        self.true_dep + self.false_dep + self.true_indep + self.false_indep
    }

    /// Adds another confusion's counts (for averaging across benchmarks by
    /// pooling).
    pub fn merge(&self, other: &Confusion) -> Confusion {
        Confusion {
            true_dep: self.true_dep + other.true_dep,
            false_dep: self.false_dep + other.false_dep,
            true_indep: self.true_indep + other.true_indep,
            false_indep: self.false_indep + other.false_indep,
        }
    }
}

/// The paper's four metrics, each `None` when its denominator is zero
/// (the paper notes ACC-dep/COV-dep are unreliable when the dependent set is
/// tiny; an empty set makes them undefined).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Coverage of input-dependent branches.
    pub cov_dep: Option<f64>,
    /// Accuracy for input-dependent branches.
    pub acc_dep: Option<f64>,
    /// Coverage of input-independent branches.
    pub cov_indep: Option<f64>,
    /// Accuracy for input-independent branches.
    pub acc_indep: Option<f64>,
}

fn ratio(num: usize, den: usize) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

impl Metrics {
    /// Computes the four metrics from confusion counts.
    pub fn from_confusion(c: &Confusion) -> Self {
        Self {
            cov_dep: ratio(c.true_dep, c.true_dep + c.false_indep),
            acc_dep: ratio(c.true_dep, c.true_dep + c.false_dep),
            cov_indep: ratio(c.true_indep, c.true_indep + c.false_dep),
            acc_indep: ratio(c.true_indep, c.true_indep + c.false_indep),
        }
    }

    /// Convenience: metrics straight from a prediction mask and ground truth.
    pub fn score(predicted: &[bool], truth: &GroundTruth) -> Self {
        Self::from_confusion(&Confusion::from_mask(predicted, truth))
    }

    /// Unweighted mean of several benchmarks' metrics, ignoring undefined
    /// entries per metric (how the paper averages Figure 12).
    pub fn average<'a, I: IntoIterator<Item = &'a Metrics>>(items: I) -> Metrics {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for m in items {
            for (k, v) in [m.cov_dep, m.acc_dep, m.cov_indep, m.acc_indep]
                .into_iter()
                .enumerate()
            {
                if let Some(x) = v {
                    sums[k] += x;
                    counts[k] += 1;
                }
            }
        }
        let get = |k: usize| (counts[k] > 0).then(|| sums[k] / counts[k] as f64);
        Metrics {
            cov_dep: get(0),
            acc_dep: get(1),
            cov_indep: get(2),
            acc_indep: get(3),
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn pct(v: Option<f64>) -> String {
            match v {
                Some(x) => format!("{:5.1}%", x * 100.0),
                None => "  n/a ".to_owned(),
            }
        }
        write!(
            f,
            "COV-dep {} ACC-dep {} COV-indep {} ACC-indep {}",
            pct(self.cov_dep),
            pct(self.acc_dep),
            pct(self.cov_indep),
            pct(self.acc_indep)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred::{PredictorSim, StaticTaken};
    use btrace::Tracer;

    fn truth_from(labels: &[InputDependence]) -> GroundTruth {
        // Build a GroundTruth through the public API by synthesizing
        // matching profiles.
        let n = labels.len();
        let mut train = PredictorSim::new(n, StaticTaken);
        let mut other = PredictorSim::new(n, StaticTaken);
        for (i, &l) in labels.iter().enumerate() {
            let site = SiteId(i as u32);
            match l {
                InputDependence::Unobserved => {}
                InputDependence::Independent => {
                    for k in 0..100u64 {
                        train.branch(site, k % 10 != 0);
                        other.branch(site, k % 10 != 0);
                    }
                }
                InputDependence::Dependent => {
                    for k in 0..100u64 {
                        train.branch(site, k % 10 != 0); // 90% taken
                        other.branch(site, k % 2 == 0); // 50% taken
                    }
                }
            }
        }
        let gt = GroundTruth::from_pair_paper(&train.into_profile(), &other.into_profile(), 10);
        for (i, &l) in labels.iter().enumerate() {
            assert_eq!(gt.label(SiteId(i as u32)), l, "synthesis self-check");
        }
        gt
    }

    #[test]
    fn perfect_prediction() {
        use InputDependence::*;
        let gt = truth_from(&[Dependent, Independent, Dependent, Independent]);
        let m = Metrics::score(&[true, false, true, false], &gt);
        assert_eq!(m.cov_dep, Some(1.0));
        assert_eq!(m.acc_dep, Some(1.0));
        assert_eq!(m.cov_indep, Some(1.0));
        assert_eq!(m.acc_indep, Some(1.0));
    }

    #[test]
    fn paper_footnote_example() {
        // "if there is only one input-dependent branch and 2D-profiling
        // identifies 4 (including that one), ACC-dep is only 25% and COV-dep
        // is 100%."
        use InputDependence::*;
        let gt = truth_from(&[
            Dependent,
            Independent,
            Independent,
            Independent,
            Independent,
        ]);
        let m = Metrics::score(&[true, true, true, true, false], &gt);
        assert_eq!(m.cov_dep, Some(1.0));
        assert!((m.acc_dep.unwrap() - 0.25).abs() < 1e-12);
        assert!((m.cov_indep.unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(m.acc_indep, Some(1.0));
    }

    #[test]
    fn unobserved_branches_are_excluded() {
        use InputDependence::*;
        let gt = truth_from(&[Dependent, Unobserved, Independent]);
        let c = Confusion::from_mask(&[true, true, false], &gt);
        assert_eq!(c.total(), 2);
        assert_eq!(c.true_dep, 1);
        assert_eq!(c.true_indep, 1);
        assert_eq!(c.false_dep, 0);
    }

    #[test]
    fn undefined_metrics_are_none() {
        use InputDependence::*;
        let gt = truth_from(&[Independent, Independent]);
        let m = Metrics::score(&[false, false], &gt);
        assert_eq!(m.cov_dep, None, "no dependent branches exist");
        assert_eq!(m.acc_dep, None, "nothing was identified dependent");
        assert_eq!(m.cov_indep, Some(1.0));
        assert_eq!(m.acc_indep, Some(1.0));
    }

    #[test]
    fn merge_pools_counts() {
        let a = Confusion {
            true_dep: 1,
            false_dep: 2,
            true_indep: 3,
            false_indep: 4,
        };
        let b = Confusion {
            true_dep: 10,
            false_dep: 20,
            true_indep: 30,
            false_indep: 40,
        };
        let m = a.merge(&b);
        assert_eq!(m.true_dep, 11);
        assert_eq!(m.total(), 110);
    }

    #[test]
    fn average_ignores_missing_entries() {
        let a = Metrics {
            cov_dep: Some(0.8),
            acc_dep: None,
            cov_indep: Some(0.9),
            acc_indep: Some(1.0),
        };
        let b = Metrics {
            cov_dep: Some(0.4),
            acc_dep: Some(0.5),
            cov_indep: Some(0.7),
            acc_indep: Some(0.8),
        };
        let avg = Metrics::average([&a, &b]);
        assert!((avg.cov_dep.unwrap() - 0.6).abs() < 1e-12);
        assert!((avg.acc_dep.unwrap() - 0.5).abs() < 1e-12, "only b counts");
        assert!((avg.cov_indep.unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn display_formats_percentages() {
        let m = Metrics {
            cov_dep: Some(0.5),
            acc_dep: None,
            cov_indep: Some(1.0),
            acc_indep: Some(0.123),
        };
        let s = m.to_string();
        assert!(s.contains("50.0%"));
        assert!(s.contains("n/a"));
        assert!(s.contains("100.0%"));
    }

    #[test]
    #[should_panic(expected = "align with the site table")]
    fn mask_length_must_match() {
        use InputDependence::*;
        let gt = truth_from(&[Independent]);
        let _ = Confusion::from_mask(&[true, false], &gt);
    }
}
