//! Ground-truth input-dependence from multiple input sets.
//!
//! The paper *defines* a branch as input-dependent when its prediction
//! accuracy (under the target machine's predictor) changes by more than 5%
//! absolute between input sets (§2). With more than two input sets, a branch
//! is input-dependent if *any* extra input set shifts its accuracy by more
//! than the threshold relative to the `train` set, and the paper studies the
//! union of these sets (§4.2, Figure 11).

use crate::INPUT_DEPENDENCE_DELTA;
use bpred::AccuracyProfile;
use btrace::SiteId;

/// Ground-truth label of one static branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputDependence {
    /// Accuracy delta exceeded the threshold for at least one input-set pair.
    Dependent,
    /// Observed in at least one pair with all deltas within the threshold.
    Independent,
    /// Never executed enough times in both runs of any pair to be compared.
    Unobserved,
}

/// Ground-truth input-dependence labels for every static branch of a
/// workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroundTruth {
    labels: Vec<InputDependence>,
}

impl GroundTruth {
    /// Builds ground truth from a `train` profile and one comparison profile
    /// (the paper's base definition with two input sets).
    ///
    /// A branch is *observed* if it executed at least `min_exec` times in
    /// **both** runs; an observed branch is *dependent* if its accuracy
    /// differs by more than `delta` (absolute).
    ///
    /// # Panics
    ///
    /// Panics if the two profiles cover different numbers of sites, if
    /// `delta` is not in `(0, 1)`, or if `min_exec` is zero.
    pub fn from_pair(
        train: &AccuracyProfile,
        other: &AccuracyProfile,
        delta: f64,
        min_exec: u64,
    ) -> Self {
        assert_eq!(
            train.num_sites(),
            other.num_sites(),
            "profiles must cover the same site table"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        assert!(min_exec > 0, "min_exec must be positive");
        let labels = (0..train.num_sites())
            .map(|i| {
                let site = SiteId(i as u32);
                if train.executions(site) < min_exec || other.executions(site) < min_exec {
                    return InputDependence::Unobserved;
                }
                let a = train.accuracy(site).expect("executed branch has accuracy");
                let b = other.accuracy(site).expect("executed branch has accuracy");
                // tiny epsilon keeps an exactly-at-threshold delta (e.g. a
                // 0.90 vs 0.85 accuracy pair) on the independent side despite
                // floating-point representation error
                if (a - b).abs() > delta + 1e-12 {
                    InputDependence::Dependent
                } else {
                    InputDependence::Independent
                }
            })
            .collect();
        Self { labels }
    }

    /// Builds ground truth with the paper's 5% threshold.
    pub fn from_pair_paper(
        train: &AccuracyProfile,
        other: &AccuracyProfile,
        min_exec: u64,
    ) -> Self {
        Self::from_pair(train, other, INPUT_DEPENDENCE_DELTA, min_exec)
    }

    /// Unions two ground truths over the same site table: a branch is
    /// dependent if dependent in either, else independent if observed in
    /// either, else unobserved. This is how the paper grows the target set
    /// as more input sets are considered (Figure 11's `base-ext1-k`).
    ///
    /// # Panics
    ///
    /// Panics if the two ground truths cover different numbers of sites.
    pub fn union(&self, other: &GroundTruth) -> GroundTruth {
        assert_eq!(
            self.labels.len(),
            other.labels.len(),
            "ground truths must cover the same site table"
        );
        let labels = self
            .labels
            .iter()
            .zip(&other.labels)
            .map(|(&a, &b)| match (a, b) {
                (InputDependence::Dependent, _) | (_, InputDependence::Dependent) => {
                    InputDependence::Dependent
                }
                (InputDependence::Independent, _) | (_, InputDependence::Independent) => {
                    InputDependence::Independent
                }
                _ => InputDependence::Unobserved,
            })
            .collect();
        GroundTruth { labels }
    }

    /// Label of one branch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn label(&self, site: SiteId) -> InputDependence {
        self.labels[site.index()]
    }

    /// Whether `site` is input-dependent.
    pub fn is_dependent(&self, site: SiteId) -> bool {
        self.label(site) == InputDependence::Dependent
    }

    /// Number of sites in the table.
    pub fn num_sites(&self) -> usize {
        self.labels.len()
    }

    /// Number of input-dependent branches.
    pub fn dependent_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|&&l| l == InputDependence::Dependent)
            .count()
    }

    /// Number of observed (comparable) branches.
    pub fn observed_count(&self) -> usize {
        self.labels
            .iter()
            .filter(|&&l| l != InputDependence::Unobserved)
            .count()
    }

    /// Static fraction of input-dependent branches among observed branches
    /// (the paper's Figure 3, "static fraction"). `None` if nothing was
    /// observed.
    pub fn static_fraction(&self) -> Option<f64> {
        let obs = self.observed_count();
        (obs > 0).then(|| self.dependent_count() as f64 / obs as f64)
    }

    /// Dynamic fraction of input-dependent branches: executions of dependent
    /// branches over all executions, weighted by `profile` (the paper uses
    /// the reference input set's execution counts). `None` for an empty
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if `profile` covers a different number of sites.
    pub fn dynamic_fraction(&self, profile: &AccuracyProfile) -> Option<f64> {
        assert_eq!(profile.num_sites(), self.num_sites());
        let total = profile.total_executions();
        (total > 0).then(|| {
            let dep: u64 = (0..self.num_sites())
                .filter(|&i| self.labels[i] == InputDependence::Dependent)
                .map(|i| profile.executions(SiteId(i as u32)))
                .sum();
            dep as f64 / total as f64
        })
    }

    /// Iterates over `(site, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, InputDependence)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (SiteId(i as u32), l))
    }
}

/// Incremental builder that unions ground truth over many
/// `(train, other)` pairs — the paper's `base-ext1-k` methodology.
#[derive(Clone, Debug, Default)]
pub struct GroundTruthBuilder {
    acc: Option<GroundTruth>,
    delta: f64,
    min_exec: u64,
}

impl GroundTruthBuilder {
    /// Creates a builder using `delta` and `min_exec` for every pair.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is not in `(0, 1)` or `min_exec` is zero.
    pub fn new(delta: f64, min_exec: u64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1)");
        assert!(min_exec > 0, "min_exec must be positive");
        Self {
            acc: None,
            delta,
            min_exec,
        }
    }

    /// Adds one `(train, other)` comparison and unions it into the
    /// accumulated ground truth.
    pub fn add_pair(&mut self, train: &AccuracyProfile, other: &AccuracyProfile) -> &mut Self {
        let gt = GroundTruth::from_pair(train, other, self.delta, self.min_exec);
        self.acc = Some(match self.acc.take() {
            Some(prev) => prev.union(&gt),
            None => gt,
        });
        self
    }

    /// The accumulated ground truth, or `None` if no pair was added.
    pub fn build(&self) -> Option<GroundTruth> {
        self.acc.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred::{PredictorSim, StaticTaken};
    use btrace::Tracer;

    /// Makes an AccuracyProfile where each site i has `spec[i] = (exec,
    /// taken_per_100)` under a StaticTaken predictor, so accuracy ==
    /// taken rate.
    fn profile(spec: &[(u64, u64)]) -> AccuracyProfile {
        let mut sim = PredictorSim::new(spec.len(), StaticTaken);
        for (i, &(exec, taken_pct)) in spec.iter().enumerate() {
            for k in 0..exec {
                sim.branch(SiteId(i as u32), k % 100 < taken_pct);
            }
        }
        sim.into_profile()
    }

    #[test]
    fn pair_labels_by_delta() {
        let train = profile(&[(1000, 90), (1000, 90), (1000, 90), (0, 0)]);
        let other = profile(&[(1000, 80), (1000, 94), (5, 0), (1000, 50)]);
        let gt = GroundTruth::from_pair_paper(&train, &other, 100);
        assert_eq!(gt.label(SiteId(0)), InputDependence::Dependent); // |90-80| > 5
        assert_eq!(gt.label(SiteId(1)), InputDependence::Independent); // |90-94| < 5
        assert_eq!(gt.label(SiteId(2)), InputDependence::Unobserved); // too few in other
        assert_eq!(gt.label(SiteId(3)), InputDependence::Unobserved); // absent in train
        assert_eq!(gt.dependent_count(), 1);
        assert_eq!(gt.observed_count(), 2);
        assert!((gt.static_fraction().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exactly_at_threshold_is_independent() {
        // The rule is "> 5%", strictly.
        let train = profile(&[(1000, 90)]);
        let other = profile(&[(1000, 85)]);
        let gt = GroundTruth::from_pair_paper(&train, &other, 100);
        assert_eq!(gt.label(SiteId(0)), InputDependence::Independent);
    }

    #[test]
    fn union_grows_monotonically() {
        let train = profile(&[(1000, 90), (1000, 90)]);
        let ext1 = profile(&[(1000, 88), (1000, 88)]); // nothing dependent
        let ext2 = profile(&[(1000, 60), (1000, 92)]); // site 0 dependent
        let g1 = GroundTruth::from_pair_paper(&train, &ext1, 100);
        let g2 = GroundTruth::from_pair_paper(&train, &ext2, 100);
        assert_eq!(g1.dependent_count(), 0);
        let u = g1.union(&g2);
        assert_eq!(u.dependent_count(), 1);
        assert!(u.is_dependent(SiteId(0)));
        // union never removes dependence
        let u2 = u.union(&g1);
        assert_eq!(u2.dependent_count(), 1);
    }

    #[test]
    fn union_of_unobserved_and_observed() {
        let train = profile(&[(1000, 90), (0, 0)]);
        let a = profile(&[(1000, 90), (0, 0)]);
        let b = profile(&[(1000, 90), (0, 0)]);
        let g = GroundTruth::from_pair_paper(&train, &a, 100)
            .union(&GroundTruth::from_pair_paper(&train, &b, 100));
        assert_eq!(g.label(SiteId(1)), InputDependence::Unobserved);
    }

    #[test]
    fn builder_matches_manual_union() {
        let train = profile(&[(1000, 90), (1000, 50)]);
        let e1 = profile(&[(1000, 70), (1000, 52)]);
        let e2 = profile(&[(1000, 89), (1000, 30)]);
        let mut b = GroundTruthBuilder::new(0.05, 100);
        b.add_pair(&train, &e1).add_pair(&train, &e2);
        let built = b.build().unwrap();
        let manual = GroundTruth::from_pair_paper(&train, &e1, 100)
            .union(&GroundTruth::from_pair_paper(&train, &e2, 100));
        assert_eq!(built, manual);
        assert_eq!(built.dependent_count(), 2);
    }

    #[test]
    fn dynamic_fraction_weights_by_executions() {
        let train = profile(&[(100, 90), (100, 90)]);
        let other = profile(&[(900, 50), (100, 90)]); // site 0 dependent
        let gt = GroundTruth::from_pair_paper(&train, &other, 50);
        // weighted by `other` (the "ref" run): 900 of 1000 events
        assert!((gt.dynamic_fraction(&other).unwrap() - 0.9).abs() < 1e-12);
        // weighted by train: 100 of 200
        assert!((gt.dynamic_fraction(&train).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_builder_returns_none() {
        assert!(GroundTruthBuilder::new(0.05, 10).build().is_none());
    }

    #[test]
    #[should_panic(expected = "delta must be in (0, 1)")]
    fn rejects_bad_delta() {
        let p = profile(&[(10, 50)]);
        let _ = GroundTruth::from_pair(&p, &p, 0.0, 1);
    }

    #[test]
    #[should_panic(expected = "same site table")]
    fn rejects_mismatched_profiles() {
        let a = profile(&[(10, 50)]);
        let b = profile(&[(10, 50), (10, 50)]);
        let _ = GroundTruth::from_pair_paper(&a, &b, 1);
    }
}
