//! The 2D-profiler: Figure 9 of the paper as a [`Tracer`].

use crate::{ProfileReport, SliceAccum, SliceConfig, Thresholds};
use bpred::{site_pc, BranchPredictor};
use btrace::{SiteId, Tracer};

/// A 2D-profiling run over one workload execution.
///
/// Feeds every dynamic branch through a software model of the profiling
/// branch predictor (the paper uses a 4 KB gshare), accumulates each static
/// branch's per-slice prediction accuracy in the seven-variable
/// [`BranchState`](crate::BranchState), and at [`finish`](Self::finish)
/// applies the MEAN/STD/PAM tests to classify every branch as predicted
/// input-dependent or input-independent.
///
/// Slices are delimited globally: every [`SliceConfig::slice_len`] dynamic
/// branch events, the per-slice counters of *all* branches are folded and
/// reset (the paper's "function executed at the end of each slice"). All
/// accounting other than the predictor simulation lives in [`SliceAccum`],
/// which the engine's bit-sliced replay drives in batches instead.
#[derive(Clone, Debug)]
pub struct TwoDProfiler<P> {
    predictor: P,
    accum: SliceAccum,
}

impl<P: BranchPredictor> TwoDProfiler<P> {
    /// Creates a profiler for a workload with `num_sites` static branches,
    /// simulating `predictor` and slicing the run per `config`.
    pub fn new(num_sites: usize, predictor: P, config: SliceConfig) -> Self {
        Self {
            predictor,
            accum: SliceAccum::new(num_sites, config),
        }
    }

    /// Like [`new`](Self::new), but additionally records each branch's
    /// per-slice filtered accuracy and the per-slice overall program
    /// accuracy, for time-series plots like the paper's Figure 8.
    ///
    /// Costs `O(sites × slices)` memory; leave disabled for large sweeps.
    pub fn with_series(num_sites: usize, predictor: P, config: SliceConfig) -> Self {
        Self {
            predictor,
            accum: SliceAccum::with_series(num_sites, config),
        }
    }

    /// The slice configuration in effect.
    pub fn config(&self) -> SliceConfig {
        self.accum.config()
    }

    /// Per-branch state accumulated so far (primarily for inspection in
    /// tests and tooling).
    pub fn state(&self, site: SiteId) -> &crate::BranchState {
        self.accum.state(site)
    }

    /// Records one dynamic branch like [`Tracer::branch`], additionally
    /// returning whether the simulated predictor got it right.
    ///
    /// This is the ingestion hook for consumers that need the per-event
    /// prediction outcome without running a second predictor — the streaming
    /// aggregator feeds its sliding windows from the same simulation the
    /// session profiler already performs.
    #[inline]
    pub fn branch_outcome(&mut self, site: SiteId, taken: bool) -> bool {
        let correct = self.predictor.predict_and_train(site_pc(site), taken) == taken;
        self.accum.record(site, correct);
        correct
    }

    /// Ends the run: folds any open partial slice, resolves the MEAN-test
    /// threshold against the run's overall accuracy, applies the three tests
    /// to every branch, and returns the report.
    pub fn finish(self, thresholds: Thresholds) -> ProfileReport {
        let name = self.predictor.name();
        self.accum.finish(thresholds, name)
    }
}

impl<P: BranchPredictor> Tracer for TwoDProfiler<P> {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.branch_outcome(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.accum.total_events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Classification;
    use bpred::{Gshare, StaticTaken};

    /// Deterministic pseudo-random stream for tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn phased_branch_flagged_stable_branch_not() {
        // Site 0: near-perfectly predictable for half the run, then random —
        // strong phase behaviour (the paper's Figure 8 left).
        // Site 1: 58% accuracy under StaticTaken but *stable* over time —
        // a deterministic periodic pattern whose every slice has identical
        // accuracy (Figure 8 right: low accuracy, no phase variation, so the
        // PAM-test must reject it). Site 2: deterministic 99% and stable.
        let mut prof = TwoDProfiler::new(3, StaticTaken, SliceConfig::new(3_000, 32));
        let mut rng = 0x12345678u64;
        for i in 0..300_000u64 {
            let s0 = if i < 150_000 {
                xorshift(&mut rng) % 100 < 97
            } else {
                xorshift(&mut rng).is_multiple_of(2)
            };
            prof.branch(SiteId(0), s0);
            prof.branch(SiteId(1), i % 100 < 58);
            prof.branch(SiteId(2), i % 100 < 99);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(
            report.classification(SiteId(0)),
            Classification::Dependent,
            "phased branch: {:?}",
            report.stats(SiteId(0))
        );
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Independent,
            "stable hard-to-predict branch: {:?}",
            report.stats(SiteId(1))
        );
        assert_eq!(
            report.classification(SiteId(2)),
            Classification::Independent,
            "stable easy branch: {:?}",
            report.stats(SiteId(2))
        );
    }

    #[test]
    fn unexecuted_branch_is_insufficient() {
        let mut prof = TwoDProfiler::new(2, Gshare::new(8, 8), SliceConfig::new(100, 4));
        for _ in 0..1_000 {
            prof.branch(SiteId(0), true);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Insufficient
        );
        assert!(!report.predicted_mask()[1]);
    }

    #[test]
    fn rare_branch_below_threshold_is_insufficient() {
        let mut prof = TwoDProfiler::new(2, StaticTaken, SliceConfig::new(1_000, 100));
        for i in 0..100_000u64 {
            prof.branch(SiteId(0), true);
            if i % 50 == 0 {
                // ~20 executions per 1000-branch slice: below threshold 100
                prof.branch(SiteId(1), i % 100 == 0);
            }
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.stats(SiteId(1)).slices, 0);
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Insufficient
        );
    }

    #[test]
    fn empty_run_reports_no_program_accuracy() {
        let prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.program_accuracy(), None);
        assert_eq!(report.total_slices(), 0);
        assert_eq!(report.total_branches(), 0);
    }

    #[test]
    fn partial_trailing_slice_is_counted() {
        // 2.5 slices worth of events: the final half slice still has enough
        // executions to pass the threshold and must be folded by finish().
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(1_000, 100));
        for _ in 0..2_500 {
            prof.branch(SiteId(0), true);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.stats(SiteId(0)).slices, 3);
        assert_eq!(report.total_slices(), 3);
    }

    #[test]
    fn series_recording_matches_slice_count() {
        let mut prof = TwoDProfiler::with_series(1, StaticTaken, SliceConfig::new(1_000, 100));
        for i in 0..10_000u64 {
            prof.branch(SiteId(0), i % 10 != 0); // steady 90%
        }
        let report = prof.finish(Thresholds::default());
        let series = report.series(SiteId(0)).unwrap();
        assert_eq!(series.len(), 10);
        for &(_, acc) in series {
            assert!((acc - 0.9).abs() < 1e-12);
        }
        let overall = report.overall_series().unwrap();
        assert_eq!(overall.len(), 10);
        assert!((overall[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn program_accuracy_is_global_average() {
        let mut prof = TwoDProfiler::new(2, StaticTaken, SliceConfig::new(100, 4));
        for _ in 0..500 {
            prof.branch(SiteId(0), true); // always correct
            prof.branch(SiteId(1), false); // always wrong
        }
        let report = prof.finish(Thresholds::default());
        assert!((report.program_accuracy().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(report.total_branches(), 1_000);
        assert_eq!(report.predictor_name(), "static-taken");
    }

    #[test]
    fn branch_outcome_reports_prediction_correctness() {
        // StaticTaken always predicts taken, so the outcome is the taken bit
        // itself — and the state advances exactly as Tracer::branch would.
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        assert!(prof.branch_outcome(SiteId(0), true));
        assert!(!prof.branch_outcome(SiteId(0), false));
        assert_eq!(prof.dynamic_count(), Some(2));
        assert_eq!(prof.state(SiteId(0)).total_executions(), 2);
    }

    #[test]
    fn dynamic_count_tracks_events() {
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        for _ in 0..42 {
            prof.branch(SiteId(0), true);
        }
        assert_eq!(prof.dynamic_count(), Some(42));
    }
}
