//! The 2D-profiler: Figure 9 of the paper as a [`Tracer`].

use crate::report::SeriesData;
use crate::thresholds::evaluate;
use crate::{BranchStats, Classification, ProfileReport, SliceConfig, Thresholds};
use bpred::{site_pc, BranchPredictor};
use btrace::{SiteId, Tracer};

/// A 2D-profiling run over one workload execution.
///
/// Feeds every dynamic branch through a software model of the profiling
/// branch predictor (the paper uses a 4 KB gshare), accumulates each static
/// branch's per-slice prediction accuracy in the seven-variable
/// [`BranchState`](crate::BranchState), and at [`finish`](Self::finish)
/// applies the MEAN/STD/PAM tests to classify every branch as predicted
/// input-dependent or input-independent.
///
/// Slices are delimited globally: every [`SliceConfig::slice_len`] dynamic
/// branch events, the per-slice counters of *all* branches are folded and
/// reset (the paper's "function executed at the end of each slice").
#[derive(Clone, Debug)]
pub struct TwoDProfiler<P> {
    predictor: P,
    states: Vec<crate::BranchState>,
    config: SliceConfig,
    in_slice: u64,
    slice_index: u64,
    total_exec: u64,
    total_correct: u64,
    slice_exec: u64,
    slice_correct: u64,
    series: Option<SeriesData>,
}

impl<P: BranchPredictor> TwoDProfiler<P> {
    /// Creates a profiler for a workload with `num_sites` static branches,
    /// simulating `predictor` and slicing the run per `config`.
    pub fn new(num_sites: usize, predictor: P, config: SliceConfig) -> Self {
        twodprof_obs::counter!(
            "profiler_branches_tracked_total",
            "Static branch sites tracked across all profiler instances."
        )
        .add(num_sites as u64);
        Self {
            predictor,
            states: vec![crate::BranchState::new(); num_sites],
            config,
            in_slice: 0,
            slice_index: 0,
            total_exec: 0,
            total_correct: 0,
            slice_exec: 0,
            slice_correct: 0,
            series: None,
        }
    }

    /// Like [`new`](Self::new), but additionally records each branch's
    /// per-slice filtered accuracy and the per-slice overall program
    /// accuracy, for time-series plots like the paper's Figure 8.
    ///
    /// Costs `O(sites × slices)` memory; leave disabled for large sweeps.
    pub fn with_series(num_sites: usize, predictor: P, config: SliceConfig) -> Self {
        let mut p = Self::new(num_sites, predictor, config);
        p.series = Some(SeriesData {
            per_site: vec![Vec::new(); num_sites],
            overall: Vec::new(),
        });
        p
    }

    /// The slice configuration in effect.
    pub fn config(&self) -> SliceConfig {
        self.config
    }

    /// Per-branch state accumulated so far (primarily for inspection in
    /// tests and tooling).
    pub fn state(&self, site: SiteId) -> &crate::BranchState {
        &self.states[site.index()]
    }

    fn end_slice_all(&mut self) {
        let thr = self.config.exec_threshold();
        // Metrics are accumulated here, at the slice boundary, so the
        // per-event `branch` path stays untouched; the FIR/PAM deltas ride
        // the O(sites) fold loop that runs anyway.
        let mut fir_updates = 0u64;
        let mut pam_updates = 0u64;
        match &mut self.series {
            Some(series) => {
                for (i, st) in self.states.iter_mut().enumerate() {
                    let pam_before = st.slices_above_mean();
                    if let Some(acc) = st.end_slice_sampled(thr) {
                        series.per_site[i].push((self.slice_index, acc));
                        fir_updates += 1;
                    }
                    pam_updates += st.slices_above_mean() - pam_before;
                }
                if self.slice_exec > 0 {
                    series.overall.push((
                        self.slice_index,
                        self.slice_correct as f64 / self.slice_exec as f64,
                    ));
                }
            }
            None => {
                for st in &mut self.states {
                    let n_before = st.slices();
                    let pam_before = st.slices_above_mean();
                    st.end_slice(thr);
                    fir_updates += st.slices() - n_before;
                    pam_updates += st.slices_above_mean() - pam_before;
                }
            }
        }
        twodprof_obs::counter!(
            "profiler_events_total",
            "Dynamic branch events ingested by all profiler instances."
        )
        .add(self.in_slice);
        twodprof_obs::counter!(
            "profiler_slices_closed_total",
            "Global slice boundaries folded (including trailing partials)."
        )
        .inc();
        twodprof_obs::counter!(
            "profiler_filter_updates_total",
            "Per-branch FIR filter updates (slices counted into statistics)."
        )
        .add(fir_updates);
        twodprof_obs::counter!(
            "profiler_pam_updates_total",
            "NPAM increments (counted slices above the running mean)."
        )
        .add(pam_updates);
        self.slice_exec = 0;
        self.slice_correct = 0;
        self.slice_index += 1;
        self.in_slice = 0;
    }

    /// Records one dynamic branch like [`Tracer::branch`], additionally
    /// returning whether the simulated predictor got it right.
    ///
    /// This is the ingestion hook for consumers that need the per-event
    /// prediction outcome without running a second predictor — the streaming
    /// aggregator feeds its sliding windows from the same simulation the
    /// session profiler already performs.
    #[inline]
    pub fn branch_outcome(&mut self, site: SiteId, taken: bool) -> bool {
        let correct = self.predictor.predict_and_train(site_pc(site), taken) == taken;
        self.states[site.index()].record(correct);
        self.total_exec += 1;
        self.total_correct += correct as u64;
        self.slice_exec += 1;
        self.slice_correct += correct as u64;
        self.in_slice += 1;
        if self.in_slice == self.config.slice_len() {
            self.end_slice_all();
        }
        correct
    }

    /// Ends the run: folds any open partial slice, resolves the MEAN-test
    /// threshold against the run's overall accuracy, applies the three tests
    /// to every branch, and returns the report.
    pub fn finish(mut self, thresholds: Thresholds) -> ProfileReport {
        if self.in_slice > 0 {
            self.end_slice_all();
        }
        let program_accuracy =
            (self.total_exec > 0).then(|| self.total_correct as f64 / self.total_exec as f64);
        // With an empty run every branch is Insufficient and the MEAN
        // threshold is never consulted; 1.0 is a harmless stand-in.
        let resolved = program_accuracy.map(|a| thresholds.resolve_mean(a));
        let stats = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let site = SiteId(i as u32);
                let outcomes = evaluate(st, &thresholds, program_accuracy.unwrap_or(1.0));
                let classification = match outcomes {
                    None => Classification::Insufficient,
                    Some(o) if o.predicts_dependent() => Classification::Dependent,
                    Some(_) => Classification::Independent,
                };
                BranchStats {
                    site,
                    slices: st.slices(),
                    mean: st.mean(),
                    std_dev: st.std_dev(),
                    pam_fraction: st.points_above_mean(),
                    executions: st.total_executions(),
                    aggregate_accuracy: st.aggregate_accuracy(),
                    outcomes,
                    classification,
                }
            })
            .collect();
        ProfileReport::new(
            stats,
            thresholds,
            program_accuracy,
            resolved,
            self.slice_index,
            self.total_exec,
            self.predictor.name(),
            self.series,
        )
    }
}

impl<P: BranchPredictor> Tracer for TwoDProfiler<P> {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.branch_outcome(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.total_exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpred::{Gshare, StaticTaken};

    /// Deterministic pseudo-random stream for tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn phased_branch_flagged_stable_branch_not() {
        // Site 0: near-perfectly predictable for half the run, then random —
        // strong phase behaviour (the paper's Figure 8 left).
        // Site 1: 58% accuracy under StaticTaken but *stable* over time —
        // a deterministic periodic pattern whose every slice has identical
        // accuracy (Figure 8 right: low accuracy, no phase variation, so the
        // PAM-test must reject it). Site 2: deterministic 99% and stable.
        let mut prof = TwoDProfiler::new(3, StaticTaken, SliceConfig::new(3_000, 32));
        let mut rng = 0x12345678u64;
        for i in 0..300_000u64 {
            let s0 = if i < 150_000 {
                xorshift(&mut rng) % 100 < 97
            } else {
                xorshift(&mut rng).is_multiple_of(2)
            };
            prof.branch(SiteId(0), s0);
            prof.branch(SiteId(1), i % 100 < 58);
            prof.branch(SiteId(2), i % 100 < 99);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(
            report.classification(SiteId(0)),
            Classification::Dependent,
            "phased branch: {:?}",
            report.stats(SiteId(0))
        );
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Independent,
            "stable hard-to-predict branch: {:?}",
            report.stats(SiteId(1))
        );
        assert_eq!(
            report.classification(SiteId(2)),
            Classification::Independent,
            "stable easy branch: {:?}",
            report.stats(SiteId(2))
        );
    }

    #[test]
    fn unexecuted_branch_is_insufficient() {
        let mut prof = TwoDProfiler::new(2, Gshare::new(8, 8), SliceConfig::new(100, 4));
        for _ in 0..1_000 {
            prof.branch(SiteId(0), true);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Insufficient
        );
        assert!(!report.predicted_mask()[1]);
    }

    #[test]
    fn rare_branch_below_threshold_is_insufficient() {
        let mut prof = TwoDProfiler::new(2, StaticTaken, SliceConfig::new(1_000, 100));
        for i in 0..100_000u64 {
            prof.branch(SiteId(0), true);
            if i % 50 == 0 {
                // ~20 executions per 1000-branch slice: below threshold 100
                prof.branch(SiteId(1), i % 100 == 0);
            }
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.stats(SiteId(1)).slices, 0);
        assert_eq!(
            report.classification(SiteId(1)),
            Classification::Insufficient
        );
    }

    #[test]
    fn empty_run_reports_no_program_accuracy() {
        let prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.program_accuracy(), None);
        assert_eq!(report.total_slices(), 0);
        assert_eq!(report.total_branches(), 0);
    }

    #[test]
    fn partial_trailing_slice_is_counted() {
        // 2.5 slices worth of events: the final half slice still has enough
        // executions to pass the threshold and must be folded by finish().
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(1_000, 100));
        for _ in 0..2_500 {
            prof.branch(SiteId(0), true);
        }
        let report = prof.finish(Thresholds::default());
        assert_eq!(report.stats(SiteId(0)).slices, 3);
        assert_eq!(report.total_slices(), 3);
    }

    #[test]
    fn series_recording_matches_slice_count() {
        let mut prof = TwoDProfiler::with_series(1, StaticTaken, SliceConfig::new(1_000, 100));
        for i in 0..10_000u64 {
            prof.branch(SiteId(0), i % 10 != 0); // steady 90%
        }
        let report = prof.finish(Thresholds::default());
        let series = report.series(SiteId(0)).unwrap();
        assert_eq!(series.len(), 10);
        for &(_, acc) in series {
            assert!((acc - 0.9).abs() < 1e-12);
        }
        let overall = report.overall_series().unwrap();
        assert_eq!(overall.len(), 10);
        assert!((overall[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    fn program_accuracy_is_global_average() {
        let mut prof = TwoDProfiler::new(2, StaticTaken, SliceConfig::new(100, 4));
        for _ in 0..500 {
            prof.branch(SiteId(0), true); // always correct
            prof.branch(SiteId(1), false); // always wrong
        }
        let report = prof.finish(Thresholds::default());
        assert!((report.program_accuracy().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(report.total_branches(), 1_000);
        assert_eq!(report.predictor_name(), "static-taken");
    }

    #[test]
    fn branch_outcome_reports_prediction_correctness() {
        // StaticTaken always predicts taken, so the outcome is the taken bit
        // itself — and the state advances exactly as Tracer::branch would.
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        assert!(prof.branch_outcome(SiteId(0), true));
        assert!(!prof.branch_outcome(SiteId(0), false));
        assert_eq!(prof.dynamic_count(), Some(2));
        assert_eq!(prof.state(SiteId(0)).total_executions(), 2);
    }

    #[test]
    fn dynamic_count_tracks_events() {
        let mut prof = TwoDProfiler::new(1, StaticTaken, SliceConfig::new(100, 4));
        for _ in 0..42 {
            prof.branch(SiteId(0), true);
        }
        assert_eq!(prof.dynamic_count(), Some(42));
    }
}
