//! 2D *edge* profiling: the paper's sketched variant that applies the same
//! time-sliced tests to branch **bias** (taken rate) instead of prediction
//! accuracy.
//!
//! §1 and §3.1 note that "2D-profiling can also be used with edge profiling
//! to determine whether or not the bias (taken/not-taken rate) of a branch is
//! input-dependent". This variant needs *no predictor model at all*, making
//! the profiler dramatically cheaper — the trade-off being that it detects
//! bias shifts rather than predictability shifts.
//!
//! Statistics are tracked on the per-slice **taken rate**; the MEAN-test is
//! applied to the branch's mean per-slice *bias* (majority-direction
//! frequency, `max(r, 1-r)`), since "low accuracy" has no direct analogue
//! for edges but "weak bias" does.

use crate::report::SeriesData;
use crate::{BranchStats, Classification, ProfileReport, SliceConfig, TestOutcomes, Thresholds};
use btrace::{SiteId, Tracer};

#[derive(Clone, Copy, Debug, Default)]
struct BiasState {
    n: u64,
    sr: f64,   // sum of filtered taken rates
    ssr: f64,  // sum of squares of the same
    sb: f64,   // sum of per-slice bias values
    npam: u64, // slices with filtered rate above running mean rate
    lpr: Option<f64>,
    taken_ctr: u64,
    exec_ctr: u64,
    total_exec: u64,
    total_taken: u64,
}

impl BiasState {
    #[inline]
    fn record(&mut self, taken: bool) {
        self.exec_ctr += 1;
        self.taken_ctr += taken as u64;
        self.total_exec += 1;
        self.total_taken += taken as u64;
    }

    fn end_slice(&mut self, exec_threshold: u64) -> Option<f64> {
        let mut sample = None;
        if self.exec_ctr > exec_threshold {
            self.n += 1;
            let rate = self.taken_ctr as f64 / self.exec_ctr as f64;
            let filtered = match self.lpr {
                Some(last) => (rate + last) / 2.0,
                None => rate,
            };
            self.sr += filtered;
            self.ssr += filtered * filtered;
            self.sb += filtered.max(1.0 - filtered);
            // epsilon guards constant series against float-rounding jitter
            if filtered > self.sr / self.n as f64 + 1e-9 {
                self.npam += 1;
            }
            self.lpr = Some(filtered);
            sample = Some(filtered);
        }
        self.exec_ctr = 0;
        self.taken_ctr = 0;
        sample
    }

    fn mean_rate(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sr / self.n as f64)
    }

    fn std_rate(&self) -> Option<f64> {
        self.mean_rate()
            .map(|m| (self.ssr / self.n as f64 - m * m).max(0.0).sqrt())
    }

    fn mean_bias(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sb / self.n as f64)
    }

    fn pam(&self) -> Option<f64> {
        (self.n > 0).then(|| self.npam as f64 / self.n as f64)
    }
}

/// Predictor-free 2D profiler over branch bias.
///
/// Implements [`Tracer`]; finish with [`Bias2DProfiler::finish`]. In the
/// resulting [`ProfileReport`], `mean` holds the branch's mean per-slice
/// *bias*, `std_dev`/`pam_fraction` describe its per-slice *taken-rate*
/// series, and `aggregate_accuracy` holds the whole-run bias.
#[derive(Clone, Debug)]
pub struct Bias2DProfiler {
    states: Vec<BiasState>,
    config: SliceConfig,
    in_slice: u64,
    slice_index: u64,
    total_events: u64,
    series: Option<SeriesData>,
}

impl Bias2DProfiler {
    /// Creates a bias 2D-profiler for `num_sites` static branches.
    pub fn new(num_sites: usize, config: SliceConfig) -> Self {
        Self {
            states: vec![BiasState::default(); num_sites],
            config,
            in_slice: 0,
            slice_index: 0,
            total_events: 0,
            series: None,
        }
    }

    /// Like [`new`](Self::new) but records per-slice taken-rate series.
    pub fn with_series(num_sites: usize, config: SliceConfig) -> Self {
        let mut p = Self::new(num_sites, config);
        p.series = Some(SeriesData {
            per_site: vec![Vec::new(); num_sites],
            overall: Vec::new(),
        });
        p
    }

    fn end_slice_all(&mut self) {
        let thr = self.config.exec_threshold();
        for (i, st) in self.states.iter_mut().enumerate() {
            let sample = st.end_slice(thr);
            if let (Some(series), Some(rate)) = (self.series.as_mut(), sample) {
                series.per_site[i].push((self.slice_index, rate));
            }
        }
        self.slice_index += 1;
        self.in_slice = 0;
    }

    /// Ends the run and classifies every branch.
    ///
    /// The MEAN-test compares mean per-slice bias against the resolved
    /// threshold; `MeanThreshold::ProgramAccuracy` resolves to the program's
    /// execution-weighted mean branch bias.
    pub fn finish(mut self, thresholds: Thresholds) -> ProfileReport {
        if self.in_slice > 0 {
            self.end_slice_all();
        }
        // Execution-weighted average per-branch bias over the whole run.
        let (wsum, wtot) = self.states.iter().fold((0.0f64, 0u64), |(s, t), st| {
            if st.total_exec == 0 {
                return (s, t);
            }
            let r = st.total_taken as f64 / st.total_exec as f64;
            (s + r.max(1.0 - r) * st.total_exec as f64, t + st.total_exec)
        });
        let program_bias = (wtot > 0).then(|| wsum / wtot as f64);
        let resolved = program_bias.map(|b| thresholds.resolve_mean(b));
        let stats = self
            .states
            .iter()
            .enumerate()
            .map(|(i, st)| {
                let outcomes = st.mean_bias().map(|mb| TestOutcomes {
                    mean: mb < resolved.unwrap_or(1.0),
                    std: st.std_rate().expect("n > 0") > thresholds.std,
                    pam: {
                        let p = st.pam().expect("n > 0");
                        p >= thresholds.pam && p <= 1.0 - thresholds.pam
                    },
                });
                let classification = match outcomes {
                    None => Classification::Insufficient,
                    Some(o) if o.predicts_dependent() => Classification::Dependent,
                    Some(_) => Classification::Independent,
                };
                BranchStats {
                    site: SiteId(i as u32),
                    slices: st.n,
                    mean: st.mean_bias(),
                    std_dev: st.std_rate(),
                    pam_fraction: st.pam(),
                    executions: st.total_exec,
                    aggregate_accuracy: (st.total_exec > 0).then(|| {
                        let r = st.total_taken as f64 / st.total_exec as f64;
                        r.max(1.0 - r)
                    }),
                    outcomes,
                    classification,
                }
            })
            .collect();
        ProfileReport::new(
            stats,
            thresholds,
            program_bias,
            resolved,
            self.slice_index,
            self.total_events,
            "edge-bias".to_owned(),
            self.series,
        )
    }
}

impl Tracer for Bias2DProfiler {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.states[site.index()].record(taken);
        self.total_events += 1;
        self.in_slice += 1;
        if self.in_slice == self.config.slice_len() {
            self.end_slice_all();
        }
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.total_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Thresholds;

    #[test]
    fn bias_phase_shift_is_flagged() {
        // Site 0: taken rate flips from 40% to 95% mid-run. Site 1: steady
        // 90% taken throughout.
        let mut p = Bias2DProfiler::new(2, SliceConfig::new(2_000, 32));
        for i in 0..200_000u64 {
            let r0 = if i < 100_000 {
                i % 100 < 40
            } else {
                i % 100 < 95
            };
            p.branch(SiteId(0), r0);
            p.branch(SiteId(1), i % 10 != 0);
        }
        let report = p.finish(Thresholds::default());
        assert!(report.classification(SiteId(0)).is_dependent());
        assert!(!report.classification(SiteId(1)).is_dependent());
    }

    #[test]
    fn steady_weak_bias_fails_pam() {
        // 55% taken uniformly: weak bias (MEAN passes) but no phase
        // behaviour, so PAM filters it out — mirroring Figure 8 (right).
        let mut p = Bias2DProfiler::new(1, SliceConfig::new(2_000, 32));
        for i in 0..200_000u64 {
            p.branch(SiteId(0), i % 100 < 55);
        }
        let report = p.finish(Thresholds::default());
        assert!(!report.classification(SiteId(0)).is_dependent());
        let s = report.stats(SiteId(0));
        assert!(s.mean.unwrap() < 0.6, "mean bias ~0.55");
        assert!(s.std_dev.unwrap() < 0.01, "rate is steady");
    }

    #[test]
    fn aggregate_accuracy_field_holds_bias() {
        let mut p = Bias2DProfiler::new(1, SliceConfig::new(100, 4));
        for i in 0..1_000u64 {
            p.branch(SiteId(0), i % 4 == 0); // 25% taken -> bias 0.75
        }
        let report = p.finish(Thresholds::default());
        assert!((report.stats(SiteId(0)).aggregate_accuracy.unwrap() - 0.75).abs() < 1e-12);
        assert_eq!(report.predictor_name(), "edge-bias");
    }

    #[test]
    fn series_records_taken_rate() {
        let mut p = Bias2DProfiler::with_series(1, SliceConfig::new(1_000, 32));
        for i in 0..5_000u64 {
            p.branch(SiteId(0), i % 5 != 0); // 80% taken
        }
        let report = p.finish(Thresholds::default());
        let series = report.series(SiteId(0)).unwrap();
        assert_eq!(series.len(), 5);
        assert!((series[0].1 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn unexecuted_site_is_insufficient() {
        let p = Bias2DProfiler::new(2, SliceConfig::new(100, 4));
        let report = p.finish(Thresholds::default());
        assert_eq!(
            report.classification(SiteId(0)),
            Classification::Insufficient
        );
        assert_eq!(report.program_accuracy(), None);
    }
}
