//! The if-conversion (predication) cost model of §2.1 — equations (1)–(3)
//! and Figure 2 of the paper.
//!
//! This model is why a 5% accuracy shift matters: the decision between a
//! normal branch and predicated code flips at a misprediction-rate crossover
//! (7% with the paper's example parameters), so input-dependent branches
//! near the crossover make profile-guided if-conversion fragile.

/// Machine/code parameters of the predication decision, all in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Execution time of the region when the branch is taken (`exec_T`).
    pub exec_taken: f64,
    /// Execution time of the region when the branch is not taken (`exec_N`).
    pub exec_not_taken: f64,
    /// Execution time of the if-converted (predicated) region (`exec_pred`).
    pub exec_predicated: f64,
    /// Branch misprediction penalty (`misp_penalty`).
    pub misp_penalty: f64,
}

/// Outcome of applying equation (3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredicationDecision {
    /// Predicated code is cheaper: if-convert the branch.
    Predicate,
    /// Normal branch code is cheaper (or equal): keep the branch.
    KeepBranch,
}

impl CostModel {
    /// The example parameters used for Figure 2:
    /// `misp_penalty` = 30, `exec_T` = `exec_N` = 3, `exec_pred` = 5.
    pub fn paper_example() -> Self {
        Self {
            exec_taken: 3.0,
            exec_not_taken: 3.0,
            exec_predicated: 5.0,
            misp_penalty: 30.0,
        }
    }

    /// Equation (1): expected cycles of normal branch code given the branch's
    /// taken probability and misprediction rate.
    ///
    /// # Panics
    ///
    /// Panics if `p_taken` or `misp_rate` is outside `[0, 1]`.
    pub fn branch_cost(&self, p_taken: f64, misp_rate: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p_taken), "p_taken must be in [0,1]");
        assert!(
            (0.0..=1.0).contains(&misp_rate),
            "misp_rate must be in [0,1]"
        );
        self.exec_taken * p_taken
            + self.exec_not_taken * (1.0 - p_taken)
            + self.misp_penalty * misp_rate
    }

    /// Equation (2): cycles of the predicated code (independent of branch
    /// behaviour — both paths are always fetched and executed).
    pub fn predicated_cost(&self) -> f64 {
        self.exec_predicated
    }

    /// Equation (3): predicate iff normal branch code is strictly more
    /// expensive than predicated code.
    pub fn decide(&self, p_taken: f64, misp_rate: f64) -> PredicationDecision {
        if self.branch_cost(p_taken, misp_rate) > self.predicated_cost() {
            PredicationDecision::Predicate
        } else {
            PredicationDecision::KeepBranch
        }
    }

    /// The misprediction rate at which the two costs are equal, for a given
    /// taken probability. Below it the branch wins; above it predication
    /// wins. `None` when no crossover exists in `[0, 1]` (one side always
    /// wins) or the penalty is zero.
    pub fn crossover_misp_rate(&self, p_taken: f64) -> Option<f64> {
        if self.misp_penalty <= 0.0 {
            return None;
        }
        let base = self.exec_taken * p_taken + self.exec_not_taken * (1.0 - p_taken);
        let rate = (self.exec_predicated - base) / self.misp_penalty;
        (0.0..=1.0).contains(&rate).then_some(rate)
    }

    /// Sweeps the misprediction rate and returns
    /// `(rate, branch cost, predicated cost)` rows — the data behind
    /// Figure 2.
    pub fn sweep(
        &self,
        p_taken: f64,
        rates: impl IntoIterator<Item = f64>,
    ) -> Vec<(f64, f64, f64)> {
        rates
            .into_iter()
            .map(|r| (r, self.branch_cost(p_taken, r), self.predicated_cost()))
            .collect()
    }
}

impl Default for CostModel {
    /// Defaults to the paper's Figure 2 parameters.
    fn default() -> Self {
        Self::paper_example()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_crossover_is_seven_percent() {
        // "if the branch misprediction rate is less than 7%, normal branch
        // code takes fewer cycles … greater than 7%, predicated code takes
        // fewer cycles."
        let m = CostModel::paper_example();
        let x = m.crossover_misp_rate(0.5).unwrap();
        assert!((x - (5.0 - 3.0) / 30.0).abs() < 1e-12);
        assert!(
            (x - 0.0667).abs() < 0.001,
            "crossover ~6.67%, reported as 7%"
        );
    }

    #[test]
    fn paper_examples_nine_and_four_percent() {
        // "if the branch misprediction rate is 9%, predicated code performs
        // better … if the misprediction rate becomes 4%, then normal branch
        // code performs better."
        let m = CostModel::paper_example();
        assert_eq!(m.decide(0.5, 0.09), PredicationDecision::Predicate);
        assert_eq!(m.decide(0.5, 0.04), PredicationDecision::KeepBranch);
    }

    #[test]
    fn branch_cost_formula() {
        let m = CostModel {
            exec_taken: 2.0,
            exec_not_taken: 4.0,
            exec_predicated: 5.0,
            misp_penalty: 10.0,
        };
        // eq (1): 2*0.25 + 4*0.75 + 10*0.1 = 0.5 + 3 + 1 = 4.5
        assert!((m.branch_cost(0.25, 0.1) - 4.5).abs() < 1e-12);
        assert!((m.predicated_cost() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_paths_shift_crossover() {
        let m = CostModel {
            exec_taken: 1.0,
            exec_not_taken: 9.0,
            exec_predicated: 10.0,
            misp_penalty: 20.0,
        };
        // heavily taken branch: base = 1*0.9 + 9*0.1 = 1.8 -> x = 8.2/20
        assert!((m.crossover_misp_rate(0.9).unwrap() - 0.41).abs() < 1e-12);
        // heavily not-taken: base = 1*0.1 + 9*0.9 = 8.2 -> x = 1.8/20
        assert!((m.crossover_misp_rate(0.1).unwrap() - 0.09).abs() < 1e-12);
    }

    #[test]
    fn no_crossover_when_predication_always_wins() {
        // Predicated cost below even a perfectly predicted branch.
        let m = CostModel {
            exec_taken: 5.0,
            exec_not_taken: 5.0,
            exec_predicated: 4.0,
            misp_penalty: 30.0,
        };
        assert_eq!(m.crossover_misp_rate(0.5), None);
        assert_eq!(
            m.decide(0.5, 0.0),
            PredicationDecision::Predicate,
            "even a perfectly predicted branch costs more than the predicated region"
        );
    }

    #[test]
    fn sweep_rows_bracket_crossover() {
        let m = CostModel::paper_example();
        let rows = m.sweep(0.5, (0..=30).map(|i| i as f64 / 100.0));
        assert_eq!(rows.len(), 31);
        // at 0%: branch 3 < predicated 5; at 30%: branch 12 > 5
        assert!(rows[0].1 < rows[0].2);
        assert!(rows[30].1 > rows[30].2);
        // costs increase monotonically in misprediction rate
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn tie_keeps_branch() {
        let m = CostModel::paper_example();
        let x = m.crossover_misp_rate(0.5).unwrap();
        assert_eq!(m.decide(0.5, x), PredicationDecision::KeepBranch);
    }

    #[test]
    #[should_panic(expected = "misp_rate")]
    fn rejects_invalid_rate() {
        let _ = CostModel::paper_example().branch_cost(0.5, 1.5);
    }
}
