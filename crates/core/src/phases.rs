//! Phase detection over slice-accuracy time series.
//!
//! The paper's classifier reduces a branch's slice series to three scalar
//! statistics. This extension recovers the *structure* the statistics hint
//! at: it segments a series into phases of roughly constant accuracy via
//! recursive binary segmentation (split at the point that maximizes the
//! standardized mean difference, recurse while the gain is significant).
//! Useful for Figure 8-style analysis and for explaining *why* a branch was
//! classified input-dependent.

/// One detected phase: a maximal run of slices with roughly constant value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Phase {
    /// Index of the first sample of the phase (into the series).
    pub start: usize,
    /// One past the last sample.
    pub end: usize,
    /// Mean value over the phase.
    pub mean: f64,
}

impl Phase {
    /// Number of samples in the phase.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the phase is empty (never produced by detection).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Configuration for [`detect_phases`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseConfig {
    /// Minimum samples per phase.
    pub min_len: usize,
    /// Minimum absolute mean difference between adjacent phases for a split
    /// to be accepted (same units as the series, e.g. accuracy fraction).
    pub min_delta: f64,
}

impl Default for PhaseConfig {
    /// Defaults tuned for slice-accuracy series: phases of at least 5
    /// slices, separated by at least a 5% accuracy shift (the paper's
    /// input-dependence delta).
    fn default() -> Self {
        Self {
            min_len: 5,
            min_delta: 0.05,
        }
    }
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Finds the best split of `xs` into two segments of at least `min_len`
/// samples; returns `(index, |mean difference|)` of the strongest split.
fn best_split(xs: &[f64], min_len: usize) -> Option<(usize, f64)> {
    let n = xs.len();
    if n < 2 * min_len {
        return None;
    }
    let total: f64 = xs.iter().sum();
    let mut left_sum = xs[..min_len - 1].iter().sum::<f64>();
    let mut best: Option<(usize, f64)> = None;
    for k in min_len..=n - min_len {
        left_sum += xs[k - 1];
        let left_mean = left_sum / k as f64;
        let right_mean = (total - left_sum) / (n - k) as f64;
        let delta = (left_mean - right_mean).abs();
        if best.map(|(_, d)| delta > d).unwrap_or(true) {
            best = Some((k, delta));
        }
    }
    best
}

fn segment(xs: &[f64], offset: usize, config: &PhaseConfig, out: &mut Vec<Phase>) {
    if let Some((k, delta)) = best_split(xs, config.min_len) {
        if delta >= config.min_delta {
            segment(&xs[..k], offset, config, out);
            segment(&xs[k..], offset + k, config, out);
            return;
        }
    }
    out.push(Phase {
        start: offset,
        end: offset + xs.len(),
        mean: mean(xs),
    });
}

/// Segments a series into phases of roughly constant value.
///
/// Returns contiguous, non-overlapping phases covering the whole series (an
/// empty series yields no phases). Adjacent detected phases differ in mean
/// by at least roughly `config.min_delta` (up to interactions between
/// recursion levels).
pub fn detect_phases(series: &[f64], config: &PhaseConfig) -> Vec<Phase> {
    if series.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    segment(series, 0, config, &mut out);
    // merge adjacent phases whose means ended up closer than min_delta
    // (possible when a coarse split later refines asymmetrically)
    let mut merged: Vec<Phase> = Vec::with_capacity(out.len());
    for p in out {
        match merged.last_mut() {
            Some(last) if (last.mean - p.mean).abs() < config.min_delta => {
                let total = last.mean * last.len() as f64 + p.mean * p.len() as f64;
                last.end = p.end;
                last.mean = total / last.len() as f64;
            }
            _ => merged.push(p),
        }
    }
    merged
}

/// Convenience: phases of a recorded `(slice, accuracy)` series as produced
/// by [`ProfileReport::series`](crate::ProfileReport::series).
pub fn detect_phases_in_series(samples: &[(u64, f64)], config: &PhaseConfig) -> Vec<Phase> {
    let values: Vec<f64> = samples.iter().map(|&(_, v)| v).collect();
    detect_phases(&values, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(segments: &[(usize, f64)]) -> Vec<f64> {
        segments
            .iter()
            .flat_map(|&(n, v)| std::iter::repeat_n(v, n))
            .collect()
    }

    #[test]
    fn constant_series_is_one_phase() {
        let xs = series(&[(50, 0.9)]);
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases[0].end, 50);
        assert!((phases[0].mean - 0.9).abs() < 1e-12);
    }

    #[test]
    fn single_step_found_at_the_boundary() {
        let xs = series(&[(30, 0.95), (20, 0.60)]);
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 2, "{phases:?}");
        assert_eq!(phases[0].end, 30);
        assert_eq!(phases[1].start, 30);
        assert!((phases[0].mean - 0.95).abs() < 1e-9);
        assert!((phases[1].mean - 0.60).abs() < 1e-9);
    }

    #[test]
    fn three_phases_recovered() {
        let xs = series(&[(25, 0.9), (25, 0.5), (25, 0.8)]);
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 3, "{phases:?}");
        assert_eq!(phases[0].end, 25);
        assert_eq!(phases[1].end, 50);
        assert_eq!(phases[2].end, 75);
    }

    #[test]
    fn sub_threshold_steps_are_ignored() {
        let xs = series(&[(30, 0.90), (30, 0.92)]);
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 1, "2% step below 5% delta: {phases:?}");
    }

    #[test]
    fn noise_does_not_fragment() {
        // 0.9 +- small deterministic jitter
        let xs: Vec<f64> = (0..100)
            .map(|i| 0.9 + ((i * 37) % 10) as f64 * 0.002 - 0.01)
            .collect();
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 1, "{phases:?}");
    }

    #[test]
    fn noisy_step_still_detected() {
        let xs: Vec<f64> = (0..80)
            .map(|i| {
                let base = if i < 40 { 0.92 } else { 0.70 };
                base + ((i * 13) % 7) as f64 * 0.004 - 0.012
            })
            .collect();
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases.len(), 2, "{phases:?}");
        assert!((38..=42).contains(&phases[0].end), "{phases:?}");
    }

    #[test]
    fn phases_tile_the_series() {
        let xs = series(&[(12, 0.2), (7, 0.9), (30, 0.5), (6, 0.95)]);
        let phases = detect_phases(&xs, &PhaseConfig::default());
        assert_eq!(phases[0].start, 0);
        assert_eq!(phases.last().unwrap().end, xs.len());
        for w in phases.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases must tile: {phases:?}");
        }
        let covered: usize = phases.iter().map(Phase::len).sum();
        assert_eq!(covered, xs.len());
    }

    #[test]
    fn short_and_empty_series() {
        assert!(detect_phases(&[], &PhaseConfig::default()).is_empty());
        let one = detect_phases(&[0.5], &PhaseConfig::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), 1);
        assert!(!one[0].is_empty());
    }

    #[test]
    fn min_len_respected() {
        let xs = series(&[(3, 0.1), (60, 0.9)]);
        let config = PhaseConfig {
            min_len: 10,
            min_delta: 0.05,
        };
        let phases = detect_phases(&xs, &config);
        for p in &phases {
            assert!(p.len() >= 10 || phases.len() == 1, "{phases:?}");
        }
    }

    #[test]
    fn tuple_series_helper() {
        let samples: Vec<(u64, f64)> = (0..40)
            .map(|i| (i, if i < 20 { 1.0 } else { 0.5 }))
            .collect();
        let phases = detect_phases_in_series(&samples, &PhaseConfig::default());
        assert_eq!(phases.len(), 2);
    }
}
