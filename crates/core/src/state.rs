//! Per-branch profiling state: the paper's seven variables (Figure 9a).

/// The complete 2D-profiling state for one static branch.
///
/// This is exactly the storage the paper budgets per branch (Figure 9a):
///
/// | field             | paper name        | purpose                          |
/// |-------------------|-------------------|----------------------------------|
/// | `n`               | `N`               | number of counted slices         |
/// | `spa`             | `SPA`             | sum of (filtered) slice accuracies |
/// | `sspa`            | `SSPA`            | sum of squares of the same       |
/// | `npam`            | `NPAM`            | # slices above the running mean  |
/// | `exec_counter`    | `exec_counter`    | executions in the current slice  |
/// | `predict_counter` | `predict_counter` | correct predictions in the slice |
/// | `lpa`             | `LPA`             | last slice's filtered accuracy (FIR state) |
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BranchState {
    n: u64,
    spa: f64,
    sspa: f64,
    npam: u64,
    exec_counter: u64,
    predict_counter: u64,
    lpa: Option<f64>,
    total_exec: u64,
    total_correct: u64,
}

impl BranchState {
    /// Fresh state with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic execution of the branch within the current slice.
    #[inline]
    pub fn record(&mut self, predicted_correctly: bool) {
        self.exec_counter += 1;
        self.predict_counter += predicted_correctly as u64;
        self.total_exec += 1;
        self.total_correct += predicted_correctly as u64;
    }

    /// Records `executions` dynamic executions within the current slice,
    /// `correct` of them predicted correctly — the batched twin of
    /// [`record`](Self::record). All per-event recording is integer
    /// addition, so folding a whole within-slice batch at once is
    /// bit-identical to `executions` individual `record` calls.
    ///
    /// # Panics
    ///
    /// Panics if `correct > executions`.
    #[inline]
    pub fn record_batch(&mut self, executions: u64, correct: u64) {
        assert!(correct <= executions, "correct exceeds executions");
        self.exec_counter += executions;
        self.predict_counter += correct;
        self.total_exec += executions;
        self.total_correct += correct;
    }

    /// Closes the current slice (the paper's Figure 9b): if the branch
    /// executed more than `exec_threshold` times in the slice, fold the
    /// slice's FIR-filtered prediction accuracy into the running statistics;
    /// either way, reset the per-slice counters.
    ///
    /// The FIR filter averages the current slice accuracy with the previous
    /// slice's filtered accuracy (`LPA`) to suppress high-frequency sampling
    /// noise. The paper leaves `LPA`'s initial value unspecified; seeding it
    /// with the first counted slice's accuracy (rather than zero) avoids
    /// halving the first sample, and is what we do.
    pub fn end_slice(&mut self, exec_threshold: u64) {
        if self.exec_counter > exec_threshold {
            self.n += 1;
            let pred_acc = self.predict_counter as f64 / self.exec_counter as f64;
            let filtered = match self.lpa {
                Some(last) => (pred_acc + last) / 2.0,
                None => pred_acc,
            };
            self.spa += filtered;
            self.sspa += filtered * filtered;
            let running_avg = self.spa / self.n as f64;
            // The epsilon guards against accumulated floating-point rounding
            // spuriously counting slices of an exactly-constant series.
            if filtered > running_avg + 1e-9 {
                self.npam += 1;
            }
            self.lpa = Some(filtered);
        }
        self.exec_counter = 0;
        self.predict_counter = 0;
    }

    /// Like [`end_slice`](Self::end_slice), but also returns the slice's
    /// filtered accuracy when the slice was counted (used by time-series
    /// recording for Figure 8).
    pub fn end_slice_sampled(&mut self, exec_threshold: u64) -> Option<f64> {
        let counted = self.exec_counter > exec_threshold;
        self.end_slice(exec_threshold);
        counted.then(|| self.lpa.expect("counted slice sets LPA"))
    }

    /// Number of counted slices (`N`).
    pub fn slices(&self) -> u64 {
        self.n
    }

    /// Mean of the filtered slice accuracies (`SPA / N`), or `None` if no
    /// slice was counted.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.spa / self.n as f64)
    }

    /// Population standard deviation of the filtered slice accuracies
    /// (`sqrt(SSPA/N − mean²)`), or `None` if no slice was counted.
    pub fn std_dev(&self) -> Option<f64> {
        self.mean().map(|m| {
            let var = self.sspa / self.n as f64 - m * m;
            // guard tiny negative values from floating-point rounding
            var.max(0.0).sqrt()
        })
    }

    /// Fraction of counted slices whose filtered accuracy exceeded the
    /// running mean (`NPAM / N`), or `None` if no slice was counted.
    pub fn points_above_mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.npam as f64 / self.n as f64)
    }

    /// Raw count of slices above the running mean (`NPAM`). By construction
    /// `NPAM <= N` always holds.
    pub fn slices_above_mean(&self) -> u64 {
        self.npam
    }

    /// Total dynamic executions across the whole run (all slices, counted or
    /// not, plus any open slice).
    pub fn total_executions(&self) -> u64 {
        self.total_exec
    }

    /// Whole-run aggregate prediction accuracy, or `None` if the branch never
    /// executed. This is the 1-D quantity a conventional profiler reports.
    pub fn aggregate_accuracy(&self) -> Option<f64> {
        (self.total_exec > 0).then(|| self.total_correct as f64 / self.total_exec as f64)
    }

    /// Executions recorded in the currently open slice.
    pub fn open_slice_executions(&self) -> u64 {
        self.exec_counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(state: &mut BranchState, correct: u64, wrong: u64) {
        for _ in 0..correct {
            state.record(true);
        }
        for _ in 0..wrong {
            state.record(false);
        }
    }

    #[test]
    fn below_threshold_slices_are_discarded() {
        let mut s = BranchState::new();
        feed(&mut s, 5, 5);
        s.end_slice(10); // 10 executions, threshold 10: "more than" fails
        assert_eq!(s.slices(), 0);
        assert_eq!(s.mean(), None);
        // but per-slice counters reset regardless
        assert_eq!(s.open_slice_executions(), 0);
        // and the whole-run totals are still kept
        assert_eq!(s.total_executions(), 10);
        assert_eq!(s.aggregate_accuracy(), Some(0.5));
    }

    #[test]
    fn first_slice_is_not_halved_by_fir() {
        let mut s = BranchState::new();
        feed(&mut s, 80, 20);
        s.end_slice(50);
        assert_eq!(s.slices(), 1);
        assert!((s.mean().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn fir_averages_with_previous_slice() {
        let mut s = BranchState::new();
        feed(&mut s, 100, 0); // slice 1: 1.0 -> filtered 1.0
        s.end_slice(50);
        feed(&mut s, 0, 100); // slice 2: 0.0 -> filtered (0.0 + 1.0)/2 = 0.5
        s.end_slice(50);
        // SPA = 1.0 + 0.5, mean = 0.75
        assert!((s.mean().unwrap() - 0.75).abs() < 1e-12);
        // LPA is now 0.5; slice 3 at 0.5 raw -> filtered 0.5
        feed(&mut s, 50, 50);
        s.end_slice(50);
        assert!((s.mean().unwrap() - (1.0 + 0.5 + 0.5) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn std_dev_zero_for_constant_accuracy() {
        let mut s = BranchState::new();
        for _ in 0..10 {
            feed(&mut s, 90, 10);
            s.end_slice(50);
        }
        assert!((s.mean().unwrap() - 0.9).abs() < 1e-12);
        assert!(s.std_dev().unwrap() < 1e-9);
    }

    #[test]
    fn std_dev_of_known_sequence() {
        // Raw slice accuracies 1.0 then 0.0 alternating; with FIR the
        // filtered sequence is 1.0, 0.5, 0.25+0.5/2... — compute explicitly.
        let mut s = BranchState::new();
        let mut filtered_seq = Vec::new();
        let mut lpa: Option<f64> = None;
        for k in 0..6 {
            let raw = if k % 2 == 0 { 1.0 } else { 0.0 };
            let f = match lpa {
                Some(l) => (raw + l) / 2.0,
                None => raw,
            };
            filtered_seq.push(f);
            lpa = Some(f);
            if k % 2 == 0 {
                feed(&mut s, 100, 0);
            } else {
                feed(&mut s, 0, 100);
            }
            s.end_slice(50);
        }
        let n = filtered_seq.len() as f64;
        let mean = filtered_seq.iter().sum::<f64>() / n;
        let var = filtered_seq.iter().map(|f| f * f).sum::<f64>() / n - mean * mean;
        assert!((s.mean().unwrap() - mean).abs() < 1e-12);
        assert!((s.std_dev().unwrap() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn npam_uses_running_mean() {
        // Figure 9b computes the running mean *after* adding the current
        // slice, then compares the current filtered accuracy against it.
        let mut s = BranchState::new();
        feed(&mut s, 100, 0);
        s.end_slice(10); // filtered 1.0, running mean 1.0 -> not strictly above
        assert_eq!(s.points_above_mean(), Some(0.0));
        feed(&mut s, 0, 100);
        s.end_slice(10); // filtered 0.5, mean (1.0+0.5)/2=0.75 -> below
        assert_eq!(s.points_above_mean(), Some(0.0));
        feed(&mut s, 100, 0);
        s.end_slice(10); // filtered 0.75, mean (1.5+0.75)/3=0.75 -> not above
        feed(&mut s, 100, 0);
        s.end_slice(10); // filtered 0.875, mean (2.25+0.875)/4 = 0.78125 -> above
        assert_eq!(s.points_above_mean(), Some(0.25));
    }

    #[test]
    fn sampled_variant_reports_filtered_accuracy() {
        let mut s = BranchState::new();
        feed(&mut s, 75, 25);
        assert_eq!(s.end_slice_sampled(50), Some(0.75));
        feed(&mut s, 3, 1);
        assert_eq!(
            s.end_slice_sampled(50),
            None,
            "below threshold -> no sample"
        );
    }

    #[test]
    fn stable_branch_statistics_match_by_hand() {
        let mut s = BranchState::new();
        for _ in 0..4 {
            feed(&mut s, 58, 42);
            s.end_slice(50);
        }
        // All slices 0.58; FIR leaves a constant sequence unchanged.
        assert!((s.mean().unwrap() - 0.58).abs() < 1e-12);
        assert!(s.std_dev().unwrap() < 1e-12);
        assert_eq!(s.points_above_mean(), Some(0.0));
        assert_eq!(s.slices(), 4);
        assert_eq!(s.total_executions(), 400);
    }
}
