//! Property tests for the seven-variable branch state: the FIR filter,
//! the SPA/SSPA moment accumulators, and the PAM counter.

use btrace::{SiteId, Tracer};
use proptest::prelude::*;
use twodprof_core::{BranchState, SliceConfig, Thresholds, TwoDProfiler};

/// Drives `state` through one slice with `correct` hits out of `total`
/// executions, and returns the slice's raw (unfiltered) accuracy.
fn run_slice(state: &mut BranchState, correct: u32, total: u32) -> f64 {
    for i in 0..total {
        state.record(i < correct);
    }
    correct as f64 / total as f64
}

proptest! {
    #[test]
    fn fir_output_stays_within_input_envelope(
        slices in prop::collection::vec((0u32..=64, 1u32..=64), 1..40),
    ) {
        // The 2-tap FIR averages the slice accuracy with the previous
        // filtered value, so every output must lie inside the min/max
        // envelope of the raw accuracies seen so far.
        let mut state = BranchState::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &(correct, extra) in &slices {
            let total = correct + extra; // guarantees correct <= total, total >= 1
            let raw = run_slice(&mut state, correct, total);
            lo = lo.min(raw);
            hi = hi.max(raw);
            if let Some(filtered) = state.end_slice_sampled(0) {
                prop_assert!(
                    filtered >= lo - 1e-12 && filtered <= hi + 1e-12,
                    "filtered {filtered} escaped [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn moment_accumulators_never_yield_negative_variance(
        slices in prop::collection::vec((0u32..=64, 1u32..=64), 0..40),
        threshold in 0u64..8,
    ) {
        // SPA/SSPA are running sums; catastrophic cancellation in
        // SSPA/N - mean^2 must never surface as a negative variance or a
        // NaN standard deviation.
        let mut state = BranchState::new();
        for &(correct, extra) in &slices {
            run_slice(&mut state, correct, correct + extra);
            state.end_slice(threshold);
            match state.std_dev() {
                None => prop_assert_eq!(state.slices(), 0),
                Some(sd) => {
                    prop_assert!(sd.is_finite(), "std_dev must never be NaN/inf");
                    prop_assert!(sd >= 0.0, "std_dev must be non-negative");
                }
            }
            if let Some(m) = state.mean() {
                prop_assert!((0.0..=1.0).contains(&m), "mean {m} outside [0, 1]");
            }
        }
    }

    #[test]
    fn npam_never_exceeds_slice_count(
        events in prop::collection::vec((0u8..4, any::<bool>()), 1..2000),
        slice_len in 8u64..64,
    ) {
        // NPAM counts a subset of the counted slices, so NPAM <= N must hold
        // for arbitrary event streams fed through the full profiler.
        let mut prof = TwoDProfiler::new(
            4,
            bpred::StaticTaken,
            SliceConfig::new(slice_len, 2),
        );
        for &(site, taken) in &events {
            prof.branch(SiteId(site as u32), taken);
        }
        for site in 0..4u32 {
            let st = prof.state(SiteId(site));
            prop_assert!(
                st.slices_above_mean() <= st.slices(),
                "site {site}: NPAM {} > N {}",
                st.slices_above_mean(),
                st.slices()
            );
        }
        // finish() must classify without panicking on arbitrary streams
        let report = prof.finish(Thresholds::default());
        prop_assert!(report.total_branches() == events.len() as u64);
    }
}
