//! `twodprof-obs` — the workspace's observability layer.
//!
//! The paper's pitch is that 2D-profiling is cheap enough to run *online*
//! (seven state variables per branch); once the profiler, the sweep engine,
//! and the ingestion daemon are long-lived services, that claim needs
//! numbers behind it. This crate provides them: a process-global registry of
//! atomic metrics that every layer of the stack instruments its hot paths
//! with, cheap enough that the instrumented `ingest_throughput` bench stays
//! within noise of the uninstrumented one.
//!
//! # Metric kinds
//!
//! - [`Counter`] — monotonically increasing `u64` (events ingested, cache
//!   hits, sessions opened).
//! - [`Gauge`] — signed up/down value (worker-pool queue depth, live
//!   sessions).
//! - [`Histogram`] — fixed-bucket base-2 histogram of `u64` samples
//!   (per-job wall time in microseconds). Bucket `i` holds values `v` with
//!   `v < 2^i` and `v >= 2^(i-1)` (bucket 0 holds zero), so `observe` is a
//!   leading-zeros count plus one relaxed add — no floats, no locks.
//!
//! # Handle API
//!
//! Metrics are registered once and used through `&'static` handles; the
//! [`counter!`], [`gauge!`], and [`histogram!`] macros cache the handle in a
//! per-call-site `OnceLock`, so steady-state cost is one pointer load plus
//! one relaxed atomic RMW:
//!
//! ```
//! let events = twodprof_obs::counter!("demo_events_total", "Events seen.");
//! events.add(128);
//! assert!(events.get() >= 128);
//! ```
//!
//! # Disabling
//!
//! Setting `TWODPROF_METRICS=off` (or `0` / `false`) in the environment
//! detaches the global registry: every registration hands out a private
//! *void* cell that no snapshot ever reads. The update path is the same
//! machine code either way — load the handle, relaxed RMW — so disabling is
//! branch-free on the hot path; it only removes the metric from exposition.
//!
//! # Exposition
//!
//! [`Registry::snapshot`] takes a point-in-time [`Snapshot`] which renders
//! to Prometheus-compatible text lines ([`Snapshot::to_text`]) and
//! serializes over the workspace's LEB128 varint layer
//! ([`Snapshot::to_bytes`] / [`Snapshot::from_bytes`]) — the payload the
//! `twodprofd` `Stats` wire frame carries. [`Snapshot::delta`] subtracts an
//! earlier snapshot for per-interval rates.
//!
//! Dynamically-indexed metrics (per-shard, per-node) register through a
//! [`Family`]: a `const`-constructible helper that formats
//! `{base}{index}{suffix}` names through the shared interner and caches one
//! `&'static` handle per index — the structured replacement for hand-rolled
//! `intern_name(format!(...))` call sites.
//!
//! # Timeline
//!
//! The [`timeline`] module keeps recent history: a bounded ring of periodic
//! [`Snapshot::delta`] results ([`Timeline`]) with per-interval timestamps,
//! rate queries, and varint serialization — what the daemon's `/vars` HTTP
//! endpoint serves as its recent-rates tail.
//!
//! # Span tracing
//!
//! Aggregates say *how often*; the [`trace`] module says *where the time
//! went* for one request: scoped [`trace::Span`]s (via the [`span!`] macro)
//! recorded into per-thread lock-free rings, drained into a global
//! [`trace::Collector`], exported as Chrome trace-event JSON ([`chrome`])
//! or a compact varint block that rides the serve wire protocol. Disable
//! with `TWODPROF_TRACE=off`, mirroring the metrics void-cell scheme.

pub mod chrome;
mod metric;
mod registry;
mod snapshot;
pub mod timeline;
pub mod trace;

pub use metric::{Counter, Gauge, Histogram, NUM_BUCKETS};
pub use registry::{global, intern_name, Family, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use timeline::{Timeline, TimelineEntry};

/// Registers (idempotently) and returns a `&'static` [`Counter`] on the
/// global registry, caching the handle per call site.
#[macro_export]
macro_rules! counter {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().counter($name, $help))
    }};
}

/// Registers (idempotently) and returns a `&'static` [`Gauge`] on the
/// global registry, caching the handle per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().gauge($name, $help))
    }};
}

/// Registers (idempotently) and returns a `&'static` [`Histogram`] on the
/// global registry, caching the handle per call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $help:expr) => {{
        static HANDLE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::global().histogram($name, $help))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_and_share_handles() {
        let a = counter!("obs_lib_test_total", "Test counter.");
        let b = crate::global().counter("obs_lib_test_total", "Test counter.");
        assert!(std::ptr::eq(a, b), "same name must share one cell");
        a.inc();
        assert!(b.get() >= 1);
        let g = gauge!("obs_lib_test_gauge", "Test gauge.");
        g.add(3);
        g.sub(1);
        let h = histogram!("obs_lib_test_hist", "Test histogram.");
        h.observe(7);
        assert_eq!(h.count(), 1);
    }
}
