//! The metric registry: name → handle, plus the process-global instance.

use crate::metric::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// One registered metric, by kind.
enum Entry {
    Counter {
        help: &'static str,
        cell: &'static Counter,
    },
    Gauge {
        help: &'static str,
        cell: &'static Gauge,
    },
    Histogram {
        help: &'static str,
        cell: &'static Histogram,
    },
}

/// A collection of named metrics.
///
/// Registration is idempotent by name (re-registering returns the existing
/// handle) and happens off the hot path; the handles themselves are lock-free
/// atomics. Handles are `&'static` — cells are leaked on first registration,
/// which is the right trade for process-lifetime metrics.
///
/// A registry created *disabled* hands out detached "void" cells instead:
/// the caller's update path is byte-for-byte the same (load handle, relaxed
/// RMW — no enabled-branch anywhere), but no snapshot ever includes the
/// value. This is how `TWODPROF_METRICS=off` turns the whole layer into a
/// no-op without a conditional in any instrumented function.
pub struct Registry {
    enabled: bool,
    entries: Mutex<BTreeMap<&'static str, Entry>>,
}

impl Registry {
    /// An empty registry. `enabled = false` makes every future registration
    /// return a detached void cell.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether registrations land in snapshots.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or retrieves) a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        if !self.enabled {
            return Box::leak(Box::new(Counter::new()));
        }
        let mut entries = self.entries.lock().expect("metric registry");
        match entries.entry(name).or_insert_with(|| Entry::Counter {
            help,
            cell: Box::leak(Box::new(Counter::new())),
        }) {
            Entry::Counter { cell, .. } => cell,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        if !self.enabled {
            return Box::leak(Box::new(Gauge::new()));
        }
        let mut entries = self.entries.lock().expect("metric registry");
        match entries.entry(name).or_insert_with(|| Entry::Gauge {
            help,
            cell: Box::leak(Box::new(Gauge::new())),
        }) {
            Entry::Gauge { cell, .. } => cell,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Histogram {
        if !self.enabled {
            return Box::leak(Box::new(Histogram::new()));
        }
        let mut entries = self.entries.lock().expect("metric registry");
        match entries.entry(name).or_insert_with(|| Entry::Histogram {
            help,
            cell: Box::leak(Box::new(Histogram::new())),
        }) {
            Entry::Histogram { cell, .. } => cell,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by name
    /// (the `BTreeMap` ordering), so exposition is deterministic.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("metric registry");
        let mut snap = Snapshot::default();
        for (&name, entry) in entries.iter() {
            match entry {
                Entry::Counter { help, cell } => {
                    snap.counters
                        .push((name.to_owned(), (*help).to_owned(), cell.get()));
                }
                Entry::Gauge { help, cell } => {
                    snap.gauges
                        .push((name.to_owned(), (*help).to_owned(), cell.get()));
                }
                Entry::Histogram { help, cell } => {
                    snap.histograms.push((
                        name.to_owned(),
                        (*help).to_owned(),
                        HistogramSnapshot {
                            buckets: cell.buckets().to_vec(),
                            sum: cell.sum(),
                        },
                    ));
                }
            }
        }
        snap
    }
}

/// A labeled metric family: one metric kind instantiated per small integer
/// index, with names of the form `{base}{index}{suffix}` (e.g.
/// `serve_shard3_sessions`). The index rides *inside* the metric name rather
/// than as a Prometheus `{label="..."}` pair because [`Snapshot::to_text`]
/// emits one `# HELP`/`# TYPE` header per name — a label embedded in the
/// name would corrupt those lines.
///
/// A `Family` is `const`-constructible so call sites can hold one in a
/// `static`, mirroring the `counter!`/`gauge!` macros' per-call-site cache:
/// `get(index)` interns the formatted name and registers on the global
/// registry exactly once per index, then answers from a lock-protected
/// dense cache. Registration stays off the hot path; the returned handles
/// are the usual `&'static` lock-free cells.
pub struct Family<M: 'static> {
    base: &'static str,
    suffix: &'static str,
    help: &'static str,
    register: fn(&'static str, &'static str) -> &'static M,
    cells: Mutex<Vec<Option<&'static M>>>,
}

impl<M> Family<M> {
    const fn new(
        base: &'static str,
        suffix: &'static str,
        help: &'static str,
        register: fn(&'static str, &'static str) -> &'static M,
    ) -> Self {
        Self {
            base,
            suffix,
            help,
            register,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// The member metric for `index`, registering it on the global registry
    /// on first use. Subsequent calls for the same index return the cached
    /// `&'static` handle.
    pub fn get(&self, index: usize) -> &'static M {
        let mut cells = self.cells.lock().expect("metric family cache");
        if index >= cells.len() {
            cells.resize(index + 1, None);
        }
        cells[index].get_or_insert_with(|| {
            let name = intern_name(format!("{}{index}{}", self.base, self.suffix));
            (self.register)(name, self.help)
        })
    }

    /// The full metric name for `index`, interned whether or not the member
    /// has been registered yet.
    pub fn name(&self, index: usize) -> &'static str {
        intern_name(format!("{}{index}{}", self.base, self.suffix))
    }
}

impl Family<Counter> {
    /// A counter family registering on the global registry.
    pub const fn counter(base: &'static str, suffix: &'static str, help: &'static str) -> Self {
        fn register(name: &'static str, help: &'static str) -> &'static Counter {
            global().counter(name, help)
        }
        Self::new(base, suffix, help, register)
    }
}

impl Family<Gauge> {
    /// A gauge family registering on the global registry.
    pub const fn gauge(base: &'static str, suffix: &'static str, help: &'static str) -> Self {
        fn register(name: &'static str, help: &'static str) -> &'static Gauge {
            global().gauge(name, help)
        }
        Self::new(base, suffix, help, register)
    }
}

impl Family<Histogram> {
    /// A histogram family registering on the global registry.
    pub const fn histogram(base: &'static str, suffix: &'static str, help: &'static str) -> Self {
        fn register(name: &'static str, help: &'static str) -> &'static Histogram {
            global().histogram(name, help)
        }
        Self::new(base, suffix, help, register)
    }
}

/// Interns a runtime-built metric name, returning the canonical
/// `&'static str` for it. The `counter!`/`gauge!` macros cache their
/// handle in a per-call-site static, which pins the name at compile time;
/// code that builds names dynamically (per-shard gauges, per-node fabric
/// gauges) interns the string once here and registers straight on the
/// [`Registry`]. Each distinct name leaks exactly once — the same trade
/// the metric cells already make for process-lifetime data.
pub fn intern_name(name: String) -> &'static str {
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut names = NAMES.lock().expect("interned metric names");
    if let Some(existing) = names.iter().find(|n| ***n == *name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    names.push(leaked);
    leaked
}

/// The process-global registry the [`counter!`](crate::counter),
/// [`gauge!`](crate::gauge), and [`histogram!`](crate::histogram) macros
/// register on. Enabled unless the `TWODPROF_METRICS` environment variable
/// is `off`, `0`, or `false` at first use.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let disabled = std::env::var("TWODPROF_METRICS")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "off" | "0" | "false"))
            .unwrap_or(false);
        Registry::new(!disabled)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new(true);
        let a = r.counter("x_total", "X.");
        let b = r.counter("x_total", "X.");
        assert!(std::ptr::eq(a, b));
        a.add(2);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("x_total".to_owned(), "X.".to_owned(), 2)]
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new(true);
        r.counter("clash", "A counter.");
        r.gauge("clash", "A gauge.");
    }

    #[test]
    fn disabled_registry_hands_out_void_cells() {
        let r = Registry::new(false);
        let c = r.counter("invisible_total", "Never seen.");
        c.add(99);
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        // two registrations under the same name are independent cells
        let d = r.counter("invisible_total", "Never seen.");
        assert!(!std::ptr::eq(c, d));
        assert_eq!(d.get(), 0);
    }

    #[test]
    fn family_formats_names_and_caches_handles() {
        static SESSIONS: Family<Gauge> =
            Family::gauge("obs_family_test_shard", "_sessions", "Family test gauge.");
        let g0 = SESSIONS.get(0);
        let g3 = SESSIONS.get(3);
        assert!(!std::ptr::eq(g0, g3));
        assert!(std::ptr::eq(g0, SESSIONS.get(0)), "index 0 must be cached");
        assert_eq!(SESSIONS.name(3), "obs_family_test_shard3_sessions");
        g3.set(7);
        // the family registers on the global registry under the formatted name
        let direct = global().gauge(
            intern_name("obs_family_test_shard3_sessions".to_owned()),
            "Family test gauge.",
        );
        assert!(std::ptr::eq(g3, direct));
        assert_eq!(direct.get(), 7);
    }

    #[test]
    fn family_counter_and_histogram_kinds() {
        static HITS: Family<Counter> = Family::counter(
            "obs_family_test_node",
            "_hits_total",
            "Family test counter.",
        );
        static LAT: Family<Histogram> =
            Family::histogram("obs_family_test_node", "_micros", "Family test histogram.");
        HITS.get(1).add(4);
        assert_eq!(HITS.get(1).get(), 4);
        LAT.get(2).observe(9);
        assert_eq!(LAT.get(2).count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new(true);
        r.counter("zzz_total", "Z.");
        r.counter("aaa_total", "A.");
        r.gauge("mid_gauge", "M.");
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "aaa_total");
        assert_eq!(snap.counters[1].0, "zzz_total");
        assert_eq!(snap.gauges[0].0, "mid_gauge");
    }
}
