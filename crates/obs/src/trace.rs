//! Structured span tracing: where a request spent its time, not just how
//! often things happened.
//!
//! The metrics layer ([`crate::Counter`] and friends) answers aggregate
//! questions; this module answers *per-request* ones — which stage of a
//! `ProfileRequest` (probe, record, decode, fused simulate, cache write) or
//! which daemon frame a given wall-clock interval went to. The design
//! mirrors the metrics layer's philosophy:
//!
//! - **Per-thread SPSC ring buffers.** Each thread owns a fixed-capacity
//!   ring of finished [`SpanRecord`]s. The owning thread is the only
//!   producer; the global [`Collector`] (or the owner itself, when the ring
//!   is nearly full) drains records into a bounded in-memory store. A full
//!   ring drops new spans and counts them — recording never blocks.
//! - **Monotonic clock.** Timestamps are microseconds since the process's
//!   private trace epoch (first use of the clock), taken from
//!   [`std::time::Instant`]. Cross-process alignment is the exporter's job
//!   (the serve layer anchors the two clocks over the wire).
//! - **Branch-free disable.** `TWODPROF_TRACE=off` (or `0` / `false`)
//!   disables tracing the same way `TWODPROF_METRICS=off` does: the
//!   instrumented call sites run the identical enter/record code, but the
//!   thread's ring is never registered with the collector, so it saturates
//!   once and every later record is a bounds-check-and-drop. Nothing in an
//!   instrumented function branches on an "enabled" flag.
//!
//! # Identity model
//!
//! A *trace* is a 16-byte id naming one logical request end-to-end
//! (possibly across processes); a *span* is a named `[start, start+dur)`
//! interval with a random-seeded 64-bit id and a parent span id (0 = root).
//! The current `(trace, span)` pair lives in thread-local storage;
//! [`Span::enter`] (via the [`span!`](crate::span!) macro) parents itself
//! under it, and [`attach`] carries it across thread boundaries (the engine
//! worker pool) and — via the serve wire frames — across the client/daemon
//! boundary.
//!
//! # Export
//!
//! Finished spans serialize to a compact varint block
//! ([`encode_spans`] / [`decode_spans`]) riding the same LEB128 layer as
//! every other wire payload in the workspace, and render to Chrome
//! trace-event JSON via [`crate::chrome`].

use std::cell::{Cell, OnceCell, UnsafeCell};
use std::collections::VecDeque;
use std::io::{self, Read};
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use btrace::{read_varint, write_varint};

/// Slots per thread-local span ring. Power of two; at the coarse (per-job,
/// per-frame) granularity the workspace traces at, a ring this size absorbs
/// bursts between drains comfortably.
pub const RING_CAPACITY: usize = 2048;

/// The producer self-flushes into the collector store once its ring holds
/// this many records, so long-lived threads don't need an external drain.
const FLUSH_WATERMARK: usize = RING_CAPACITY - RING_CAPACITY / 4;

/// Upper bound on finished spans retained by the collector store; oldest
/// spans are evicted first. Bounds daemon memory no matter how many traced
/// sessions pass through.
pub const STORE_CAPACITY: usize = 1 << 16;

/// Hard cap on spans accepted by [`decode_spans`], and on the span count
/// the daemon serializes into one `TraceSpans` reply. Keeps a span block
/// comfortably under `btrace::MAX_FRAME_LEN`.
pub const MAX_WIRE_SPANS: usize = 16_384;

const SPAN_BLOCK_VERSION: u8 = 1;
const MAX_WIRE_NAME_LEN: u64 = 256;

// ---------------------------------------------------------------------------
// Clock and identifiers
// ---------------------------------------------------------------------------

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since this process's trace epoch (first use of the trace
/// clock). Monotonic and cheap (vDSO clock read); meaningless across
/// processes without an anchor exchange.
pub fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let pid = std::process::id() as u64;
        // ASLR gives the static's address some per-process entropy even if
        // two processes start the same nanosecond.
        let addr = &SEED as *const _ as usize as u64;
        splitmix64(nanos ^ pid.rotate_left(32) ^ addr)
    })
}

fn span_counter() -> &'static AtomicU64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    // Random starting point so span ids from different processes (client
    // and daemon halves of one stitched trace) don't collide.
    NEXT.get_or_init(|| AtomicU64::new(splitmix64(process_seed()) | 1))
}

fn next_span_id() -> u64 {
    span_counter().fetch_add(1, Ordering::Relaxed)
}

/// Returns a fresh non-zero 16-byte trace id, unique across threads and —
/// with overwhelming probability — across processes.
pub fn new_trace_id() -> u128 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let hi = splitmix64(process_seed() ^ n);
    let lo = splitmix64(hi ^ n.rotate_left(17) ^ 0xA076_1D64_78BD_642F);
    (u128::from(hi) << 64) | u128::from(lo) | 1
}

/// Poison-tolerant lock: spans can drop while the engine unwinds a caught
/// workload panic, and tracing must keep working afterwards.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// A finished span as stored in the thread-local ring: `Copy`, no heap.
#[derive(Clone, Copy, Debug)]
struct SpanRecord {
    trace: u128,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
}

/// A finished span in exportable form: owned name plus the thread and
/// process lanes the exporters group by.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportSpan {
    /// 16-byte trace id this span belongs to.
    pub trace: u128,
    /// This span's id (non-zero).
    pub id: u64,
    /// Parent span id, `0` for a root span.
    pub parent: u64,
    /// Human-readable span name (`engine.job`, `serve.frame.events`, ...).
    pub name: String,
    /// Start, microseconds on the *recording* process's trace clock.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Recording thread lane (collector-assigned, stable per thread).
    pub tid: u64,
    /// Process lane for stitched multi-process exports. The collector
    /// stamps `0` ("this process"); stitching code reassigns.
    pub pid: u32,
}

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

/// Fixed-capacity single-producer ring of finished spans. The owning thread
/// pushes; whoever holds the collector's store lock drains. `head`/`tail`
/// are free-running indices (slot = index % capacity).
struct SpanRing {
    slots: Box<[UnsafeCell<MaybeUninit<SpanRecord>>]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
    tid: u64,
}

// SAFETY: cross-thread access to `slots` is mediated by the head/tail
// acquire/release protocol below — a slot is written only while it is
// outside the readable [tail, head) window and read only inside it.
unsafe impl Send for SpanRing {}
unsafe impl Sync for SpanRing {}

impl SpanRing {
    fn new(tid: u64) -> Self {
        let slots = (0..RING_CAPACITY)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            tid,
        }
    }

    /// Producer side. Returns `false` (and counts a drop) when full.
    fn push(&self, rec: SpanRecord) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's release store of `tail`: once we
        // observe the slot freed, the consumer's read of it has completed.
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= RING_CAPACITY {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        // SAFETY: `head` is outside the readable window, so no reader
        // touches this slot until the release store below publishes it.
        unsafe { (*self.slots[head % RING_CAPACITY].get()).write(rec) };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Records currently buffered.
    fn len(&self) -> usize {
        self.head
            .load(Ordering::Relaxed)
            .wrapping_sub(self.tail.load(Ordering::Relaxed))
    }

    /// Consumer side; the caller must hold the collector store lock so at
    /// most one drain runs at a time.
    fn drain_into(&self, out: &mut Vec<ExportSpan>) {
        let tail = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the producer's release store of `head`.
        let head = self.head.load(Ordering::Acquire);
        let mut idx = tail;
        while idx != head {
            // SAFETY: [tail, head) slots were published by the producer's
            // release store and are not rewritten until `tail` passes them.
            let rec = unsafe { (*self.slots[idx % RING_CAPACITY].get()).assume_init() };
            out.push(ExportSpan {
                trace: rec.trace,
                id: rec.id,
                parent: rec.parent,
                name: rec.name.to_owned(),
                start_us: rec.start_us,
                dur_us: rec.dur_us,
                tid: self.tid,
                pid: 0,
            });
            idx = idx.wrapping_add(1);
        }
        self.tail.store(head, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

/// Global sink for finished spans: a registry of per-thread rings plus a
/// bounded FIFO store of drained spans.
pub struct Collector {
    enabled: bool,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    store: Mutex<VecDeque<ExportSpan>>,
    evicted: AtomicU64,
    next_tid: AtomicU64,
}

impl Collector {
    /// A fresh collector; disabled collectors hand out *void* rings that are
    /// never drained, mirroring the metrics registry's void cells.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled,
            rings: Mutex::new(Vec::new()),
            store: Mutex::new(VecDeque::new()),
            evicted: AtomicU64::new(0),
            next_tid: AtomicU64::new(1),
        }
    }

    /// Whether rings registered here are ever drained.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn register_thread(&self) -> Arc<SpanRing> {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(SpanRing::new(tid));
        if self.enabled {
            lock(&self.rings).push(Arc::clone(&ring));
        }
        ring
    }

    fn push_store(store: &mut VecDeque<ExportSpan>, span: ExportSpan, evicted: &AtomicU64) {
        if store.len() >= STORE_CAPACITY {
            store.pop_front();
            evicted.fetch_add(1, Ordering::Relaxed);
        }
        store.push_back(span);
    }

    fn flush_ring_locked(&self, ring: &SpanRing, store: &mut VecDeque<ExportSpan>) {
        let mut scratch = Vec::with_capacity(ring.len());
        ring.drain_into(&mut scratch);
        for span in scratch {
            Self::push_store(store, span, &self.evicted);
        }
    }

    fn flush_ring(&self, ring: &SpanRing) {
        if !self.enabled {
            return;
        }
        let mut store = lock(&self.store);
        self.flush_ring_locked(ring, &mut store);
    }

    /// Drains every registered ring into the store and prunes rings whose
    /// owner thread has exited.
    pub fn flush(&self) {
        if !self.enabled {
            return;
        }
        let rings: Vec<Arc<SpanRing>> = lock(&self.rings).clone();
        {
            let mut store = lock(&self.store);
            for ring in &rings {
                self.flush_ring_locked(ring, &mut store);
            }
        }
        self.rings
            .lock()
            .unwrap()
            .retain(|r| Arc::strong_count(r) > 2 || r.len() > 0);
    }

    /// Flushes, then returns (without consuming) every stored span for
    /// `trace`, oldest first.
    pub fn collect_trace(&self, trace: u128) -> Vec<ExportSpan> {
        self.flush();
        self.store
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Flushes, then drains and returns the whole store, oldest first.
    pub fn drain(&self) -> Vec<ExportSpan> {
        self.flush();
        lock(&self.store).drain(..).collect()
    }

    /// Spans dropped at the ring level (full ring) plus evicted from the
    /// bounded store — the trace-side analogue of a dropped-sample counter.
    pub fn dropped(&self) -> u64 {
        let ring_drops: u64 = self
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.dropped.load(Ordering::Relaxed))
            .sum();
        ring_drops + self.evicted.load(Ordering::Relaxed)
    }
}

/// The process-global collector. Enabled unless `TWODPROF_TRACE` is set to
/// `off`, `0`, or `false` (any case).
pub fn collector() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let disabled = std::env::var("TWODPROF_TRACE")
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "off" || v == "0" || v == "false"
            })
            .unwrap_or(false);
        Collector::new(!disabled)
    })
}

// ---------------------------------------------------------------------------
// Thread-local context
// ---------------------------------------------------------------------------

thread_local! {
    static RING: OnceCell<Arc<SpanRing>> = const { OnceCell::new() };
    static CONTEXT: Cell<(u128, u64)> = const { Cell::new((0, 0)) };
}

fn with_ring<R>(f: impl FnOnce(&SpanRing) -> R) -> Option<R> {
    RING.try_with(|cell| f(cell.get_or_init(|| collector().register_thread())))
        .ok()
}

/// The ambient `(trace, parent span)` pair spans created on this thread
/// parent under. Carry it across threads (or processes) with [`attach`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Current trace id; `0` when no trace is active.
    pub trace: u128,
    /// Span id new children should parent under; `0` for "root".
    pub parent: u64,
}

impl TraceContext {
    /// The empty context: spans created under it start fresh traces.
    pub const NONE: TraceContext = TraceContext {
        trace: 0,
        parent: 0,
    };

    /// Whether a trace is active.
    pub fn is_active(&self) -> bool {
        self.trace != 0
    }
}

/// This thread's current trace context.
pub fn current() -> TraceContext {
    let (trace, parent) = CONTEXT.get();
    TraceContext { trace, parent }
}

/// Installs `ctx` as this thread's context until the guard drops — the
/// bridge into worker threads and server-side request handling.
#[must_use = "the context is detached again when the guard drops"]
pub fn attach(ctx: TraceContext) -> ContextGuard {
    let prev = CONTEXT.replace((ctx.trace, ctx.parent));
    ContextGuard { prev }
}

/// Restores the previously attached context on drop.
pub struct ContextGuard {
    prev: (u128, u64),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.set(self.prev);
    }
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

/// A live timing span; records itself into the thread-local ring on drop.
///
/// Created via [`Span::enter`] (usually through the
/// [`span!`](crate::span!) macro), [`Span::root`], or [`Span::child_of`].
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    trace: u128,
    id: u64,
    parent: u64,
    start_us: u64,
    /// `(trace, span)` to restore on drop; `None` when this span never
    /// touched the creating thread's context (`child_of`).
    restore: Option<(u128, u64)>,
}

impl Span {
    /// Opens a span under the current thread context; starts a fresh trace
    /// if none is active. Sets the context so nested spans parent here.
    pub fn enter(name: &'static str) -> Span {
        let (cur_trace, cur_parent) = CONTEXT.get();
        let trace = if cur_trace != 0 {
            cur_trace
        } else {
            new_trace_id()
        };
        let id = next_span_id();
        CONTEXT.set((trace, id));
        Span {
            name,
            trace,
            id,
            parent: if cur_trace != 0 { cur_parent } else { 0 },
            start_us: now_micros(),
            restore: Some((cur_trace, cur_parent)),
        }
    }

    /// Opens a root span of a brand-new trace, regardless of the current
    /// context, and makes it the thread context.
    pub fn root(name: &'static str) -> Span {
        let prev = CONTEXT.get();
        let trace = new_trace_id();
        let id = next_span_id();
        CONTEXT.set((trace, id));
        Span {
            name,
            trace,
            id,
            parent: 0,
            start_us: now_micros(),
            restore: Some(prev),
        }
    }

    /// Opens a span under an explicit context *without* touching the
    /// current thread's ambient context — for long-lived spans (a daemon
    /// session) that outlive many shorter ones on the same thread. Nest
    /// work under it by [`attach`]ing [`Span::context`].
    pub fn child_of(ctx: TraceContext, name: &'static str) -> Span {
        let trace = if ctx.trace != 0 {
            ctx.trace
        } else {
            new_trace_id()
        };
        Span {
            name,
            trace,
            id: next_span_id(),
            parent: ctx.parent,
            start_us: now_micros(),
            restore: None,
        }
    }

    /// This span's trace id.
    pub fn trace(&self) -> u128 {
        self.trace
    }

    /// This span's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Start timestamp (trace-clock microseconds).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// The context children of this span should attach.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace: self.trace,
            parent: self.id,
        }
    }

    /// Ends the span now (identical to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(prev) = self.restore {
            CONTEXT.set(prev);
        }
        let rec = SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            dur_us: now_micros().saturating_sub(self.start_us),
        };
        with_ring(|ring| {
            ring.push(rec);
            if ring.len() >= FLUSH_WATERMARK {
                collector().flush_ring(ring);
            }
        });
    }
}

/// Opens a [`Span`] named by a string literal, bound to `_span_guard` —
/// the span lasts until the end of the enclosing scope:
///
/// ```
/// fn handle() {
///     let _sp = twodprof_obs::span!("demo.handle");
///     // ... nested span!()s parent under demo.handle ...
/// }
/// # handle();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name)
    };
}

// ---------------------------------------------------------------------------
// Wire form
// ---------------------------------------------------------------------------

/// Serializes spans of one trace to the compact varint block format:
/// version byte, 16-byte trace id (LE), varint count, then per span
/// varint id / parent / name (varint length + UTF-8) / start / dur / tid.
/// Spans whose trace id differs from `trace` are skipped; at most
/// [`MAX_WIRE_SPANS`] (the newest) are kept.
pub fn encode_spans(trace: u128, spans: &[ExportSpan]) -> Vec<u8> {
    let matching: Vec<&ExportSpan> = spans.iter().filter(|s| s.trace == trace).collect();
    let keep = &matching[matching.len().saturating_sub(MAX_WIRE_SPANS)..];
    let mut buf = Vec::with_capacity(32 + keep.len() * 24);
    buf.push(SPAN_BLOCK_VERSION);
    buf.extend_from_slice(&trace.to_le_bytes());
    write_varint(&mut buf, keep.len() as u64).expect("vec write");
    for span in keep {
        write_varint(&mut buf, span.id).expect("vec write");
        write_varint(&mut buf, span.parent).expect("vec write");
        let name = span.name.as_bytes();
        let name = &name[..name.len().min(MAX_WIRE_NAME_LEN as usize)];
        write_varint(&mut buf, name.len() as u64).expect("vec write");
        buf.extend_from_slice(name);
        write_varint(&mut buf, span.start_us).expect("vec write");
        write_varint(&mut buf, span.dur_us).expect("vec write");
        write_varint(&mut buf, span.tid).expect("vec write");
    }
    buf
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("span block: {msg}"))
}

/// Inverse of [`encode_spans`]. Rejects unknown versions, oversized
/// counts/names, truncation, and trailing garbage. Decoded spans carry
/// `pid = 0`; the caller assigns process lanes.
pub fn decode_spans(bytes: &[u8]) -> io::Result<(u128, Vec<ExportSpan>)> {
    let mut r = bytes;
    let mut version = [0u8; 1];
    r.read_exact(&mut version).map_err(|_| bad("empty"))?;
    if version[0] != SPAN_BLOCK_VERSION {
        return Err(bad("unsupported version"));
    }
    let mut trace_bytes = [0u8; 16];
    r.read_exact(&mut trace_bytes)
        .map_err(|_| bad("truncated trace id"))?;
    let trace = u128::from_le_bytes(trace_bytes);
    let count = read_varint(&mut r)?;
    if count > MAX_WIRE_SPANS as u64 {
        return Err(bad("span count exceeds cap"));
    }
    let mut spans = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let id = read_varint(&mut r)?;
        let parent = read_varint(&mut r)?;
        let name_len = read_varint(&mut r)?;
        if name_len > MAX_WIRE_NAME_LEN {
            return Err(bad("name too long"));
        }
        let mut name = vec![0u8; name_len as usize];
        r.read_exact(&mut name).map_err(|_| bad("truncated name"))?;
        let name = String::from_utf8(name).map_err(|_| bad("name not UTF-8"))?;
        let start_us = read_varint(&mut r)?;
        let dur_us = read_varint(&mut r)?;
        let tid = read_varint(&mut r)?;
        spans.push(ExportSpan {
            trace,
            id,
            parent,
            name,
            start_us,
            dur_us,
            tid,
            pid: 0,
        });
    }
    if !r.is_empty() {
        return Err(bad("trailing bytes"));
    }
    Ok((trace, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_and_distinct() {
        let a = new_trace_id();
        let b = new_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn ring_push_and_drain_round_trip() {
        let ring = SpanRing::new(7);
        for i in 0..5u64 {
            assert!(ring.push(SpanRecord {
                trace: 42,
                id: i + 1,
                parent: i,
                name: "t",
                start_us: i * 10,
                dur_us: 3,
            }));
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[4].parent, 4);
        assert!(out.iter().all(|s| s.tid == 7 && s.trace == 42));
        assert_eq!(ring.len(), 0);
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let ring = SpanRing::new(1);
        let rec = SpanRecord {
            trace: 1,
            id: 1,
            parent: 0,
            name: "t",
            start_us: 0,
            dur_us: 0,
        };
        for _ in 0..RING_CAPACITY {
            assert!(ring.push(rec));
        }
        assert!(!ring.push(rec));
        assert!(!ring.push(rec));
        assert_eq!(ring.dropped.load(Ordering::Relaxed), 2);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        assert!(ring.push(rec), "space frees after a drain");
    }

    #[test]
    fn disabled_collector_never_stores() {
        let c = Collector::new(false);
        let ring = c.register_thread();
        ring.push(SpanRecord {
            trace: 9,
            id: 1,
            parent: 0,
            name: "t",
            start_us: 0,
            dur_us: 0,
        });
        c.flush();
        assert!(c.drain().is_empty());
        assert!(!c.is_enabled());
    }

    #[test]
    fn store_eviction_is_bounded_and_counted() {
        let c = Collector::new(true);
        {
            let mut store = c.store.lock().unwrap();
            for i in 0..(STORE_CAPACITY as u64 + 10) {
                Collector::push_store(
                    &mut store,
                    ExportSpan {
                        trace: 1,
                        id: i + 1,
                        parent: 0,
                        name: "t".into(),
                        start_us: i,
                        dur_us: 0,
                        tid: 1,
                        pid: 0,
                    },
                    &c.evicted,
                );
            }
            assert_eq!(store.len(), STORE_CAPACITY);
        }
        assert_eq!(c.dropped(), 10);
    }

    #[test]
    fn encode_decode_round_trip() {
        let trace = new_trace_id();
        let spans: Vec<ExportSpan> = (0..4u64)
            .map(|i| ExportSpan {
                trace,
                id: i + 100,
                parent: if i == 0 { 0 } else { 100 },
                name: format!("span.{i}"),
                start_us: i * 1000,
                dur_us: 500 + i,
                tid: 3,
                pid: 0,
            })
            .collect();
        let bytes = encode_spans(trace, &spans);
        let (t, decoded) = decode_spans(&bytes).unwrap();
        assert_eq!(t, trace);
        assert_eq!(decoded, spans);
    }

    #[test]
    fn encode_filters_foreign_traces() {
        let spans = vec![ExportSpan {
            trace: 5,
            id: 1,
            parent: 0,
            name: "x".into(),
            start_us: 0,
            dur_us: 1,
            tid: 1,
            pid: 0,
        }];
        let bytes = encode_spans(6, &spans);
        let (t, decoded) = decode_spans(&bytes).unwrap();
        assert_eq!(t, 6);
        assert!(decoded.is_empty());
    }

    #[test]
    fn decode_rejects_corruption() {
        let trace = 77u128;
        let spans = vec![ExportSpan {
            trace,
            id: 8,
            parent: 0,
            name: "corrupt.me".into(),
            start_us: 12,
            dur_us: 34,
            tid: 2,
            pid: 0,
        }];
        let good = encode_spans(trace, &spans);
        // Truncation at every prefix length must fail cleanly.
        for len in 0..good.len() {
            assert!(decode_spans(&good[..len]).is_err(), "prefix {len}");
        }
        // Trailing garbage must fail.
        let mut long = good.clone();
        long.push(0);
        assert!(decode_spans(&long).is_err());
        // Unknown version must fail.
        let mut vers = good.clone();
        vers[0] = 99;
        assert!(decode_spans(&vers).is_err());
    }
}
