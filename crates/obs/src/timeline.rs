//! A bounded in-memory time series of metric deltas.
//!
//! `Snapshot` answers "how much, ever"; operators also need "how much,
//! lately". A [`Timeline`] keeps a fixed-capacity ring of periodic
//! [`Snapshot::delta`] results: a recorder thread feeds it one full
//! snapshot per interval, the timeline stores only the per-interval
//! difference plus the caller-supplied timestamp, and old entries fall off
//! the front once the retention capacity is reached. Rates fall out of the
//! stored deltas directly (counter delta over interval), with no second
//! differencing pass at query time.
//!
//! Timestamps are supplied by the caller in milliseconds from an arbitrary
//! epoch (the daemon uses elapsed-since-start) so the ring is deterministic
//! under test and never consults the wall clock itself.
//!
//! The ring serializes over the same LEB128 varint layer as `Snapshot`
//! ([`Timeline::to_bytes`] / [`Timeline::from_bytes`]), so a scraper can
//! fetch history in one frame and the decoder enforces the same bounds
//! discipline (length caps, trailing-byte rejection).

use crate::snapshot::Snapshot;
use std::collections::VecDeque;
use std::io;
use std::sync::Mutex;

/// Serialization format version for [`Timeline::to_bytes`].
const TIMELINE_VERSION: u8 = 1;

/// Hard cap on the entry count a decoder will accept.
const MAX_ENTRIES: usize = 1 << 16;

/// One recorded interval: the metric movement between two consecutive
/// snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Timestamp of the snapshot that *closed* this interval, in
    /// milliseconds from the recorder's epoch.
    pub at_millis: u64,
    /// Length of the interval this delta covers, in milliseconds.
    pub interval_millis: u64,
    /// The per-interval metric movement ([`Snapshot::delta`] of the closing
    /// snapshot against the previous one).
    pub delta: Snapshot,
}

struct Inner {
    /// The snapshot that closed the most recent interval — the baseline the
    /// next `record` call differences against.
    last: Option<(u64, Snapshot)>,
    entries: VecDeque<TimelineEntry>,
}

/// A fixed-capacity ring of per-interval [`Snapshot`] deltas.
pub struct Timeline {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Timeline {
    /// An empty timeline retaining at most `capacity` intervals. A zero
    /// capacity is clamped to one so `record` never has to special-case an
    /// unstorable ring.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                last: None,
                entries: VecDeque::new(),
            }),
        }
    }

    /// The retention capacity, in intervals.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of intervals currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("timeline").entries.len()
    }

    /// Whether no interval has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds one periodic snapshot taken at `at_millis`.
    ///
    /// The first call only establishes the baseline (storing a delta against
    /// nothing would misreport the process's whole history as one interval);
    /// every later call stores `snapshot.delta(previous)` and evicts the
    /// oldest interval once the ring is full. Returns `true` when an entry
    /// was stored.
    pub fn record(&self, at_millis: u64, snapshot: Snapshot) -> bool {
        let mut inner = self.inner.lock().expect("timeline");
        let stored = match inner.last.take() {
            None => false,
            Some((prev_at, prev)) => {
                inner.entries.push_back(TimelineEntry {
                    at_millis,
                    interval_millis: at_millis.saturating_sub(prev_at),
                    delta: snapshot.delta(&prev),
                });
                while inner.entries.len() > self.capacity {
                    inner.entries.pop_front();
                }
                true
            }
        };
        inner.last = Some((at_millis, snapshot));
        stored
    }

    /// The most recent `n` intervals, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TimelineEntry> {
        let inner = self.inner.lock().expect("timeline");
        let skip = inner.entries.len().saturating_sub(n);
        inner.entries.iter().skip(skip).cloned().collect()
    }

    /// The per-second rate of counter `name` over the most recent `n`
    /// intervals: summed counter deltas divided by summed interval time.
    /// `None` when no retained interval covers a nonzero span or the counter
    /// never appears.
    pub fn rate(&self, name: &str, n: usize) -> Option<f64> {
        let inner = self.inner.lock().expect("timeline");
        let skip = inner.entries.len().saturating_sub(n);
        let mut total = 0u64;
        let mut millis = 0u64;
        let mut seen = false;
        for entry in inner.entries.iter().skip(skip) {
            millis += entry.interval_millis;
            if let Some(v) = entry.delta.counter(name) {
                total += v;
                seen = true;
            }
        }
        if !seen || millis == 0 {
            return None;
        }
        Some(total as f64 * 1000.0 / millis as f64)
    }

    /// Serializes every retained interval: a version byte, a varint entry
    /// count, then per entry the timestamp, interval, and a length-prefixed
    /// [`Snapshot::to_bytes`] block.
    pub fn to_bytes(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("timeline");
        let mut out = vec![TIMELINE_VERSION];
        // writes into a Vec never fail
        let varint = |out: &mut Vec<u8>, v: u64| {
            btrace::write_varint(out, v).expect("vec write");
        };
        varint(&mut out, inner.entries.len() as u64);
        for entry in &inner.entries {
            varint(&mut out, entry.at_millis);
            varint(&mut out, entry.interval_millis);
            let snap = entry.delta.to_bytes();
            varint(&mut out, snap.len() as u64);
            out.extend_from_slice(&snap);
        }
        out
    }

    /// Decodes a [`Timeline::to_bytes`] block into its entries, rejecting
    /// unknown versions, oversized counts, and trailing bytes.
    pub fn entries_from_bytes(bytes: &[u8]) -> io::Result<Vec<TimelineEntry>> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut r = bytes;
        let (&version, rest) = r
            .split_first()
            .ok_or_else(|| invalid("empty timeline block"))?;
        r = rest;
        if version != TIMELINE_VERSION {
            return Err(invalid("unsupported timeline version"));
        }
        let count = btrace::read_varint(&mut r)? as usize;
        if count > MAX_ENTRIES {
            return Err(invalid("timeline entry count too large"));
        }
        let mut entries = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let at_millis = btrace::read_varint(&mut r)?;
            let interval_millis = btrace::read_varint(&mut r)?;
            let len = btrace::read_varint(&mut r)? as usize;
            if len > r.len() {
                return Err(invalid("timeline snapshot length overruns block"));
            }
            let (snap, rest) = r.split_at(len);
            r = rest;
            entries.push(TimelineEntry {
                at_millis,
                interval_millis,
                delta: Snapshot::from_bytes(snap)?,
            });
        }
        if !r.is_empty() {
            return Err(invalid("trailing bytes after timeline block"));
        }
        Ok(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap_with(counter: u64) -> Snapshot {
        let r = Registry::new(true);
        r.counter("t_events_total", "Events.").add(counter);
        r.gauge("t_live", "Live.").set(counter as i64);
        r.snapshot()
    }

    #[test]
    fn first_record_only_seeds_baseline() {
        let t = Timeline::new(8);
        assert!(!t.record(1_000, snap_with(100)));
        assert!(t.is_empty());
        assert!(t.record(2_000, snap_with(150)));
        let tail = t.tail(10);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].at_millis, 2_000);
        assert_eq!(tail[0].interval_millis, 1_000);
        assert_eq!(tail[0].delta.counter("t_events_total"), Some(50));
        assert_eq!(tail[0].delta.gauge("t_live"), Some(150));
    }

    #[test]
    fn eviction_at_exact_retention_boundary() {
        let t = Timeline::new(3);
        t.record(0, snap_with(0));
        for i in 1..=3u64 {
            t.record(i * 100, snap_with(i * 10));
        }
        // exactly at capacity: nothing evicted yet
        assert_eq!(t.len(), 3);
        assert_eq!(t.tail(10)[0].at_millis, 100);
        // one past capacity: exactly the oldest interval falls off
        t.record(400, snap_with(40));
        assert_eq!(t.len(), 3);
        let tail = t.tail(10);
        assert_eq!(tail[0].at_millis, 200);
        assert_eq!(tail[2].at_millis, 400);
        // every retained delta is still the per-interval movement
        assert!(tail
            .iter()
            .all(|e| e.delta.counter("t_events_total") == Some(10)));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let t = Timeline::new(0);
        assert_eq!(t.capacity(), 1);
        t.record(0, snap_with(0));
        t.record(100, snap_with(1));
        t.record(200, snap_with(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.tail(10)[0].at_millis, 200);
    }

    #[test]
    fn rate_sums_deltas_over_interval_time() {
        let t = Timeline::new(8);
        t.record(0, snap_with(0));
        t.record(1_000, snap_with(500));
        t.record(2_000, snap_with(1_500));
        // full window: 1500 events over 2 seconds
        assert_eq!(t.rate("t_events_total", 10), Some(750.0));
        // last interval only: 1000 events over 1 second
        assert_eq!(t.rate("t_events_total", 1), Some(1_000.0));
        assert_eq!(t.rate("no_such_total", 10), None);
        let empty = Timeline::new(8);
        assert_eq!(empty.rate("t_events_total", 10), None);
    }

    #[test]
    fn bytes_roundtrip_and_reject_trailing() {
        let t = Timeline::new(8);
        t.record(0, snap_with(0));
        t.record(250, snap_with(9));
        t.record(500, snap_with(11));
        let bytes = t.to_bytes();
        let entries = Timeline::entries_from_bytes(&bytes).expect("roundtrip");
        assert_eq!(entries, t.tail(usize::MAX));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Timeline::entries_from_bytes(&trailing).is_err());
        let mut bad_version = bytes;
        bad_version[0] = 99;
        assert!(Timeline::entries_from_bytes(&bad_version).is_err());
        assert!(Timeline::entries_from_bytes(&[]).is_err());
    }
}
