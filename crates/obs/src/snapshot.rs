//! Point-in-time snapshots: text exposition and wire serialization.

use crate::metric::NUM_BUCKETS;
use btrace::{read_varint, write_varint};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Serialization format revision of [`Snapshot::to_bytes`].
const SNAPSHOT_VERSION: u8 = 1;

/// Frozen state of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (length [`NUM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// A point-in-time copy of a [`Registry`](crate::Registry)'s metrics,
/// sorted by name. Each entry is `(name, help, value)`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, String, u64)>,
    /// Signed gauges.
    pub gauges: Vec<(String, String, i64)>,
    /// Histograms.
    pub histograms: Vec<(String, String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter's value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
    }

    /// Looks up a gauge's value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|&(_, _, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, _, h)| h)
    }

    /// The change since `earlier`: counters and histogram buckets/sums are
    /// subtracted by name (a metric absent from `earlier` — registered
    /// mid-interval — keeps its full value; saturating, so a restarted
    /// source clamps to zero instead of wrapping), gauges pass through
    /// unchanged since an instantaneous level has no meaningful rate form.
    /// Metrics present only in `earlier` are dropped. `delta` of a snapshot
    /// against itself is all-zero, and `delta(earlier)` "added back" onto
    /// `earlier` reproduces `self` for counters and histograms.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, help, value)| {
                    let before = earlier.counter(name).unwrap_or(0);
                    (name.clone(), help.clone(), value.saturating_sub(before))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, help, hist)| {
                    let before = earlier.histogram(name);
                    let buckets = hist
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| {
                            let prev = before.and_then(|h| h.buckets.get(i)).copied().unwrap_or(0);
                            b.saturating_sub(prev)
                        })
                        .collect();
                    let sum = hist.sum.saturating_sub(before.map(|h| h.sum).unwrap_or(0));
                    (
                        name.clone(),
                        help.clone(),
                        HistogramSnapshot { buckets, sum },
                    )
                })
                .collect(),
        }
    }

    /// Renders Prometheus-compatible exposition text: `# HELP` / `# TYPE`
    /// preamble per metric, `name value` samples, and for histograms the
    /// standard cumulative `_bucket{le="..."}` / `_sum` / `_count` triple.
    /// Bucket upper bounds are `2^i - 1` (bucket `i` holds values `< 2^i`),
    /// with a final `+Inf`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, help, value) in &self.counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, help, value) in &self.gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, help, hist) in &self.histograms {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, count) in hist.buckets.iter().enumerate() {
                cumulative += count;
                if i + 1 == hist.buckets.len() {
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                } else {
                    let le = (1u64 << i) - 1;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                }
            }
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {cumulative}");
        }
        out
    }

    /// Serializes the snapshot over the workspace varint layer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&[SNAPSHOT_VERSION])?;
        write_varint(w, self.counters.len() as u64)?;
        for (name, help, value) in &self.counters {
            write_string(w, name)?;
            write_string(w, help)?;
            write_varint(w, *value)?;
        }
        write_varint(w, self.gauges.len() as u64)?;
        for (name, help, value) in &self.gauges {
            write_string(w, name)?;
            write_string(w, help)?;
            write_varint(w, zigzag(*value))?;
        }
        write_varint(w, self.histograms.len() as u64)?;
        for (name, help, hist) in &self.histograms {
            write_string(w, name)?;
            write_string(w, help)?;
            write_varint(w, hist.buckets.len() as u64)?;
            for &b in &hist.buckets {
                write_varint(w, b)?;
            }
            write_varint(w, hist.sum)?;
        }
        Ok(())
    }

    /// [`write_to`](Self::write_to) into an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("writing to a Vec<u8> cannot fail");
        buf
    }

    /// Parses a snapshot serialized by [`to_bytes`](Self::to_bytes),
    /// rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input or leftover bytes.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let snap = Self::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(invalid("trailing bytes after snapshot"));
        }
        Ok(snap)
    }

    /// Reads a snapshot written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != SNAPSHOT_VERSION {
            return Err(invalid("unsupported snapshot version"));
        }
        let mut snap = Snapshot::default();
        let n = checked_len(read_varint(r)?)?;
        for _ in 0..n {
            let name = read_string(r)?;
            let help = read_string(r)?;
            snap.counters.push((name, help, read_varint(r)?));
        }
        let n = checked_len(read_varint(r)?)?;
        for _ in 0..n {
            let name = read_string(r)?;
            let help = read_string(r)?;
            snap.gauges.push((name, help, unzigzag(read_varint(r)?)));
        }
        let n = checked_len(read_varint(r)?)?;
        for _ in 0..n {
            let name = read_string(r)?;
            let help = read_string(r)?;
            let nb = read_varint(r)? as usize;
            if nb > NUM_BUCKETS * 4 {
                return Err(invalid("unreasonable histogram bucket count"));
            }
            let mut buckets = Vec::with_capacity(nb);
            for _ in 0..nb {
                buckets.push(read_varint(r)?);
            }
            let sum = read_varint(r)?;
            snap.histograms
                .push((name, help, HistogramSnapshot { buckets, sum }));
        }
        Ok(snap)
    }
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn checked_len(n: u64) -> io::Result<usize> {
    if n > 1 << 20 {
        return Err(invalid("unreasonable snapshot entry count"));
    }
    Ok(n as usize)
}

/// Zigzag-encodes a signed value so small magnitudes stay small varints.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_varint(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_string<R: Read>(r: &mut R) -> io::Result<String> {
    let len = read_varint(r)? as usize;
    if len > 1 << 12 {
        return Err(invalid("unreasonable metric-name length"));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| invalid("metric string is not UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new(true);
        r.counter("jobs_total", "Jobs run.").add(17);
        r.gauge("queue_depth", "Queued jobs.").set(-4);
        let h = r.histogram("job_micros", "Job wall time.");
        h.observe(0);
        h.observe(5);
        h.observe(1_000_000);
        r.snapshot()
    }

    #[test]
    fn bytes_roundtrip() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
        // truncation and trailing garbage are rejected
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(7);
        assert!(Snapshot::from_bytes(&padded).is_err());
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123_456, -987_654] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn text_exposition_shape() {
        let text = sample().to_text();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total 17"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth -4"));
        assert!(text.contains("# TYPE job_micros histogram"));
        assert!(text.contains("job_micros_bucket{le=\"0\"} 1"));
        assert!(text.contains("job_micros_bucket{le=\"7\"} 2"));
        assert!(text.contains("job_micros_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("job_micros_sum 1000005"));
        assert!(text.contains("job_micros_count 3"));
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let earlier = sample();
        let r = Registry::new(true);
        r.counter("jobs_total", "Jobs run.").add(20);
        r.counter("new_total", "Appeared mid-interval.").add(3);
        r.gauge("queue_depth", "Queued jobs.").set(9);
        let h = r.histogram("job_micros", "Job wall time.");
        h.observe(0);
        h.observe(5);
        h.observe(1_000_000);
        h.observe(5);
        let later = r.snapshot();

        let d = later.delta(&earlier);
        assert_eq!(d.counter("jobs_total"), Some(3));
        assert_eq!(d.counter("new_total"), Some(3), "new metric keeps value");
        assert_eq!(d.gauge("queue_depth"), Some(9), "gauges pass through");
        let dh = d.histogram("job_micros").unwrap();
        assert_eq!(dh.count(), 1, "one new sample this interval");
        assert_eq!(dh.sum, 5);
        // identical snapshots difference to zero
        let zero = later.delta(&later);
        assert!(zero.counters.iter().all(|(_, _, v)| *v == 0));
        assert!(zero
            .histograms
            .iter()
            .all(|(_, _, h)| h.count() == 0 && h.sum == 0));
    }

    #[test]
    fn delta_counter_reset_clamps_to_zero() {
        // a daemon restart resets counters to zero; the next delta against
        // the pre-restart snapshot must clamp instead of wrapping to ~u64::MAX
        let before_restart = sample(); // jobs_total = 17
        let r = Registry::new(true);
        r.counter("jobs_total", "Jobs run.").add(5);
        let after_restart = r.snapshot();
        let d = after_restart.delta(&before_restart);
        assert_eq!(d.counter("jobs_total"), Some(0), "5 - 17 saturates to 0");

        // same for histogram buckets and sums
        let rh = Registry::new(true);
        let h = rh.histogram("job_micros", "Job wall time.");
        h.observe(5);
        let hd = rh.snapshot().delta(&before_restart);
        let hist = hd.histogram("job_micros").unwrap();
        assert!(hist.buckets.iter().all(|&b| b <= 1), "no wrapped buckets");
        assert_eq!(hist.sum, 0, "5 - 1000005 saturates to 0");
    }

    #[test]
    fn delta_metric_appearing_and_disappearing() {
        let earlier = sample();
        let r = Registry::new(true);
        r.counter("fresh_total", "Registered mid-interval.").add(8);
        let g = r.histogram("fresh_micros", "Registered mid-interval.");
        g.observe(3);
        let later = r.snapshot();
        let d = later.delta(&earlier);
        // appearing: the full value counts as this interval's movement
        assert_eq!(d.counter("fresh_total"), Some(8));
        assert_eq!(d.histogram("fresh_micros").unwrap().count(), 1);
        // disappearing: metrics only in `earlier` are dropped, not negated
        assert_eq!(d.counter("jobs_total"), None);
        assert!(d.histogram("job_micros").is_none());
        assert_eq!(d.counters.len(), 1);
        assert_eq!(d.histograms.len(), 1);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("jobs_total"), Some(17));
        assert_eq!(snap.gauge("queue_depth"), Some(-4));
        assert_eq!(snap.histogram("job_micros").unwrap().count(), 3);
        assert_eq!(snap.counter("missing"), None);
    }
}
