//! The three metric primitives: relaxed atomics all the way down.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Number of base-2 buckets in a [`Histogram`]: bucket 0 holds zero, bucket
/// `i` holds values in `[2^(i-1), 2^i)`, and the last bucket additionally
/// absorbs everything larger. 40 buckets cover microsecond samples up to
/// ~2^38 µs (about three days) before saturating.
pub const NUM_BUCKETS: usize = 40;

/// A monotonically increasing counter.
///
/// All updates are `Relaxed`: metrics are statistical, not synchronizing,
/// and a relaxed `fetch_add` compiles to a single `lock xadd`/`ldadd`.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            cell: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge (queue depths, live-session counts).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self {
            cell: AtomicI64::new(0),
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket base-2 histogram of `u64` samples.
///
/// `observe` is branch-free modulo the bucket clamp: index = number of
/// significant bits of the sample (so 0 → bucket 0, 1 → bucket 1, 2–3 →
/// bucket 2, 4–7 → bucket 3, …), computed with `leading_zeros`. The running
/// `sum` makes mean latency recoverable from a snapshot.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        Self {
            // AtomicU64 is not Copy; an inline-const element repeats instead
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the workspace convention for
    /// latency histograms).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> [u64; NUM_BUCKETS] {
        let mut out = [0u64; NUM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets().iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.add(5);
        g.sub(8);
        assert_eq!(g.get(), -3);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_counts_and_sums() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 1000, 1 << 50] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1 + 3 + 1000 + (1u64 << 50));
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // the zero
        assert_eq!(buckets[1], 1); // the one
        assert_eq!(buckets[2], 1); // the three
        assert_eq!(buckets[NUM_BUCKETS - 1], 1); // the saturated giant
        h.observe_duration(Duration::from_micros(5));
        assert_eq!(h.count(), 6);
    }
}
