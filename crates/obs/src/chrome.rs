//! Chrome trace-event JSON export for [`crate::trace`] spans.
//!
//! Emits the [trace-event format] consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): a top-level object with a
//! `traceEvents` array of complete (`"ph": "X"`) events plus
//! `process_name` metadata events naming each process lane. Events are
//! sorted by timestamp, so `ts` is monotone within every `(pid, tid)` lane.
//!
//! The module also carries a minimal JSON parser for exactly the subset
//! this exporter emits (objects, arrays, strings, integers, bools, null) —
//! enough for the e2e tests and smoke scripts to validate an exported
//! `trace.json` without any external dependency.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::trace::ExportSpan;
use std::fmt::Write as _;

/// Renders spans to a Chrome trace-event JSON document. `process_names`
/// maps pid lanes to display names (e.g. `(1, "twodprof-client")`,
/// `(2, "twodprofd")`); lanes without an entry get `"pid N"`. Span pid `0`
/// ("this process") is rendered as lane 1.
pub fn to_json(spans: &[ExportSpan], process_names: &[(u32, &str)]) -> String {
    let mut events: Vec<&ExportSpan> = spans.iter().collect();
    events.sort_by_key(|s| (s.start_us, s.tid, s.id));

    let mut pids: Vec<u32> = events.iter().map(|s| lane(s)).collect();
    pids.sort_unstable();
    pids.dedup();

    let mut out = String::with_capacity(128 + events.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for pid in &pids {
        let name = process_names
            .iter()
            .find(|(p, _)| p == pid)
            .map(|(_, n)| (*n).to_owned())
            .unwrap_or_else(|| format!("pid {pid}"));
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            quote(&name)
        );
    }
    for s in &events {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"twodprof\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace\":\"{:032x}\",\"span\":\"{:016x}\",\
             \"parent\":\"{:016x}\"}}}}",
            quote(&s.name),
            s.start_us,
            s.dur_us,
            lane(s),
            s.tid,
            s.trace,
            s.id,
            s.parent
        );
    }
    out.push_str("]}");
    out
}

fn lane(s: &ExportSpan) -> u32 {
    if s.pid == 0 {
        1
    } else {
        s.pid
    }
}

/// JSON string literal with the escapes the format requires.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (validation side)
// ---------------------------------------------------------------------------

/// A parsed JSON value — just enough structure to validate trace exports.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64` (the exporter only emits integers).
    Num(f64),
    /// String with escapes resolved.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_owned())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_owned())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid by construction).
                let rest = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number".to_owned())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}': {e}"))
}

// ---------------------------------------------------------------------------
// Trace-export validation helpers
// ---------------------------------------------------------------------------

/// One `"ph": "X"` event pulled back out of an exported document.
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Span name.
    pub name: String,
    /// Start timestamp, microseconds.
    pub ts: u64,
    /// Duration, microseconds.
    pub dur: u64,
    /// Process lane.
    pub pid: u32,
    /// Thread lane.
    pub tid: u64,
    /// 32-hex-digit trace id from `args.trace`.
    pub trace: String,
    /// 16-hex-digit span id from `args.span`.
    pub span: String,
    /// 16-hex-digit parent span id from `args.parent`.
    pub parent: String,
}

/// Parses an exported document and returns its complete (`"X"`) events in
/// document order, validating the invariants the exporter guarantees:
/// a well-formed `traceEvents` array, every `X` event carrying
/// name/ts/dur/pid/tid/args, and `ts` monotone non-decreasing within every
/// `(pid, tid)` lane.
pub fn parse_events(doc: &str) -> Result<Vec<ChromeEvent>, String> {
    let root = parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing traceEvents array".to_owned())?;
    let mut out = Vec::new();
    let mut last_ts: std::collections::HashMap<(u32, u64), u64> = std::collections::HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph != "X" {
            continue;
        }
        let field = |key: &str| {
            ev.get(key)
                .ok_or_else(|| format!("event {i}: missing {key}"))
        };
        let name = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name not a string"))?
            .to_owned();
        let ts = field("ts")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: bad ts"))?;
        let dur = field("dur")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: bad dur"))?;
        let pid = field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: bad pid"))? as u32;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: bad tid"))?;
        let args = field("args")?;
        let hex = |key: &str| -> Result<String, String> {
            let v = args
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing args.{key}"))?;
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(format!("event {i}: args.{key} not hex"));
            }
            Ok(v.to_owned())
        };
        let event = ChromeEvent {
            name,
            ts,
            dur,
            pid,
            tid,
            trace: hex("trace")?,
            span: hex("span")?,
            parent: hex("parent")?,
        };
        let lane = (event.pid, event.tid);
        if let Some(prev) = last_ts.get(&lane) {
            if event.ts < *prev {
                return Err(format!(
                    "event {i}: ts {} regresses below {} in lane {lane:?}",
                    event.ts, prev
                ));
            }
        }
        last_ts.insert(lane, event.ts);
        out.push(event);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, start: u64, dur: u64, tid: u64, pid: u32) -> ExportSpan {
        ExportSpan {
            trace: 0xABCD,
            id: start + 1,
            parent: 0,
            name: name.to_owned(),
            start_us: start,
            dur_us: dur,
            tid,
            pid,
        }
    }

    #[test]
    fn export_parses_back_with_lanes_and_ids() {
        let spans = vec![
            span("client.replay", 0, 100, 1, 1),
            span("serve.session", 10, 50, 3, 2),
            span("engine.job", 20, 5, 3, 2),
        ];
        let doc = to_json(&spans, &[(1, "twodprof-client"), (2, "twodprofd")]);
        let events = parse_events(&doc).unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "client.replay");
        assert!(events
            .iter()
            .all(|e| e.trace == format!("{:032x}", 0xABCDu128)));
        assert_eq!(events.iter().filter(|e| e.pid == 1).count(), 1);
        assert_eq!(events.iter().filter(|e| e.pid == 2).count(), 2);
        // Metadata names both processes.
        assert!(doc.contains("\"twodprof-client\""));
        assert!(doc.contains("\"twodprofd\""));
    }

    #[test]
    fn events_are_sorted_by_timestamp() {
        let spans = vec![
            span("later", 500, 10, 1, 1),
            span("earlier", 5, 10, 1, 1),
            span("middle", 50, 10, 1, 1),
        ];
        let doc = to_json(&spans, &[]);
        let events = parse_events(&doc).unwrap();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["earlier", "middle", "later"]);
    }

    #[test]
    fn names_are_escaped() {
        let spans = vec![span("odd \"name\"\\with\nescapes", 0, 1, 1, 1)];
        let doc = to_json(&spans, &[]);
        let events = parse_events(&doc).unwrap();
        assert_eq!(events[0].name, "odd \"name\"\\with\nescapes");
    }

    #[test]
    fn pid_zero_maps_to_lane_one() {
        let spans = vec![span("local", 0, 1, 1, 0)];
        let doc = to_json(&spans, &[(1, "repro")]);
        let events = parse_events(&doc).unwrap();
        assert_eq!(events[0].pid, 1);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse_events("{\"notTraceEvents\":[]}").is_err());
        // ts regression within one lane is an invariant violation.
        let bad = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":10,\"dur\":1,\"pid\":1,\"tid\":1,\
             \"args\":{\"trace\":\"ab\",\"span\":\"01\",\"parent\":\"00\"}},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":5,\"dur\":1,\"pid\":1,\"tid\":1,\
             \"args\":{\"trace\":\"ab\",\"span\":\"02\",\"parent\":\"00\"}}]}";
        assert!(parse_events(bad).is_err());
    }

    #[test]
    fn parser_handles_escapes_and_numbers() {
        let doc = "{\"s\":\"a\\u0041\\n\",\"n\":-3.5,\"b\":true,\"z\":null,\"arr\":[1,2]}";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA\n"));
        assert_eq!(v.get("n"), Some(&Json::Num(-3.5)));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("z"), Some(&Json::Null));
        assert_eq!(v.get("arr").unwrap().as_array().unwrap().len(), 2);
    }
}
