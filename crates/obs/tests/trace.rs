//! Integration tests for the span-tracing layer: nesting, cross-thread
//! context propagation, and the Chrome export pipeline end to end.
//!
//! All assertions go through `collect_trace` on unique trace ids rather
//! than draining the global store, so tests stay independent under the
//! default parallel test runner.

use twodprof_obs::span;
use twodprof_obs::trace::{self, ExportSpan, Span, TraceContext};

fn spans_named<'a>(spans: &'a [ExportSpan], name: &str) -> Vec<&'a ExportSpan> {
    spans.iter().filter(|s| s.name == name).collect()
}

#[test]
fn nested_spans_share_a_trace_and_parent_correctly() {
    let root = Span::root("test.root");
    let trace_id = root.trace();
    let root_id = root.id();
    {
        let child = span!("test.child");
        assert_eq!(child.trace(), trace_id, "child inherits the trace");
        let _grandchild = span!("test.grandchild");
    }
    root.finish();

    let spans = trace::collector().collect_trace(trace_id);
    assert_eq!(spans.len(), 3);
    let root_span = spans_named(&spans, "test.root")[0];
    let child = spans_named(&spans, "test.child")[0];
    let grandchild = spans_named(&spans, "test.grandchild")[0];
    assert_eq!(root_span.parent, 0);
    assert_eq!(root_span.id, root_id);
    assert_eq!(child.parent, root_id);
    assert_eq!(grandchild.parent, child.id);
    // Children close before the root, and lie inside its window.
    assert!(child.start_us >= root_span.start_us);
    assert!(child.start_us + child.dur_us <= root_span.start_us + root_span.dur_us);
}

#[test]
fn sibling_spans_restore_the_parent_context() {
    let root = Span::root("test.siblings");
    let trace_id = root.trace();
    let root_id = root.id();
    span!("test.first").finish();
    span!("test.second").finish();
    root.finish();

    let spans = trace::collector().collect_trace(trace_id);
    assert_eq!(spans_named(&spans, "test.first")[0].parent, root_id);
    assert_eq!(
        spans_named(&spans, "test.second")[0].parent,
        root_id,
        "second sibling must parent under the root, not under the first"
    );
}

#[test]
fn attach_carries_context_across_threads() {
    let root = Span::root("test.pool");
    let trace_id = root.trace();
    let root_id = root.id();
    let ctx = root.context();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(move || {
                let _g = trace::attach(ctx);
                let _sp = span!("test.worker");
            });
        }
    });
    root.finish();

    let spans = trace::collector().collect_trace(trace_id);
    let workers = spans_named(&spans, "test.worker");
    assert_eq!(workers.len(), 3);
    assert!(workers.iter().all(|w| w.parent == root_id));
    // Each worker thread got its own ring, hence its own tid lane.
    let mut tids: Vec<u64> = workers.iter().map(|w| w.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 3);
}

#[test]
fn child_of_does_not_disturb_the_ambient_context() {
    let before = trace::current();
    let session = Span::child_of(
        TraceContext {
            trace: trace::new_trace_id(),
            parent: 0,
        },
        "test.session",
    );
    assert_eq!(
        trace::current(),
        before,
        "child_of must leave thread context alone"
    );
    let trace_id = session.trace();
    {
        let _g = trace::attach(session.context());
        span!("test.frame").finish();
    }
    session.finish();

    let spans = trace::collector().collect_trace(trace_id);
    let session_span = spans_named(&spans, "test.session")[0];
    let frame = spans_named(&spans, "test.frame")[0];
    assert_eq!(frame.parent, session_span.id);
}

#[test]
fn wire_and_chrome_pipeline_round_trips() {
    let root = Span::root("test.pipeline");
    let trace_id = root.trace();
    span!("test.step").finish();
    root.finish();

    let spans = trace::collector().collect_trace(trace_id);
    let bytes = trace::encode_spans(trace_id, &spans);
    let (decoded_trace, decoded) = trace::decode_spans(&bytes).unwrap();
    assert_eq!(decoded_trace, trace_id);
    assert_eq!(decoded.len(), spans.len());

    let doc = twodprof_obs::chrome::to_json(&decoded, &[(1, "test-proc")]);
    let events = twodprof_obs::chrome::parse_events(&doc).unwrap();
    assert_eq!(events.len(), spans.len());
    assert!(events.iter().all(|e| e.trace == format!("{trace_id:032x}")));
}
