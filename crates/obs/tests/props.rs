//! Property tests for snapshot serialization and text exposition.

use proptest::prelude::*;
use twodprof_obs::{Histogram, HistogramSnapshot, Snapshot, NUM_BUCKETS};

/// Builds a snapshot from raw generated values. Names are synthesized so
/// entries stay unique and sorted, matching what a registry would emit.
fn snapshot_from(counters: &[u64], gauges: &[i64], samples: &[u64]) -> Snapshot {
    let mut snap = Snapshot::default();
    for (i, &v) in counters.iter().enumerate() {
        snap.counters
            .push((format!("c{i:03}_total"), format!("Counter {i}."), v));
    }
    for (i, &v) in gauges.iter().enumerate() {
        snap.gauges
            .push((format!("g{i:03}"), format!("Gauge {i}."), v));
    }
    let hist = Histogram::new();
    for &s in samples {
        hist.observe(s);
    }
    snap.histograms.push((
        "h000_micros".to_owned(),
        "Histogram.".to_owned(),
        HistogramSnapshot {
            buckets: hist.buckets().to_vec(),
            sum: hist.sum(),
        },
    ));
    snap
}

/// Pulls the value of a plain `name value` sample line out of exposition
/// text, skipping `# HELP` / `# TYPE` comments.
fn sample_value(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .and_then(|v| v.parse().ok())
}

proptest! {
    #[test]
    fn snapshot_bytes_roundtrip(
        counters in prop::collection::vec(0u64..u64::MAX, 0..8),
        gauges in prop::collection::vec(-1_000_000i64..1_000_000, 0..8),
        samples in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let snap = snapshot_from(&counters, &gauges, &samples);
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");
        prop_assert_eq!(decoded, snap);
    }

    #[test]
    fn text_exposition_roundtrips_counter_values(
        counters in prop::collection::vec(0u64..u64::MAX, 1..8),
    ) {
        let snap = snapshot_from(&counters, &[], &[]);
        let text = snap.to_text();
        for (name, _, value) in &snap.counters {
            prop_assert_eq!(sample_value(&text, name), Some(*value));
        }
    }

    #[test]
    fn delta_of_identical_snapshots_is_zero(
        counters in prop::collection::vec(0u64..u64::MAX, 0..8),
        gauges in prop::collection::vec(-1_000_000i64..1_000_000, 0..8),
        samples in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let snap = snapshot_from(&counters, &gauges, &samples);
        let d = snap.delta(&snap);
        for (_, _, v) in &d.counters {
            prop_assert_eq!(*v, 0);
        }
        // gauges pass through untouched
        prop_assert_eq!(&d.gauges, &snap.gauges);
        for (_, _, h) in &d.histograms {
            prop_assert_eq!(h.count(), 0);
            prop_assert_eq!(h.sum, 0);
        }
    }

    #[test]
    fn delta_plus_earlier_round_trips(
        earlier_counters in prop::collection::vec(0u64..1_000_000, 1..8),
        increments in prop::collection::vec(0u64..1_000_000, 1..8),
        earlier_samples in prop::collection::vec(0u64..1_000_000, 0..32),
        later_samples in prop::collection::vec(0u64..1_000_000, 0..32),
    ) {
        // Build a monotone pair: later = earlier + increments / extra samples.
        let n = earlier_counters.len().min(increments.len());
        let earlier = snapshot_from(&earlier_counters[..n], &[], &earlier_samples);
        let later_counters: Vec<u64> = earlier_counters[..n]
            .iter()
            .zip(&increments[..n])
            .map(|(a, b)| a + b)
            .collect();
        let mut all_samples = earlier_samples.clone();
        all_samples.extend_from_slice(&later_samples);
        let later = snapshot_from(&later_counters, &[], &all_samples);

        let d = later.delta(&earlier);
        // counters: delta + earlier == later, name by name
        for (name, _, dv) in &d.counters {
            let before = earlier.counter(name).unwrap_or(0);
            prop_assert_eq!(before + dv, later.counter(name).unwrap());
        }
        // histograms: bucketwise delta + earlier == later
        for (name, _, dh) in &d.histograms {
            let before = earlier.histogram(name).unwrap();
            let after = later.histogram(name).unwrap();
            prop_assert_eq!(dh.sum + before.sum, after.sum);
            for (i, b) in dh.buckets.iter().enumerate() {
                prop_assert_eq!(b + before.buckets[i], after.buckets[i]);
            }
        }
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_consistent(
        samples in prop::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let snap = snapshot_from(&[], &[], &samples);
        let (_, _, hist) = &snap.histograms[0];
        prop_assert_eq!(hist.buckets.len(), NUM_BUCKETS);
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.sum, samples.iter().sum::<u64>());
        let text = snap.to_text();
        // the +Inf bucket, _count, and the sample count must all agree
        let inf = text
            .lines()
            .find(|l| l.starts_with("h000_micros_bucket{le=\"+Inf\"}"))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .expect("+Inf bucket line");
        prop_assert_eq!(inf, samples.len() as u64);
        prop_assert_eq!(sample_value(&text, "h000_micros_count"), Some(inf));
        // cumulative bucket lines never decrease
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h000_micros_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            prop_assert!(v >= last, "bucket lines must be cumulative");
            last = v;
        }
    }
}
