//! The incremental streaming profiler: epoch-aligned multi-session merge,
//! windowed folds, and hysteresis-guarded drift detection.
//!
//! # Epoch alignment
//!
//! The batch profiler slices one global event stream. With several concurrent
//! sessions feeding one program there is no natural global order — any
//! arrival-order slicing would make results depend on socket scheduling. The
//! streaming profiler instead slices each session's *own* stream into epochs
//! of `slice_len` events ([`SessionIngest`]) and merges per-epoch, per-site
//! `(executions, correct)` counts by epoch index. Addition of counts is
//! commutative, so the merged epoch content — and therefore every verdict and
//! drift event — is invariant under session interleaving.
//!
//! Epoch *k* folds once every active session has closed it (the watermark is
//! the minimum over sessions' completed-epoch counts), or unconditionally
//! when the last session finishes. A session lagging more than
//! [`StreamConfig::max_lag`] epochs behind the newest pending epoch no longer
//! holds the watermark back: the oldest pending epoch is force-folded and the
//! straggler's late contribution is dropped (counted, not silently).
//!
//! # Equivalence with the batch profiler
//!
//! For a single session, a window at least as large as the run, and the same
//! slice geometry, a fold performs the identical floating-point operations in
//! the identical order as `TwoDProfiler::finish` — the window == run
//! equivalence test pins streaming verdicts to the batch report bit for bit.

use crate::event::{DriftEvent, SiteVerdict, VerdictSnapshot};
use crate::window::SiteWindow;
use btrace::SiteId;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;
use twodprof_core::{Classification, SliceConfig, Thresholds};

/// Configuration of the streaming profiler.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Per-session epoch geometry: `slice_len` events close an epoch,
    /// `exec_threshold` gates whether a site's epoch sample is counted.
    pub slice: SliceConfig,
    /// Sliding-window size, in slices, for both per-site statistics and the
    /// program-accuracy window. Must be at least 1.
    pub window: usize,
    /// Consecutive folds that must confirm a new classification before the
    /// published verdict flips and a drift event fires. 1 disables
    /// hysteresis. Must be at least 1.
    pub hysteresis: u32,
    /// MEAN/STD/PAM thresholds; the MEAN test resolves against the
    /// *windowed* program accuracy.
    pub thresholds: Thresholds,
    /// Maximum pending (merged but unfolded) epochs before the watermark is
    /// forced past a straggler session. Must be at least 1.
    pub max_lag: usize,
}

impl Default for StreamConfig {
    /// Daemon-scale defaults: 8192-event slices with threshold 128, a
    /// 32-slice window, and 2-fold hysteresis.
    fn default() -> Self {
        Self {
            slice: SliceConfig::new(8192, 128),
            window: 32,
            hysteresis: 2,
            thresholds: Thresholds::paper(),
            max_lag: 256,
        }
    }
}

/// Per-session event accumulator: slices the session's own stream into
/// epochs of `slice_len` events and queues closed epochs for merging.
///
/// Created by [`StreamingProfiler::begin_session`]; feed it prediction
/// outcomes with [`record`](Self::record), then hand closed epochs back via
/// [`StreamingProfiler::ingest`] and finally
/// [`StreamingProfiler::finish_session`].
#[derive(Debug)]
pub struct SessionIngest {
    id: u64,
    slice_len: u64,
    in_slice: u64,
    /// Dense per-site `(exec, correct)` counts for the open epoch.
    counts: Vec<(u64, u64)>,
    /// Sites touched in the open epoch (so closing is O(touched)).
    dirty: Vec<u32>,
    closed: VecDeque<EpochBatch>,
}

impl SessionIngest {
    fn new(id: u64, num_sites: usize, slice_len: u64) -> Self {
        Self {
            id,
            slice_len,
            in_slice: 0,
            counts: vec![(0, 0); num_sites],
            dirty: Vec::new(),
            closed: VecDeque::new(),
        }
    }

    /// Records one dynamic branch: whether the predictor got `site` right.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the table declared to
    /// [`StreamingProfiler::new`].
    #[inline]
    pub fn record(&mut self, site: SiteId, correct: bool) {
        self.tally(site, correct);
        self.advance(1);
    }

    /// Counts one outcome without slice bookkeeping — the bulk half of
    /// [`record`](Self::record). Callers that already iterate events in
    /// chunks bounded by [`slice_remaining`](Self::slice_remaining) pay only
    /// these two counter adds per event and settle the slice position once
    /// per chunk with [`advance`](Self::advance).
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the table declared to
    /// [`StreamingProfiler::new`].
    #[inline]
    pub fn tally(&mut self, site: SiteId, correct: bool) {
        let entry = &mut self.counts[site.index()];
        if entry.0 == 0 {
            self.dirty.push(site.0);
        }
        entry.0 += 1;
        entry.1 += correct as u64;
    }

    /// Advances the open epoch by `n` already-tallied events, closing it when
    /// full. `n` must not exceed [`slice_remaining`](Self::slice_remaining)
    /// and must equal the number of [`tally`](Self::tally) calls since the
    /// previous `advance`.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        debug_assert!(n <= self.slice_remaining(), "advance past epoch boundary");
        self.in_slice += n;
        if self.in_slice == self.slice_len {
            self.close_epoch();
        }
    }

    /// Events the open epoch still accepts before it closes; always ≥ 1.
    #[inline]
    pub fn slice_remaining(&self) -> u64 {
        self.slice_len - self.in_slice
    }

    /// Closed epochs waiting to be merged.
    pub fn pending_epochs(&self) -> usize {
        self.closed.len()
    }

    fn close_epoch(&mut self) {
        let mut entries = Vec::with_capacity(self.dirty.len());
        let mut correct = 0;
        for site in self.dirty.drain(..) {
            let e = &mut self.counts[site as usize];
            entries.push((site, e.0, e.1));
            correct += e.1;
            *e = (0, 0);
        }
        self.closed.push_back(EpochBatch {
            entries,
            exec: self.in_slice,
            correct,
        });
        self.in_slice = 0;
    }
}

/// One session's contribution to one epoch.
#[derive(Debug)]
struct EpochBatch {
    /// `(site, exec, correct)` for every site touched in the epoch.
    entries: Vec<(u32, u64, u64)>,
    exec: u64,
    correct: u64,
}

/// Merged-but-unfolded contributions for one epoch index.
#[derive(Debug, Default)]
struct EpochAcc {
    /// Concatenated `(site, exec, correct)` contributions from every
    /// session's batch for this epoch. Kept append-only so merging under the
    /// daemon's shared lock is a vector extend; the fold sorts by site and
    /// combines duplicates, which keeps fold order deterministic.
    entries: Vec<(u32, u64, u64)>,
    exec: u64,
    correct: u64,
}

/// Sliding window of per-epoch program-wide `(exec, correct)` totals —
/// exact integer sums, so the windowed program accuracy is bit-identical to
/// the batch run's whenever the window covers the whole run.
#[derive(Debug, Default)]
struct GlobalWindow {
    ring: VecDeque<(u64, u64)>,
    exec: u64,
    correct: u64,
}

impl GlobalWindow {
    fn push(&mut self, exec: u64, correct: u64, window: usize) {
        self.ring.push_back((exec, correct));
        self.exec += exec;
        self.correct += correct;
        if self.ring.len() > window {
            let (e, c) = self.ring.pop_front().expect("ring over capacity");
            self.exec -= e;
            self.correct -= c;
        }
    }

    fn accuracy(&self) -> Option<f64> {
        (self.exec > 0).then(|| self.correct as f64 / self.exec as f64)
    }
}

/// Incremental 2D-profiler over a sliding window of slices, merging any
/// number of concurrent sessions for one program.
///
/// Memory is O(`num_sites` × `window` + pending epochs); no events or full
/// traces are retained.
#[derive(Debug)]
pub struct StreamingProfiler {
    config: StreamConfig,
    num_sites: usize,
    sites: Vec<SiteWindow>,
    /// Hysteresis-stable classifications, as last published.
    published: Vec<Classification>,
    /// Candidate classification a site is drifting toward.
    candidate: Vec<Classification>,
    /// Consecutive folds confirming the candidate.
    streak: Vec<u32>,
    global: GlobalWindow,
    /// Merged contributions keyed by epoch index, all ≥ `folded`.
    pending: BTreeMap<u64, EpochAcc>,
    /// Active session id → next epoch index that session will close.
    sessions: HashMap<u64, u64>,
    next_session_id: u64,
    /// Epochs folded so far; the next fold is epoch `folded`.
    folded: u64,
    drift_total: u64,
    verdict_total: u64,
    stale_dropped: u64,
}

impl StreamingProfiler {
    /// Creates a profiler for `num_sites` static branch sites.
    ///
    /// # Panics
    ///
    /// Panics if `config.window`, `config.hysteresis`, or `config.max_lag`
    /// is zero.
    pub fn new(num_sites: usize, config: StreamConfig) -> Self {
        assert!(config.window >= 1, "window must be at least one slice");
        assert!(config.hysteresis >= 1, "hysteresis must be at least 1");
        assert!(config.max_lag >= 1, "max_lag must be at least 1");
        Self {
            config,
            num_sites,
            sites: vec![SiteWindow::default(); num_sites],
            published: vec![Classification::Insufficient; num_sites],
            candidate: vec![Classification::Insufficient; num_sites],
            streak: vec![0; num_sites],
            global: GlobalWindow::default(),
            pending: BTreeMap::new(),
            sessions: HashMap::new(),
            next_session_id: 0,
            folded: 0,
            drift_total: 0,
            verdict_total: 0,
            stale_dropped: 0,
        }
    }

    /// The configuration this profiler was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Number of static sites tracked.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Fold epochs completed so far.
    pub fn folded_epochs(&self) -> u64 {
        self.folded
    }

    /// Drift events emitted over the profiler's lifetime.
    pub fn drift_total(&self) -> u64 {
        self.drift_total
    }

    /// Sessions currently attached.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Epoch contributions dropped because they arrived after their epoch
    /// was force-folded past a straggler.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }

    /// Attaches a new session, aligned so its first epoch lands at the
    /// current fold frontier.
    pub fn begin_session(&mut self) -> SessionIngest {
        let id = self.next_session_id;
        self.next_session_id += 1;
        self.sessions.insert(id, self.folded);
        SessionIngest::new(id, self.num_sites, self.config.slice.slice_len())
    }

    /// Merges the session's closed epochs and folds every epoch the
    /// watermark now covers, appending any drift events to `out`.
    pub fn ingest(&mut self, session: &mut SessionIngest, out: &mut Vec<DriftEvent>) {
        while let Some(batch) = session.closed.pop_front() {
            let epoch = *self
                .sessions
                .get(&session.id)
                .expect("session not attached to this profiler");
            self.merge(epoch, batch);
            *self.sessions.get_mut(&session.id).expect("just read") += 1;
        }
        self.fold_ready(out);
    }

    /// Detaches a session: merges its remaining epochs plus any trailing
    /// partial slice (mirroring the batch profiler's end-of-run fold of a
    /// partial slice), then folds — everything still pending if this was the
    /// last session.
    pub fn finish_session(&mut self, mut session: SessionIngest, out: &mut Vec<DriftEvent>) {
        while let Some(batch) = session.closed.pop_front() {
            let epoch = *self
                .sessions
                .get(&session.id)
                .expect("session not attached to this profiler");
            self.merge(epoch, batch);
            *self.sessions.get_mut(&session.id).expect("just read") += 1;
        }
        if session.in_slice > 0 {
            session.close_epoch();
            let batch = session.closed.pop_front().expect("just closed");
            let epoch = *self
                .sessions
                .get(&session.id)
                .expect("session not attached to this profiler");
            self.merge(epoch, batch);
        }
        self.sessions.remove(&session.id);
        if self.sessions.is_empty() {
            self.flush_all(out);
        } else {
            self.fold_ready(out);
        }
    }

    /// Current published verdicts and windowed statistics.
    pub fn snapshot(&self) -> VerdictSnapshot {
        VerdictSnapshot {
            epoch: self.folded,
            window: self.config.window as u64,
            slice_len: self.config.slice.slice_len(),
            program_accuracy: self.global.accuracy(),
            sites: (0..self.num_sites)
                .map(|i| SiteVerdict {
                    verdict: self.published[i],
                    slices: self.sites[i].len() as u64,
                    mean: self.sites[i].mean(),
                    std_dev: self.sites[i].std_dev(),
                    pam_fraction: self.sites[i].pam_fraction(),
                })
                .collect(),
        }
    }

    /// Published classifications, indexed by site.
    pub fn verdicts(&self) -> &[Classification] {
        &self.published
    }

    fn merge(&mut self, epoch: u64, batch: EpochBatch) {
        if epoch < self.folded {
            // The epoch was force-folded past this straggler already.
            self.stale_dropped += 1;
            twodprof_obs::counter!(
                "stream_stale_epochs_dropped_total",
                "Per-session epoch contributions dropped because their epoch \
                 was already force-folded past a lagging session."
            )
            .inc();
            return;
        }
        let acc = self.pending.entry(epoch).or_default();
        acc.exec += batch.exec;
        acc.correct += batch.correct;
        let mut entries = batch.entries;
        if acc.entries.is_empty() {
            acc.entries = entries;
        } else {
            acc.entries.append(&mut entries);
        }
    }

    fn fold_ready(&mut self, out: &mut Vec<DriftEvent>) {
        let watermark = self.sessions.values().min().copied();
        loop {
            let next = self.folded;
            let due = watermark.is_some_and(|w| next < w);
            let lagging = self
                .pending
                .keys()
                .next_back()
                .is_some_and(|&last| last - next >= self.config.max_lag as u64);
            if !due && !lagging {
                break;
            }
            let acc = self.pending.remove(&next);
            self.fold_one(next, acc, out);
            self.folded += 1;
        }
    }

    fn flush_all(&mut self, out: &mut Vec<DriftEvent>) {
        while let Some((&epoch, _)) = self.pending.iter().next() {
            let acc = self.pending.remove(&epoch);
            self.fold_one(epoch, acc, out);
            self.folded = epoch + 1;
        }
    }

    fn fold_one(&mut self, epoch: u64, acc: Option<EpochAcc>, out: &mut Vec<DriftEvent>) {
        let _span = twodprof_obs::span!("stream.fold");
        let start = Instant::now();
        let threshold = self.config.slice.exec_threshold();
        let window = self.config.window;
        let (exec, correct) = acc.as_ref().map(|a| (a.exec, a.correct)).unwrap_or((0, 0));
        self.global.push(exec, correct, window);
        if let Some(mut acc) = acc {
            // Sessions' contributions were appended in arrival order; sort by
            // site and combine duplicates so each site folds exactly once per
            // epoch, in deterministic site order.
            acc.entries.sort_unstable_by_key(|&(site, _, _)| site);
            let mut entries = acc.entries.into_iter().peekable();
            while let Some((site, mut e, mut c)) = entries.next() {
                while let Some(&(next, ne, nc)) = entries.peek() {
                    if next != site {
                        break;
                    }
                    e += ne;
                    c += nc;
                    entries.next();
                }
                self.sites[site as usize].fold(e, c, threshold, window);
            }
        }
        let program_accuracy = self.global.accuracy();
        for site in 0..self.num_sites as u32 {
            let verdict = self.classify(site as usize, program_accuracy);
            self.advance(site, verdict, epoch, out);
        }
        twodprof_obs::counter!(
            "stream_windows_folded_total",
            "Epochs folded into the streaming window."
        )
        .inc();
        twodprof_obs::histogram!(
            "stream_fold_micros",
            "Wall time of one streaming window fold, in microseconds."
        )
        .observe_duration(start.elapsed());
    }

    /// Classifies one site from its current windowed statistics — the exact
    /// decision rule of the batch report, fed sliding-window inputs.
    fn classify(&self, site: usize, program_accuracy: Option<f64>) -> Classification {
        let w = &self.sites[site];
        match (w.mean(), w.std_dev(), w.pam_fraction()) {
            (Some(mean), Some(std), Some(pam)) => {
                // With an empty global window nothing is classified anyway;
                // 1.0 is the same harmless stand-in the batch path uses.
                let outcomes =
                    self.config
                        .thresholds
                        .apply(mean, std, pam, program_accuracy.unwrap_or(1.0));
                if outcomes.predicts_dependent() {
                    Classification::Dependent
                } else {
                    Classification::Independent
                }
            }
            _ => Classification::Insufficient,
        }
    }

    /// Advances one site's hysteresis state toward `verdict`, publishing a
    /// flip (and emitting a drift event) once `hysteresis` consecutive folds
    /// agree. A site's *first* classification publishes immediately and
    /// silently — appearing is not drifting.
    fn advance(
        &mut self,
        site: u32,
        verdict: Classification,
        epoch: u64,
        out: &mut Vec<DriftEvent>,
    ) {
        let i = site as usize;
        let published = self.published[i];
        if verdict == published {
            self.candidate[i] = verdict;
            self.streak[i] = 0;
            return;
        }
        if published == Classification::Insufficient {
            self.published[i] = verdict;
            self.candidate[i] = verdict;
            self.streak[i] = 0;
            self.bump_verdicts();
            return;
        }
        if verdict == self.candidate[i] {
            self.streak[i] += 1;
        } else {
            self.candidate[i] = verdict;
            self.streak[i] = 1;
        }
        if self.streak[i] >= self.config.hysteresis {
            out.push(DriftEvent {
                site,
                epoch,
                from: published,
                to: verdict,
            });
            self.published[i] = verdict;
            self.streak[i] = 0;
            self.drift_total += 1;
            self.bump_verdicts();
            twodprof_obs::counter!(
                "stream_drift_events_total",
                "Published-verdict flips confirmed by hysteresis."
            )
            .inc();
        }
    }

    fn bump_verdicts(&mut self) {
        self.verdict_total += 1;
        twodprof_obs::counter!(
            "stream_verdicts_total",
            "Published verdict assignments (first classifications and \
             confirmed flips)."
        )
        .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(slice_len: u64, threshold: u64, window: usize, hysteresis: u32) -> StreamConfig {
        StreamConfig {
            slice: SliceConfig::new(slice_len, threshold),
            window,
            hysteresis,
            ..StreamConfig::default()
        }
    }

    /// Drives one session with a two-phase stream on site 0: steady ~92%
    /// accuracy first (input-independent), then slice accuracy oscillating
    /// between ~95% and ~55% (the paper's input-dependent signature: high
    /// STD, mid-range PAM). Site 1 stays rock-steady throughout.
    fn drive_phased(p: &mut StreamingProfiler, epochs_per_phase: u64) -> Vec<DriftEvent> {
        let mut s = p.begin_session();
        let mut out = Vec::new();
        let slice_len = p.config.slice.slice_len();
        for phase in 0..2u64 {
            for k in 0..epochs_per_phase {
                let base = match (phase, k % 2) {
                    (0, _) => 90,
                    (_, 0) => 95,
                    _ => 55,
                };
                let acc = base + (k * 7) % 5;
                for i in 0..slice_len / 2 {
                    s.record(SiteId(0), (i * 97) % 100 < acc);
                    s.record(SiteId(1), (i * 89) % 10 != 0);
                }
                p.ingest(&mut s, &mut out);
            }
        }
        p.finish_session(s, &mut out);
        out
    }

    #[test]
    fn phase_change_raises_drift_event() {
        let mut p = StreamingProfiler::new(2, config(200, 10, 8, 2));
        let events = drive_phased(&mut p, 24);
        assert!(
            events.iter().any(|e| e.site == 0),
            "phase flip on site 0 must drift: {events:?}"
        );
        assert_eq!(p.drift_total(), events.len() as u64);
        assert_eq!(p.folded_epochs(), 48);
    }

    #[test]
    fn hysteresis_suppresses_single_fold_blips() {
        // hysteresis 3 vs 1 over the same stream: the strict setting can
        // only emit a subset of the eager one's flips.
        let mut eager = StreamingProfiler::new(2, config(200, 10, 8, 1));
        let mut strict = StreamingProfiler::new(2, config(200, 10, 8, 3));
        let eager_events = drive_phased(&mut eager, 24);
        let strict_events = drive_phased(&mut strict, 24);
        assert!(strict_events.len() <= eager_events.len());
    }

    #[test]
    fn first_classification_is_silent() {
        let mut p = StreamingProfiler::new(1, config(100, 5, 4, 1));
        let mut s = p.begin_session();
        let mut out = Vec::new();
        for i in 0..100u64 {
            s.record(SiteId(0), i % 10 != 0);
        }
        p.ingest(&mut s, &mut out);
        assert!(out.is_empty(), "Insufficient → classified is not drift");
        assert_ne!(p.verdicts()[0], Classification::Insufficient);
    }

    #[test]
    fn watermark_waits_for_slowest_session() {
        let mut p = StreamingProfiler::new(1, config(100, 5, 4, 1));
        let mut fast = p.begin_session();
        let slow = p.begin_session();
        let mut out = Vec::new();
        for i in 0..500u64 {
            fast.record(SiteId(0), i % 2 == 0);
        }
        p.ingest(&mut fast, &mut out);
        assert_eq!(p.folded_epochs(), 0, "slow session holds the watermark");
        p.finish_session(slow, &mut out);
        assert_eq!(p.folded_epochs(), 5, "watermark released");
        p.finish_session(fast, &mut out);
    }

    #[test]
    fn last_session_flushes_all_pending() {
        let mut p = StreamingProfiler::new(1, config(100, 5, 4, 1));
        let mut s = p.begin_session();
        let mut out = Vec::new();
        for i in 0..350u64 {
            s.record(SiteId(0), i % 2 == 0);
        }
        p.ingest(&mut s, &mut out);
        assert_eq!(p.folded_epochs(), 3);
        p.finish_session(s, &mut out);
        // 3 full epochs + the 50-event partial
        assert_eq!(p.folded_epochs(), 4);
        assert_eq!(p.active_sessions(), 0);
    }

    #[test]
    fn straggler_is_force_folded_past() {
        let mut cfg = config(100, 5, 4, 1);
        cfg.max_lag = 3;
        let mut p = StreamingProfiler::new(1, cfg);
        let mut fast = p.begin_session();
        let mut slow = p.begin_session();
        let mut out = Vec::new();
        for i in 0..1000u64 {
            fast.record(SiteId(0), i % 2 == 0);
        }
        p.ingest(&mut fast, &mut out);
        assert!(
            p.folded_epochs() >= 7,
            "lag cap must advance the fold frontier, folded {}",
            p.folded_epochs()
        );
        // The slow session now submits epochs that were already folded.
        for i in 0..200u64 {
            slow.record(SiteId(0), i % 2 == 0);
        }
        p.ingest(&mut slow, &mut out);
        assert!(p.stale_dropped() >= 1);
        p.finish_session(fast, &mut out);
        p.finish_session(slow, &mut out);
    }

    #[test]
    fn interleaving_does_not_change_drift_events() {
        // Two sessions with fixed per-session streams, merged under three
        // different arrival interleavings: identical drift sequences.
        let stream_a: Vec<bool> = (0..2000u64).map(|i| (i * 31) % 100 < 90).collect();
        let stream_b: Vec<bool> = (0..2000u64)
            .map(|i| (i * 17) % 100 < if i < 1000 { 95 } else { 50 })
            .collect();
        let run = |chunk: usize| {
            let mut p = StreamingProfiler::new(1, config(100, 5, 4, 1));
            let mut sa = p.begin_session();
            let mut sb = p.begin_session();
            let mut out = Vec::new();
            let (mut ia, mut ib) = (0, 0);
            while ia < stream_a.len() || ib < stream_b.len() {
                for _ in 0..chunk {
                    if ia < stream_a.len() {
                        sa.record(SiteId(0), stream_a[ia]);
                        ia += 1;
                    }
                }
                p.ingest(&mut sa, &mut out);
                for _ in 0..chunk * 3 {
                    if ib < stream_b.len() {
                        sb.record(SiteId(0), stream_b[ib]);
                        ib += 1;
                    }
                }
                p.ingest(&mut sb, &mut out);
            }
            p.finish_session(sa, &mut out);
            p.finish_session(sb, &mut out);
            out
        };
        let a = run(7);
        let b = run(150);
        let c = run(1);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn snapshot_reflects_window_state() {
        let mut p = StreamingProfiler::new(2, config(100, 5, 4, 1));
        let mut s = p.begin_session();
        let mut out = Vec::new();
        for i in 0..400u64 {
            s.record(SiteId(0), i % 3 != 0);
        }
        p.ingest(&mut s, &mut out);
        let snap = p.snapshot();
        assert_eq!(snap.epoch, 4);
        assert_eq!(snap.window, 4);
        assert_eq!(snap.slice_len, 100);
        assert_eq!(snap.sites.len(), 2);
        assert!(snap.sites[0].mean.is_some());
        assert_eq!(snap.sites[1].slices, 0);
        assert_eq!(snap.sites[1].verdict, Classification::Insufficient);
        assert!(snap.program_accuracy.is_some());
        p.finish_session(s, &mut out);
    }
}
