//! Per-branch sliding-window slice statistics.
//!
//! [`SiteWindow`] is the streaming counterpart of `core`'s `BranchState`: it
//! keeps the paper's seven per-branch variables over a bounded ring of the
//! most recent counted slices instead of the whole run. Pushes and evictions
//! are O(1); the running Σ and Σ² are rebuilt from the ring once per full
//! window turnover to keep float cancellation from accumulating.
//!
//! When the window is at least as large as the run (so nothing is ever
//! evicted) every floating-point operation happens in the same order and on
//! the same values as in `BranchState`, which is what the window == run
//! equivalence test pins down.

use std::collections::VecDeque;

/// One counted slice retained in the window.
#[derive(Clone, Copy, Debug)]
struct Sample {
    /// FIR-filtered slice accuracy (Figure 9b's `LPA` blend).
    filtered: f64,
    /// Whether this sample counted toward points-above-mean when pushed.
    above: bool,
}

/// Sliding-window MEAN/STD/PAM/FIR state for one static branch site.
#[derive(Clone, Debug, Default)]
pub(crate) struct SiteWindow {
    /// Last filtered accuracy — the FIR filter's memory. Survives eviction:
    /// the filter is a property of the stream, not of the window.
    lpa: Option<f64>,
    ring: VecDeque<Sample>,
    /// Σ filtered over the ring.
    sum: f64,
    /// Σ filtered² over the ring.
    sumsq: f64,
    /// Points-above-mean count over the ring.
    npam: u64,
    /// Evictions since the last Σ/Σ² rebuild.
    stale: usize,
}

impl SiteWindow {
    /// Folds one closed slice in which this site executed `exec` times with
    /// `correct` correct predictions. Slices at or below `exec_threshold`
    /// are discarded exactly as in the batch profiler (strictly-greater
    /// test). Returns whether the slice was counted.
    pub(crate) fn fold(
        &mut self,
        exec: u64,
        correct: u64,
        exec_threshold: u64,
        window: usize,
    ) -> bool {
        if exec <= exec_threshold {
            return false;
        }
        let raw = correct as f64 / exec as f64;
        // FIR filter (paper §3.2): average the current slice accuracy with
        // the previous filtered value; the first counted slice seeds the
        // filter unfiltered.
        let filtered = match self.lpa {
            Some(prev) => (raw + prev) / 2.0,
            None => raw,
        };
        self.lpa = Some(filtered);
        self.sum += filtered;
        self.sumsq += filtered * filtered;
        self.ring.push_back(Sample {
            filtered,
            above: false,
        });
        if self.ring.len() > window {
            self.evict();
        }
        // Points-above-mean compares against the window mean *including* the
        // new sample (and after any eviction), mirroring the batch
        // profiler's running average; the epsilon keeps a sample exactly at
        // the mean from counting.
        let mean = self.sum / self.ring.len() as f64;
        if filtered > mean + 1e-9 {
            self.npam += 1;
            self.ring.back_mut().expect("just pushed").above = true;
        }
        if self.stale >= self.ring.len() {
            self.rebuild();
        }
        true
    }

    fn evict(&mut self) {
        let old = self.ring.pop_front().expect("ring over capacity");
        self.sum -= old.filtered;
        self.sumsq -= old.filtered * old.filtered;
        self.npam -= old.above as u64;
        self.stale += 1;
    }

    /// Recomputes Σ and Σ² exactly from the retained samples. Amortized
    /// O(1) per fold: triggered once per window turnover, never in the
    /// eviction-free (window == run) regime.
    fn rebuild(&mut self) {
        self.sum = 0.0;
        self.sumsq = 0.0;
        for s in &self.ring {
            self.sum += s.filtered;
            self.sumsq += s.filtered * s.filtered;
        }
        self.stale = 0;
    }

    /// Counted slices currently in the window.
    pub(crate) fn len(&self) -> usize {
        self.ring.len()
    }

    /// Mean filtered accuracy over the window, `None` while empty.
    pub(crate) fn mean(&self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        Some(self.sum / self.ring.len() as f64)
    }

    /// Standard deviation over the window (population form, clamped at
    /// zero exactly like `BranchState::std_dev`), `None` while empty.
    pub(crate) fn std_dev(&self) -> Option<f64> {
        let m = self.mean()?;
        let n = self.ring.len() as f64;
        Some((self.sumsq / n - m * m).max(0.0).sqrt())
    }

    /// Fraction of window samples above the running mean, `None` while
    /// empty.
    pub(crate) fn pam_fraction(&self) -> Option<f64> {
        if self.ring.is_empty() {
            return None;
        }
        Some(self.npam as f64 / self.ring.len() as f64)
    }

    /// Points-above-mean count (for invariant checks).
    #[cfg(test)]
    pub(crate) fn npam(&self) -> u64 {
        self.npam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twodprof_core::BranchState;

    fn feed_batch(slices: &[(u64, u64)], threshold: u64) -> BranchState {
        let mut s = BranchState::new();
        for &(exec, correct) in slices {
            for i in 0..exec {
                s.record(i < correct);
            }
            s.end_slice(threshold);
        }
        s
    }

    fn feed_window(slices: &[(u64, u64)], threshold: u64, window: usize) -> SiteWindow {
        let mut w = SiteWindow::default();
        for &(exec, correct) in slices {
            w.fold(exec, correct, threshold, window);
        }
        w
    }

    fn slices(n: u64) -> Vec<(u64, u64)> {
        (0..n)
            .map(|i| {
                let exec = 100 + (i * 13) % 40;
                let correct = exec * (55 + (i * 7) % 45) / 100;
                (exec, correct)
            })
            .collect()
    }

    #[test]
    fn unevicted_window_matches_branch_state_exactly() {
        let data = slices(64);
        let batch = feed_batch(&data, 10);
        let win = feed_window(&data, 10, 64);
        assert_eq!(win.len() as u64, 64);
        assert_eq!(win.mean(), batch.mean(), "bit-identical mean");
        assert_eq!(win.std_dev(), batch.std_dev(), "bit-identical std");
        assert_eq!(
            win.pam_fraction(),
            batch.points_above_mean(),
            "bit-identical PAM"
        );
    }

    #[test]
    fn below_threshold_slices_are_discarded() {
        let mut w = SiteWindow::default();
        assert!(!w.fold(10, 5, 10, 8), "exec == threshold is not counted");
        assert!(w.fold(11, 5, 10, 8), "exec > threshold is counted");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn eviction_keeps_len_bounded_and_stats_fresh() {
        let data = slices(200);
        let w = feed_window(&data, 10, 16);
        assert_eq!(w.len(), 16);
        // Stats must agree with a from-scratch fold of only what the filter
        // would have produced — check against a reference recomputation.
        let mut lpa: Option<f64> = None;
        let mut filt = Vec::new();
        for &(exec, correct) in &data {
            let raw = correct as f64 / exec as f64;
            let f = lpa.map(|p| (raw + p) / 2.0).unwrap_or(raw);
            lpa = Some(f);
            filt.push(f);
        }
        let tail = &filt[filt.len() - 16..];
        let mean = tail.iter().sum::<f64>() / 16.0;
        assert!((w.mean().unwrap() - mean).abs() < 1e-12);
        let var = tail.iter().map(|f| f * f).sum::<f64>() / 16.0 - mean * mean;
        assert!((w.std_dev().unwrap() - var.max(0.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn npam_never_exceeds_window() {
        let w = feed_window(&slices(500), 10, 32);
        assert!(w.npam() <= 32);
        assert!(w.pam_fraction().unwrap() <= 1.0);
    }

    #[test]
    fn empty_window_yields_none() {
        let w = SiteWindow::default();
        assert_eq!(w.mean(), None);
        assert_eq!(w.std_dev(), None);
        assert_eq!(w.pam_fraction(), None);
    }
}
