//! Streaming 2D-profiling: answer *while events arrive* instead of at
//! end-of-run.
//!
//! The paper (and this workspace's batch [`TwoDProfiler`]) classifies
//! input-dependent branches once, after the whole run. This crate keeps the
//! same MEAN/STD/PAM/FIR statistics over a **sliding window** of recent
//! slices, merged across any number of concurrent sessions of one program,
//! and emits **drift events** when a branch's published verdict flips — the
//! continuous-freshness deliverable a production profiling daemon needs.
//!
//! Three pieces:
//!
//! - [`SessionIngest`] — per-session accumulator that slices that session's
//!   own event stream into fixed-length epochs;
//! - [`StreamingProfiler`] — merges epochs across sessions by epoch index
//!   (commutative count addition, so results are invariant under session
//!   interleaving), folds each completed epoch into O(window) per-site
//!   rings, classifies every site with the batch decision rule
//!   (`Thresholds::apply`), and publishes verdict flips through a hysteresis
//!   filter;
//! - [`DriftEvent`] / [`VerdictSnapshot`] — the wire-shaped outputs the
//!   serve layer pushes to `twodprof-client watch` subscribers.
//!
//! With one session and a window at least as long as the run, streaming
//! verdicts are bit-identical to the batch report's — see the crate's
//! equivalence tests.
//!
//! [`TwoDProfiler`]: twodprof_core::TwoDProfiler

mod event;
mod profiler;
mod window;

pub use event::{DriftEvent, SiteVerdict, VerdictSnapshot};
pub use profiler::{SessionIngest, StreamConfig, StreamingProfiler};
