//! Wire-shaped streaming outputs: drift events and verdict snapshots.
//!
//! Both types serialize to compact varint payloads (LEB128 via `btrace`,
//! optional floats as a tag byte + IEEE-754 LE bits, the same conventions as
//! `ProfileReport`). The serve layer carries them as opaque bodies inside its
//! framing, so the format is owned here next to the producer.

use btrace::{read_varint, write_varint};
use std::io::{self, Read, Write};
use twodprof_core::Classification;

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

fn class_code(c: Classification) -> u64 {
    // Same codes as ProfileReport's classification field.
    match c {
        Classification::Dependent => 0,
        Classification::Independent => 1,
        Classification::Insufficient => 2,
    }
}

fn class_from_code(code: u64) -> io::Result<Classification> {
    match code {
        0 => Ok(Classification::Dependent),
        1 => Ok(Classification::Independent),
        2 => Ok(Classification::Insufficient),
        _ => Err(invalid("unknown classification tag")),
    }
}

fn write_opt_f64<W: Write>(w: &mut W, v: Option<f64>) -> io::Result<()> {
    match v {
        None => w.write_all(&[0]),
        Some(v) => {
            w.write_all(&[1])?;
            w.write_all(&v.to_bits().to_le_bytes())
        }
    }
}

fn read_opt_f64<R: Read>(r: &mut R) -> io::Result<Option<f64>> {
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    match tag[0] {
        0 => Ok(None),
        1 => {
            let mut buf = [0u8; 8];
            r.read_exact(&mut buf)?;
            Ok(Some(f64::from_bits(u64::from_le_bytes(buf))))
        }
        _ => Err(invalid("bad optional-float tag")),
    }
}

/// A published verdict flip for one branch site: after hysteresis confirmed
/// the new classification, the site moved from `from` to `to` at fold
/// `epoch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DriftEvent {
    /// Static branch site index.
    pub site: u32,
    /// Global fold epoch at which the flip was confirmed.
    pub epoch: u64,
    /// Previously published classification.
    pub from: Classification,
    /// Newly published classification.
    pub to: Classification,
}

impl DriftEvent {
    /// Writes the event in wire form.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_varint(w, self.site as u64)?;
        write_varint(w, self.epoch)?;
        write_varint(w, class_code(self.from))?;
        write_varint(w, class_code(self.to))
    }

    /// Reads an event written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let site = read_varint(r)?;
        if site > u32::MAX as u64 {
            return Err(invalid("drift-event site out of range"));
        }
        Ok(Self {
            site: site as u32,
            epoch: read_varint(r)?,
            from: class_from_code(read_varint(r)?)?,
            to: class_from_code(read_varint(r)?)?,
        })
    }

    /// Serializes to an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write cannot fail");
        buf
    }

    /// Parses a [`to_bytes`](Self::to_bytes) buffer, rejecting trailing
    /// garbage.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input or leftover bytes.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let ev = Self::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(invalid("trailing bytes after drift event"));
        }
        Ok(ev)
    }
}

/// Windowed statistics and published verdict for one site, dense by site
/// index inside a [`VerdictSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteVerdict {
    /// Published (hysteresis-stable) classification.
    pub verdict: Classification,
    /// Counted slices currently in the site's window.
    pub slices: u64,
    /// Windowed mean filtered accuracy, `None` while the window is empty.
    pub mean: Option<f64>,
    /// Windowed standard deviation.
    pub std_dev: Option<f64>,
    /// Windowed points-above-mean fraction.
    pub pam_fraction: Option<f64>,
}

/// Point-in-time view of a program's streaming profile: one entry per site,
/// dense by site index.
#[derive(Clone, Debug, PartialEq)]
pub struct VerdictSnapshot {
    /// Fold epochs completed so far.
    pub epoch: u64,
    /// Configured window size, in slices.
    pub window: u64,
    /// Configured slice length, in dynamic branches per session.
    pub slice_len: u64,
    /// Windowed program-wide prediction accuracy, `None` before any events.
    pub program_accuracy: Option<f64>,
    /// Per-site windowed statistics, indexed by site id.
    pub sites: Vec<SiteVerdict>,
}

impl VerdictSnapshot {
    /// Writes the snapshot in wire form.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_varint(w, self.epoch)?;
        write_varint(w, self.window)?;
        write_varint(w, self.slice_len)?;
        write_opt_f64(w, self.program_accuracy)?;
        write_varint(w, self.sites.len() as u64)?;
        for s in &self.sites {
            write_varint(w, class_code(s.verdict))?;
            write_varint(w, s.slices)?;
            write_opt_f64(w, s.mean)?;
            write_opt_f64(w, s.std_dev)?;
            write_opt_f64(w, s.pam_fraction)?;
        }
        Ok(())
    }

    /// Reads a snapshot written by [`write_to`](Self::write_to).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let epoch = read_varint(r)?;
        let window = read_varint(r)?;
        let slice_len = read_varint(r)?;
        let program_accuracy = read_opt_f64(r)?;
        let num_sites = read_varint(r)? as usize;
        if num_sites > 1 << 28 {
            return Err(invalid("unreasonable site count"));
        }
        let mut sites = Vec::with_capacity(num_sites);
        for _ in 0..num_sites {
            sites.push(SiteVerdict {
                verdict: class_from_code(read_varint(r)?)?,
                slices: read_varint(r)?,
                mean: read_opt_f64(r)?,
                std_dev: read_opt_f64(r)?,
                pam_fraction: read_opt_f64(r)?,
            });
        }
        Ok(Self {
            epoch,
            window,
            slice_len,
            program_accuracy,
            sites,
        })
    }

    /// Serializes to an owned buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("Vec write cannot fail");
        buf
    }

    /// Parses a [`to_bytes`](Self::to_bytes) buffer, rejecting trailing
    /// garbage.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on malformed input or leftover bytes.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let snap = Self::read_from(&mut r)?;
        if !r.is_empty() {
            return Err(invalid("trailing bytes after verdict snapshot"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_event_roundtrips() {
        let ev = DriftEvent {
            site: 7,
            epoch: 300,
            from: Classification::Independent,
            to: Classification::Dependent,
        };
        assert_eq!(DriftEvent::from_bytes(&ev.to_bytes()).unwrap(), ev);
    }

    #[test]
    fn drift_event_rejects_trailing_and_bad_class() {
        let mut bytes = DriftEvent {
            site: 1,
            epoch: 2,
            from: Classification::Dependent,
            to: Classification::Insufficient,
        }
        .to_bytes();
        bytes.push(0);
        assert!(DriftEvent::from_bytes(&bytes).is_err());
        assert!(DriftEvent::from_bytes(&[0, 0, 9, 0]).is_err());
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = VerdictSnapshot {
            epoch: 42,
            window: 32,
            slice_len: 8192,
            program_accuracy: Some(0.9375),
            sites: vec![
                SiteVerdict {
                    verdict: Classification::Dependent,
                    slices: 32,
                    mean: Some(0.71),
                    std_dev: Some(0.13),
                    pam_fraction: Some(0.5),
                },
                SiteVerdict {
                    verdict: Classification::Insufficient,
                    slices: 0,
                    mean: None,
                    std_dev: None,
                    pam_fraction: None,
                },
            ],
        };
        assert_eq!(VerdictSnapshot::from_bytes(&snap.to_bytes()).unwrap(), snap);
    }

    #[test]
    fn snapshot_rejects_trailing_garbage() {
        let snap = VerdictSnapshot {
            epoch: 0,
            window: 4,
            slice_len: 100,
            program_accuracy: None,
            sites: vec![],
        };
        let mut bytes = snap.to_bytes();
        bytes.push(7);
        assert!(VerdictSnapshot::from_bytes(&bytes).is_err());
    }
}
