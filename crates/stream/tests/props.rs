//! Property tests for the streaming profiler: windowed statistics must
//! stay well-formed (no NaN, PAM bounded by the window) for arbitrary
//! event streams, and the drift-event sequence must be invariant under how
//! sessions interleave their ingest batches.

use btrace::SiteId;
use proptest::prelude::*;
use twodprof_core::{SliceConfig, Thresholds};
use twodprof_stream::{DriftEvent, StreamConfig, StreamingProfiler};

fn config(
    slice_len: u64,
    threshold: u64,
    window: usize,
    hysteresis: u32,
    max_lag: usize,
) -> StreamConfig {
    StreamConfig {
        slice: SliceConfig::new(slice_len, threshold),
        window,
        hysteresis,
        thresholds: Thresholds::paper(),
        max_lag,
    }
}

/// Runs two sessions over fixed event vectors, interleaving their ingests
/// in `chunk`-sized strides, and returns every drift event raised.
fn run_interleaved(
    cfg: StreamConfig,
    num_sites: usize,
    a: &[(u32, bool)],
    b: &[(u32, bool)],
    chunk: usize,
) -> Vec<DriftEvent> {
    let mut p = StreamingProfiler::new(num_sites, cfg);
    let mut sa = p.begin_session();
    let mut sb = p.begin_session();
    let mut out = Vec::new();
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() || ib < b.len() {
        let ea = (ia + chunk).min(a.len());
        for &(site, correct) in &a[ia..ea] {
            sa.record(SiteId(site), correct);
        }
        ia = ea;
        p.ingest(&mut sa, &mut out);
        let eb = (ib + chunk).min(b.len());
        for &(site, correct) in &b[ib..eb] {
            sb.record(SiteId(site), correct);
        }
        ib = eb;
        p.ingest(&mut sb, &mut out);
    }
    p.finish_session(sa, &mut out);
    p.finish_session(sb, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // MEAN/STD/PAM over the window must never be NaN, PAM can never exceed
    // the window (as a fraction, never exceed 1), and the window bound on
    // retained slices must hold — for any event stream and geometry.
    #[test]
    fn windowed_stats_stay_well_formed(
        events in prop::collection::vec((0u32..4, any::<bool>()), 0..3000),
        slice_len in 1u64..200,
        window in 1usize..12,
        hysteresis in 1u32..4,
    ) {
        let threshold = (slice_len / 4).min(slice_len - 1);
        let mut p = StreamingProfiler::new(4, config(slice_len, threshold, window, hysteresis, 4));
        let mut s = p.begin_session();
        let mut out = Vec::new();
        for &(site, correct) in &events {
            s.record(SiteId(site), correct);
        }
        p.finish_session(s, &mut out);
        let snap = p.snapshot();
        for (i, site) in snap.sites.iter().enumerate() {
            prop_assert!(site.slices <= window as u64, "site {i} exceeds window");
            for (name, v) in [
                ("mean", site.mean),
                ("std", site.std_dev),
                ("pam", site.pam_fraction),
            ] {
                if let Some(v) = v {
                    prop_assert!(v.is_finite(), "site {i} {name} = {v}");
                }
            }
            if let Some(pam) = site.pam_fraction {
                prop_assert!((0.0..=1.0).contains(&pam), "site {i} pam = {pam}");
            }
            if site.slices == 0 {
                prop_assert!(site.mean.is_none(), "empty site {i} must have no mean");
            }
        }
        if let Some(acc) = snap.program_accuracy {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    // The drift-event sequence is a function of the merged epoch stream,
    // not of how the sessions' ingest calls interleave: feeding the same
    // two per-session event vectors in different batch sizes must raise
    // the identical events in the identical order. This holds as long as
    // the lag guard never fires (`max_lag` exceeds any epoch skew the
    // interleaving can build up) — force-folding past a straggler is the
    // one deliberate break from order-independence, so the property pins
    // max_lag above the largest possible skew here.
    #[test]
    fn drift_events_invariant_under_interleaving(
        a in prop::collection::vec((0u32..3, any::<bool>()), 0..2500),
        b in prop::collection::vec((0u32..3, any::<bool>()), 0..2500),
        slice_len in 20u64..120,
        window in 2usize..8,
        chunk_a in 1usize..700,
        chunk_b in 1usize..700,
    ) {
        let cfg = config(slice_len, slice_len / 8, window, 1, 10_000);
        let fine = run_interleaved(cfg, 3, &a, &b, chunk_a);
        let coarse = run_interleaved(cfg, 3, &a, &b, chunk_b);
        prop_assert_eq!(fine, coarse);
    }
}
