//! Streaming-vs-batch equivalence: a full recorded run pushed through a
//! [`StreamingProfiler`] whose window covers every slice must reproduce the
//! batch [`TwoDProfiler`] report **bit-identically** — same verdicts, same
//! per-site mean/std/PAM down to the f64 bit pattern.
//!
//! This is the regime the streaming math was engineered for: one session,
//! no window eviction, identical slice geometry, hysteresis 1 — so the
//! incremental fold executes the exact same float operations in the exact
//! same order as the batch `BranchState`.

use bpred::{BranchPredictor, PredictorKind};
use btrace::{CountingTracer, SiteId, Tracer};
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_stream::{SessionIngest, StreamConfig, StreamingProfiler};
use workloads::Scale;

/// Feeds each branch outcome to the batch profiler and mirrors the
/// resulting correct/incorrect bit into the streaming session, so both
/// sides see the same per-event prediction stream from one predictor.
struct DualTracer<'a> {
    batch: &'a mut TwoDProfiler<Box<dyn BranchPredictor>>,
    ingest: &'a mut SessionIngest,
}

impl Tracer for DualTracer<'_> {
    fn branch(&mut self, site: SiteId, taken: bool) {
        let correct = self.batch.branch_outcome(site, taken);
        self.ingest.record(site, correct);
    }
}

fn assert_streaming_matches_batch(workload_name: &str, predictor: PredictorKind) {
    let workload = workloads::by_name(workload_name, Scale::Tiny).expect("workload exists");
    let input = workload.input_set("train").expect("train input");
    let num_sites = workload.sites().len();

    // Pin the slice geometry both sides share, exactly like a daemon
    // session does: a counting pre-pass sizes the slices.
    let mut counter = CountingTracer::new();
    workload.run(&input, &mut counter);
    let slice = SliceConfig::auto(counter.count());
    let slices_upper_bound = (counter.count() / slice.slice_len() + 2) as usize;

    let mut batch = TwoDProfiler::new(num_sites, predictor.build(), slice);
    let mut streaming = StreamingProfiler::new(
        num_sites,
        StreamConfig {
            slice,
            window: slices_upper_bound,
            hysteresis: 1,
            thresholds: Thresholds::paper(),
            max_lag: slices_upper_bound + 1,
        },
    );
    let mut ingest = streaming.begin_session();
    let mut drift = Vec::new();
    {
        let mut dual = DualTracer {
            batch: &mut batch,
            ingest: &mut ingest,
        };
        workload.run(&input, &mut dual);
    }
    streaming.finish_session(ingest, &mut drift);

    let report = batch.finish(Thresholds::paper());
    let snap = streaming.snapshot();
    let ctx = format!("{workload_name}/{}", predictor.id());

    assert_eq!(
        snap.program_accuracy.map(f64::to_bits),
        report.program_accuracy().map(f64::to_bits),
        "{ctx}: program accuracy must be bit-identical"
    );
    assert_eq!(snap.sites.len(), num_sites, "{ctx}: site count");
    for i in 0..num_sites {
        let b = report.stats(SiteId(i as u32));
        let s = &snap.sites[i];
        assert_eq!(
            s.verdict, b.classification,
            "{ctx}: site {i} verdict must match batch"
        );
        assert_eq!(s.slices, b.slices, "{ctx}: site {i} counted slices");
        assert_eq!(
            s.mean.map(f64::to_bits),
            b.mean.map(f64::to_bits),
            "{ctx}: site {i} windowed MEAN must be bit-identical"
        );
        assert_eq!(
            s.std_dev.map(f64::to_bits),
            b.std_dev.map(f64::to_bits),
            "{ctx}: site {i} windowed STD must be bit-identical"
        );
        assert_eq!(
            s.pam_fraction.map(f64::to_bits),
            b.pam_fraction.map(f64::to_bits),
            "{ctx}: site {i} windowed PAM must be bit-identical"
        );
    }
}

#[test]
fn full_suite_matches_batch_under_gshare() {
    for workload in workloads::suite(Scale::Tiny) {
        assert_streaming_matches_batch(workload.name(), PredictorKind::Gshare4Kb);
    }
}

#[test]
fn gzip_matches_batch_under_every_predictor() {
    for predictor in PredictorKind::ALL {
        assert_streaming_matches_batch("gzip", predictor);
    }
}
