//! `gzip` analogue: LZ77 compression with hash chains.
//!
//! Reimplements the deflate-style match finder whose loop-exit branch the
//! paper singles out in Figure 7: `max_chain_length` is read from a
//! `config_table` indexed by the compression level, so the number of
//! iterations of the hash-chain walk — and hence the predictability of its
//! exit branch — is a direct function of a program *parameter*. At level 1
//! the chain cap is 4 (the exit branch is taken every 4th time, ~75%
//! predictable without a loop predictor); at level 9 it is 4096 (the branch
//! is almost always "continue", >99.9% predictable).

use crate::datagen::{generate, DataKind};
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_MAIN_LOOP => "deflate_pos_loop" (Loop),
    S_HASH_HIT => "hash_head_present" (Guard),
    S_CHAIN_EXIT => "hash_chain_exit" (Loop),
    S_CMP_LOOP => "match_compare_extend" (Loop),
    S_QUICK_REJECT => "match_quick_reject" (Search),
    S_LEN_BETTER => "match_len_better" (Search),
    S_NICE_STOP => "nice_length_reached" (Guard),
    S_GOOD_REDUCE => "good_length_reduce" (IfElse),
    S_TOO_FAR => "min_match_too_far" (Guard),
    S_EMIT_MATCH => "emit_match_or_literal" (IfElse),
    S_LAZY_BETTER => "lazy_match_better" (Search),
    S_DIST_SHORT => "distance_fits_short_code" (IfElse),
    S_TOK_IS_MATCH => "token_is_match" (TypeCheck),
    S_LEN_SHORT_CODE => "length_fits_base_code" (IfElse),
    S_DIST_BUCKET => "distance_bucket_scan" (Search),
    S_LIT_PRINTABLE => "literal_is_printable" (IfElse),
}

/// Distance-code bucket boundaries (powers of two, as in deflate's
/// distance-code table).
const DIST_BUCKETS: [u32; 12] = [4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 32768];

/// Models the deflate output stage: walks the token stream assigning
/// length/distance/literal code sizes, tracing the coder's branches.
/// Returns the modeled output size in bits.
pub fn encode_cost(tokens: &[Token], t: &mut dyn Tracer) -> u64 {
    let mut bits = 0u64;
    for &tok in tokens {
        if br!(t, S_TOK_IS_MATCH, matches!(tok, Token::Match(..))) {
            let Token::Match(dist, len) = tok else {
                unreachable!("guarded")
            };
            bits += if br!(t, S_LEN_SHORT_CODE, len <= 10) {
                7
            } else {
                8 + (32 - (len - 3).leading_zeros() as u64).saturating_sub(3)
            };
            let mut bucket = 0usize;
            while br!(
                t,
                S_DIST_BUCKET,
                bucket < DIST_BUCKETS.len() && dist > DIST_BUCKETS[bucket]
            ) {
                bucket += 1;
            }
            bits += 5 + bucket as u64 / 2;
        } else {
            let Token::Literal(b) = tok else {
                unreachable!("guarded")
            };
            // printable ASCII gets the short codes in text-trained tables
            bits += if br!(t, S_LIT_PRINTABLE, (0x20..0x7F).contains(&b)) {
                8
            } else {
                9
            };
        }
    }
    bits
}

/// The gzip `config_table` (the paper's Figure 7, lines 8–14): per
/// compression level `(good_length, max_lazy, nice_length, max_chain)`.
pub const CONFIG_TABLE: [(u32, u32, u32, u32); 10] = [
    (0, 0, 0, 0),         // level 0 unused
    (4, 4, 8, 4),         // 1: min compression level
    (4, 5, 16, 8),        // 2
    (4, 6, 32, 32),       // 3
    (4, 4, 16, 16),       // 4
    (8, 16, 32, 32),      // 5
    (8, 16, 128, 128),    // 6
    (8, 32, 128, 256),    // 7
    (32, 128, 258, 1024), // 8
    (32, 258, 258, 4096), // 9: max compression level
];

const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const MAX_DIST: usize = 32 * 1024;
const TOO_FAR: usize = 4096;
const HASH_BITS: u32 = 15;
const NIL: u32 = u32::MAX;

#[inline]
fn hash3(data: &[u8], pos: usize) -> usize {
    let h = (data[pos] as u32) << 10 ^ (data[pos + 1] as u32) << 5 ^ data[pos + 2] as u32;
    (h.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Output token of the compressor (exposed so tests can check round-trip
/// fidelity of the match finder).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference `(distance, length)`.
    Match(u32, u32),
}

/// Decodes a token stream back into bytes (test oracle).
pub fn decode(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for &t in tokens {
        match t {
            Token::Literal(b) => out.push(b),
            Token::Match(dist, len) => {
                let start = out.len() - dist as usize;
                for i in 0..len as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

struct Matcher<'a> {
    data: &'a [u8],
    head: Vec<u32>,
    prev: Vec<u32>,
    good_length: usize,
    nice_length: usize,
    max_chain: usize,
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8], level: usize) -> Self {
        let (good, _lazy, nice, chain) = CONFIG_TABLE[level];
        Self {
            data,
            head: vec![NIL; 1 << HASH_BITS],
            prev: vec![NIL; data.len()],
            good_length: good as usize,
            nice_length: nice as usize,
            max_chain: chain as usize,
        }
    }

    /// Inserts `pos` into its hash chain and returns the previous chain head
    /// (the most recent earlier occurrence of this trigram), exactly like
    /// gzip's `INSERT_STRING` macro.
    fn insert(&mut self, pos: usize) -> u32 {
        if pos + MIN_MATCH <= self.data.len() {
            let h = hash3(self.data, pos);
            let old = self.head[h];
            self.prev[pos] = old;
            self.head[h] = pos as u32;
            old
        } else {
            NIL
        }
    }

    /// The deflate `longest_match` routine, with the paper's Figure 7 branch
    /// instrumented as `S_CHAIN_EXIT`.
    fn longest_match(
        &self,
        pos: usize,
        prev_length: usize,
        chain_start: u32,
        t: &mut dyn Tracer,
    ) -> (usize, usize) {
        let data = self.data;
        let limit = pos.saturating_sub(MAX_DIST);
        let max_len = MAX_MATCH.min(data.len() - pos);
        // gzip shortens the chain walk when the previous match was already
        // "good" — an input-dependent heuristic branch of its own.
        let mut chain_length = if br!(t, S_GOOD_REDUCE, prev_length >= self.good_length) {
            (self.max_chain >> 2).max(1)
        } else {
            self.max_chain
        };
        let mut best_len = prev_length.max(MIN_MATCH - 1);
        let mut best_pos = usize::MAX;
        let mut cur = chain_start;
        if !br!(
            t,
            S_HASH_HIT,
            cur != NIL && (cur as usize) >= limit && (cur as usize) < pos
        ) {
            return (0, 0);
        }
        loop {
            let m = cur as usize;
            // quick reject: does the candidate beat best_len at its tail?
            let reject = best_len >= max_len
                || m + best_len >= data.len()
                || data[m + best_len] != data[pos + best_len];
            if !br!(t, S_QUICK_REJECT, reject) {
                let mut len = 0usize;
                while len < max_len
                    && br!(
                        t,
                        S_CMP_LOOP,
                        data[m + len] == data[pos + len] && len + 1 < max_len
                    )
                {
                    len += 1;
                }
                if data[m + len] == data[pos + len] && len < max_len {
                    len += 1;
                }
                if br!(t, S_LEN_BETTER, len > best_len) {
                    best_len = len;
                    best_pos = m;
                    if br!(t, S_NICE_STOP, len >= self.nice_length) {
                        break;
                    }
                }
            }
            // Figure 7, line 24–25: the input-dependent loop-exit branch.
            chain_length -= 1;
            let next = self.prev[m];
            let cont =
                next != NIL && (next as usize) >= limit && (next as usize) < m && chain_length != 0;
            if !br!(t, S_CHAIN_EXIT, cont) {
                break;
            }
            cur = next;
        }
        if best_len >= MIN_MATCH && best_pos != usize::MAX {
            (best_pos, best_len)
        } else {
            (0, 0)
        }
    }
}

/// Runs the LZ77 compressor over `data` at `level`, tracing branches into
/// `t`, and returns the token stream.
pub fn deflate(data: &[u8], level: usize, t: &mut dyn Tracer) -> Vec<Token> {
    assert!((1..=9).contains(&level), "level must be 1..=9");
    let mut m = Matcher::new(data, level);
    let (_, max_lazy, _, _) = CONFIG_TABLE[level];
    let mut tokens = Vec::new();
    let mut pos = 0usize;
    let mut prev_len = 0usize;
    let mut prev_pos = 0usize;
    let mut have_prev = false;
    while br!(t, S_MAIN_LOOP, pos + MIN_MATCH <= data.len()) {
        let chain_start = m.insert(pos);
        let (mpos, mut mlen) = m.longest_match(pos, prev_len, chain_start, t);
        // discard minimum-length matches that are too far away (gzip's
        // TOO_FAR heuristic)
        if mlen == MIN_MATCH && br!(t, S_TOO_FAR, pos - mpos > TOO_FAR) {
            mlen = 0;
        }
        if have_prev {
            // lazy evaluation: emit the previous match unless the current
            // one is strictly longer (and lazy matching is enabled at this
            // level)
            if br!(
                t,
                S_LAZY_BETTER,
                mlen > prev_len && prev_len < max_lazy as usize
            ) {
                tokens.push(Token::Literal(data[pos - 1]));
                prev_len = mlen;
                prev_pos = mpos;
                pos += 1;
                continue;
            }
            let dist = (pos - 1 - prev_pos) as u32;
            br!(t, S_DIST_SHORT, dist < 256);
            tokens.push(Token::Match(dist, prev_len as u32));
            // insert skipped positions into the hash chains
            let end = (pos - 1 + prev_len).min(data.len());
            for p in pos + 1..end {
                m.insert(p);
            }
            pos = end;
            have_prev = false;
            prev_len = 0;
            continue;
        }
        if br!(t, S_EMIT_MATCH, mlen >= MIN_MATCH) {
            prev_len = mlen;
            prev_pos = mpos;
            have_prev = true;
            pos += 1;
        } else {
            tokens.push(Token::Literal(data[pos]));
            pos += 1;
        }
    }
    if have_prev {
        let dist = (pos - 1 - prev_pos) as u32;
        tokens.push(Token::Match(dist, prev_len as u32));
        pos = pos - 1 + prev_len;
    }
    while pos < data.len() {
        tokens.push(Token::Literal(data[pos]));
        pos += 1;
    }
    tokens
}

/// Errors from [`inflate_bytes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GzipError {
    /// The container ended early or a length field is inconsistent.
    Malformed,
    /// The embedded Huffman stream failed to decode.
    Entropy(crate::huffman::HuffmanError),
}

impl std::fmt::Display for GzipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GzipError::Malformed => f.write_str("malformed gzipw container"),
            GzipError::Entropy(e) => write!(f, "entropy stream: {e}"),
        }
    }
}

impl std::error::Error for GzipError {}

impl From<crate::huffman::HuffmanError> for GzipError {
    fn from(e: crate::huffman::HuffmanError) -> Self {
        GzipError::Entropy(e)
    }
}

// The token-stream alphabet of the byte container: 0..=255 literals, 256 the
// match marker. Lengths and distances follow a match marker as
// variable-width raw fields (4-bit width prefix + that many bits), which
// keeps the container simple while staying entropy-coded where it matters.
const SYM_MATCH: u16 = 256;

fn write_varbits(w: &mut crate::huffman::BitWriter, v: u32) {
    let width = 32 - v.leading_zeros().min(31);
    let width = width.max(1);
    w.write(width - 1, 5);
    w.write(v, width as u8);
}

fn read_varbits(r: &mut crate::huffman::BitReader<'_>) -> Result<u32, GzipError> {
    let mut width = 0u32;
    for _ in 0..5 {
        width = (width << 1) | r.read_bit()?;
    }
    let width = width + 1;
    let mut v = 0u32;
    for _ in 0..width {
        v = (v << 1) | r.read_bit()?;
    }
    Ok(v)
}

/// Compresses `data` into an actual byte container: the LZ77 token stream
/// is serialized with a canonical Huffman code over literals plus a match
/// marker, with raw varbit length/distance fields. Inverse:
/// [`inflate_bytes`].
pub fn deflate_bytes(data: &[u8], level: usize, t: &mut dyn Tracer) -> Vec<u8> {
    use crate::huffman::{BitWriter, Codec};
    let tokens = deflate(data, level, t);
    let mut freq = [0u64; 257];
    for tok in &tokens {
        match tok {
            Token::Literal(b) => freq[*b as usize] += 1,
            Token::Match(..) => freq[SYM_MATCH as usize] += 1,
        }
    }
    let codec = Codec::from_frequencies(&freq).expect("counted frequencies are valid");
    let mut w = BitWriter::new();
    for tok in &tokens {
        match tok {
            Token::Literal(b) => codec.encode(&[*b as u16], &mut w),
            Token::Match(dist, len) => {
                codec.encode(&[SYM_MATCH], &mut w);
                write_varbits(&mut w, *dist);
                write_varbits(&mut w, *len);
            }
        }
    }
    let payload = w.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 300);
    out.extend_from_slice(&(tokens.len() as u32).to_le_bytes());
    for sym in 0..257usize {
        out.push(codec.length(sym));
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decompresses a [`deflate_bytes`] container.
///
/// # Errors
///
/// [`GzipError`] on truncated or corrupt input.
pub fn inflate_bytes(container: &[u8]) -> Result<Vec<u8>, GzipError> {
    use crate::huffman::{canonical_codes, BitReader, Codec};
    let header = 4 + 257 + 4;
    if container.len() < header {
        return Err(GzipError::Malformed);
    }
    let token_count = u32::from_le_bytes(container[0..4].try_into().expect("4 bytes")) as usize;
    let lengths = container[4..4 + 257].to_vec();
    let payload_len =
        u32::from_le_bytes(container[4 + 257..header].try_into().expect("4 bytes")) as usize;
    let payload = container
        .get(header..header + payload_len)
        .ok_or(GzipError::Malformed)?;
    if header + payload_len != container.len() {
        return Err(GzipError::Malformed);
    }
    let codes = canonical_codes(&lengths)?;
    let codec = Codec::from_parts(lengths, codes);
    let mut r = BitReader::new(payload);
    let mut tokens = Vec::with_capacity(token_count);
    for _ in 0..token_count {
        let sym = codec.decode(&mut r, 1)?[0];
        if sym == SYM_MATCH {
            let dist = read_varbits(&mut r)?;
            let len = read_varbits(&mut r)?;
            tokens.push(Token::Match(dist, len));
        } else {
            tokens.push(Token::Literal(sym as u8));
        }
    }
    // validate back-references before decoding
    let mut produced = 0usize;
    for tok in &tokens {
        match tok {
            Token::Literal(_) => produced += 1,
            Token::Match(dist, len) => {
                if *dist as usize > produced || *dist == 0 {
                    return Err(GzipError::Malformed);
                }
                produced += *len as usize;
            }
        }
    }
    Ok(decode(&tokens))
}

/// The gzip-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct GzipWorkload {
    scale: Scale,
}

impl GzipWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for GzipWorkload {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn description(&self) -> &'static str {
        "LZ77 compressor with level-configured hash-chain match finder"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // (name, description, seed, KB, level, data kind)
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 8] = [
            ("train", "combined text, level 6", 101, 224, 6, 0),
            ("ref", "source code, level 9", 102, 512, 9, 1),
            ("ext-1", "server logs, level 3", 103, 288, 3, 2),
            ("ext-2", "graphic data, level 5", 104, 320, 5, 3),
            ("ext-3", "random data, level 9", 105, 288, 9, 5),
            ("ext-4", "program source, level 2", 106, 320, 2, 1),
            ("ext-5", "C source, level 7", 107, 288, 7, 1),
            ("ext-6", "large text, level 1", 108, 384, 1, 0),
        ];
        table
            .iter()
            .map(|&(name, description, seed, kb, level, variant)| InputSet {
                name,
                description,
                seed,
                size: self.scale.apply(kb * 1024),
                level,
                variant,
            })
            .collect()
    }

    fn run(&self, input: &InputSet, tracer: &mut dyn Tracer) {
        let kind = DataKind::from_variant(input.variant);
        let data = generate(kind, input.size as usize, input.seed);
        let tokens = deflate(&data, input.level as usize, tracer);
        let bits = encode_cost(&tokens, tracer);
        std::hint::black_box(bits);
    }

    fn instructions_per_branch(&self) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::{CountingTracer, EdgeProfiler, NullTracer, SiteId};

    #[test]
    fn roundtrip_all_kinds_and_levels() {
        for (kind, level) in [
            (DataKind::Text, 1),
            (DataKind::Text, 9),
            (DataKind::Source, 6),
            (DataKind::Random, 4),
            (DataKind::Graphic, 8),
            (DataKind::Video, 2),
            (DataKind::Log, 5),
        ] {
            let data = generate(kind, 20_000, 7);
            let tokens = deflate(&data, level, &mut NullTracer);
            assert_eq!(decode(&tokens), data, "{kind:?} level {level}");
        }
    }

    #[test]
    fn compressible_data_produces_matches() {
        let data = generate(DataKind::Text, 50_000, 3);
        let tokens = deflate(&data, 9, &mut NullTracer);
        let matches = tokens
            .iter()
            .filter(|t| matches!(t, Token::Match(..)))
            .count();
        assert!(
            matches * 10 > tokens.len(),
            "text should compress: {matches}/{}",
            tokens.len()
        );
        assert!(tokens.len() < data.len() / 2);
    }

    #[test]
    fn random_data_is_mostly_literals() {
        let data = generate(DataKind::Random, 50_000, 3);
        let tokens = deflate(&data, 9, &mut NullTracer);
        let literals = tokens
            .iter()
            .filter(|t| matches!(t, Token::Literal(_)))
            .count();
        assert!(
            literals * 10 > tokens.len() * 9,
            "{literals}/{}",
            tokens.len()
        );
    }

    #[test]
    fn chain_exit_bias_depends_on_level() {
        // The Figure 7 property: at level 1 the chain walk caps at 4, so the
        // exit branch's taken ("continue") rate is far lower than at level 9.
        let data = generate(DataKind::Text, 60_000, 11);
        let rate = |level: usize| {
            let mut prof = EdgeProfiler::new(SITES.len());
            deflate(&data, level, &mut prof);
            prof.edge(S_CHAIN_EXIT).taken_rate().unwrap()
        };
        let r1 = rate(1);
        let r9 = rate(9);
        assert!(
            r9 > r1 + 0.15,
            "chain-continue rate should rise with level: L1={r1:.3} L9={r9:.3}"
        );
    }

    #[test]
    fn higher_level_finds_no_fewer_matches() {
        let data = generate(DataKind::Source, 40_000, 13);
        let compressed_len = |level| deflate(&data, level, &mut NullTracer).len();
        let l1 = compressed_len(1);
        let l9 = compressed_len(9);
        assert!(
            l9 <= l1,
            "level 9 ({l9}) should not be worse than level 1 ({l1})"
        );
    }

    #[test]
    fn byte_container_roundtrips() {
        for (kind, level) in [
            (DataKind::Text, 9),
            (DataKind::Source, 6),
            (DataKind::Random, 1),
            (DataKind::Log, 4),
        ] {
            let data = generate(kind, 30_000, 55);
            let container = deflate_bytes(&data, level, &mut NullTracer);
            assert_eq!(inflate_bytes(&container).unwrap(), data, "{kind:?}");
            if kind == DataKind::Text {
                assert!(
                    container.len() < data.len() / 2,
                    "text at level 9 should at least halve: {} -> {}",
                    data.len(),
                    container.len()
                );
            }
        }
        let empty = deflate_bytes(&[], 5, &mut NullTracer);
        assert_eq!(inflate_bytes(&empty).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_containers_rejected() {
        let data = generate(DataKind::Text, 5_000, 77);
        let container = deflate_bytes(&data, 6, &mut NullTracer);
        assert!(inflate_bytes(&container[..container.len() - 3]).is_err());
        assert!(inflate_bytes(&container[..10]).is_err());
        let mut long = container.clone();
        long.push(1);
        assert_eq!(inflate_bytes(&long), Err(GzipError::Malformed));
    }

    #[test]
    fn workload_runs_and_traces() {
        let w = GzipWorkload::new(Scale::Tiny);
        let mut c = CountingTracer::new();
        w.run(&w.input_set("train").unwrap(), &mut c);
        assert!(c.count() > 10_000, "{}", c.count());
    }

    #[test]
    fn site_constants_are_dense() {
        assert_eq!(S_MAIN_LOOP, SiteId(0));
        assert_eq!(SITES.len(), 16);
        btrace::validate_sites("gzip", SITES);
    }

    #[test]
    #[should_panic(expected = "level must be 1..=9")]
    fn deflate_rejects_level_zero() {
        let _ = deflate(b"abc", 0, &mut NullTracer);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(deflate(b"", 5, &mut NullTracer).is_empty());
        assert_eq!(
            deflate(b"ab", 5, &mut NullTracer),
            vec![Token::Literal(b'a'), Token::Literal(b'b')]
        );
    }
}
