//! `gcc` analogue: a toy C-subset compiler.
//!
//! Four real phases over generated source files: a hand-written lexer, a
//! recursive-descent parser into an AST, a constant-folding +
//! dead-branch-elimination optimizer, and a stack-machine code generator
//! with a tiny linear-scan register allocator. gcc's branch behaviour is
//! famously input-dependent because every phase dispatches on token/node
//! kinds whose mix tracks the *style* of the source file being compiled —
//! arithmetic-heavy, control-heavy, or declaration-heavy programs exercise
//! the same branches at very different rates.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_LEX_LOOP => "lex_char_loop" (Loop),
    S_LEX_SPACE => "lex_is_space" (Guard),
    S_LEX_DIGIT => "lex_is_digit" (TypeCheck),
    S_LEX_IDENT => "lex_ident_continue" (Loop),
    S_LEX_KEYWORD => "lex_keyword_probe" (Search),
    S_PARSE_STMT => "parse_stmt_is_if" (TypeCheck),
    S_PARSE_WHILE => "parse_stmt_is_while" (TypeCheck),
    S_PARSE_ASSIGN => "parse_stmt_is_assign" (TypeCheck),
    S_EXPR_BINOP => "expr_more_binops" (Loop),
    S_EXPR_PAREN => "expr_is_parenthesized" (IfElse),
    S_FOLD_CONST => "fold_both_const" (Guard),
    S_FOLD_DEAD => "fold_branch_dead" (Guard),
    S_CSE_HIT => "cse_table_hit" (Search),
    S_REG_FREE => "regalloc_register_free" (Guard),
    S_EMIT_IMM => "emit_operand_immediate" (IfElse),
    S_DSE_LOOP => "dse_instruction_loop" (Loop),
    S_STORE_DEAD => "dse_store_is_dead" (Guard),
    S_DSE_BARRIER => "dse_control_barrier" (Guard),
}

/// Token kinds of the toy language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Num(i64),
    /// Identifier (variable index 0..26).
    Ident(u8),
    /// `if` / `while` / `int` keywords.
    Kw(&'static str),
    /// Single-char punctuation/operator.
    Ch(u8),
}

const KEYWORDS: [&str; 3] = ["if", "while", "int"];

/// Lexes toy-C source, tracing character-class branches.
pub fn lex(src: &[u8], t: &mut dyn Tracer) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut i = 0usize;
    while br!(t, S_LEX_LOOP, i < src.len()) {
        let c = src[i];
        if br!(t, S_LEX_SPACE, c.is_ascii_whitespace()) {
            i += 1;
            continue;
        }
        if br!(t, S_LEX_DIGIT, c.is_ascii_digit()) {
            let mut v = 0i64;
            while i < src.len() && src[i].is_ascii_digit() {
                v = v * 10 + (src[i] - b'0') as i64;
                i += 1;
            }
            toks.push(Tok::Num(v));
            continue;
        }
        if c.is_ascii_alphabetic() {
            let start = i;
            while br!(
                t,
                S_LEX_IDENT,
                i < src.len() && src[i].is_ascii_alphanumeric()
            ) {
                i += 1;
            }
            let word = &src[start..i];
            let mut kw = None;
            for k in KEYWORDS {
                if !br!(t, S_LEX_KEYWORD, word != k.as_bytes()) {
                    kw = Some(k);
                    break;
                }
            }
            match kw {
                Some(k) => toks.push(Tok::Kw(k)),
                None => toks.push(Tok::Ident((word[0].to_ascii_lowercase() - b'a') % 26)),
            }
            continue;
        }
        toks.push(Tok::Ch(c));
        i += 1;
    }
    toks
}

/// Expression AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Constant.
    Const(i64),
    /// Variable reference.
    Var(u8),
    /// Binary operation: op, lhs, rhs.
    Bin(u8, Box<Expr>, Box<Expr>),
}

/// Statement AST.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `v = expr;`
    Assign(u8, Expr),
    /// `if (expr) { body }`
    If(Expr, Vec<Stmt>),
    /// `while (expr) { body }` — loop bodies are compiled, not executed.
    While(Expr, Vec<Stmt>),
}

struct ParserState<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl ParserState<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat_ch(&mut self, c: u8) -> bool {
        if self.peek() == Some(&Tok::Ch(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_primary(&mut self, t: &mut dyn Tracer) -> Expr {
        if br!(t, S_EXPR_PAREN, self.peek() == Some(&Tok::Ch(b'('))) {
            self.pos += 1;
            let e = self.parse_expr(t);
            self.eat_ch(b')');
            return e;
        }
        match self.peek().cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Expr::Const(v)
            }
            Some(Tok::Ident(v)) => {
                self.pos += 1;
                Expr::Var(v)
            }
            _ => {
                self.pos += 1; // error recovery: skip
                Expr::Const(0)
            }
        }
    }

    fn parse_expr(&mut self, t: &mut dyn Tracer) -> Expr {
        let mut lhs = self.parse_primary(t);
        while br!(
            t,
            S_EXPR_BINOP,
            matches!(
                self.peek(),
                Some(Tok::Ch(b'+'))
                    | Some(Tok::Ch(b'-'))
                    | Some(Tok::Ch(b'*'))
                    | Some(Tok::Ch(b'<'))
            )
        ) {
            let op = match self.peek() {
                Some(&Tok::Ch(c)) => c,
                _ => unreachable!("guarded by the matches! above"),
            };
            self.pos += 1;
            let rhs = self.parse_primary(t);
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        lhs
    }

    fn parse_block(&mut self, t: &mut dyn Tracer, depth: u32) -> Vec<Stmt> {
        let mut body = Vec::new();
        while self.pos < self.toks.len() && self.peek() != Some(&Tok::Ch(b'}')) {
            if let Some(s) = self.parse_stmt(t, depth) {
                body.push(s);
            }
        }
        body
    }

    fn parse_stmt(&mut self, t: &mut dyn Tracer, depth: u32) -> Option<Stmt> {
        if depth > 32 {
            self.pos += 1;
            return None;
        }
        let is_if = br!(t, S_PARSE_STMT, self.peek() == Some(&Tok::Kw("if")));
        if is_if {
            self.pos += 1;
            self.eat_ch(b'(');
            let cond = self.parse_expr(t);
            self.eat_ch(b')');
            self.eat_ch(b'{');
            let body = self.parse_block(t, depth + 1);
            self.eat_ch(b'}');
            return Some(Stmt::If(cond, body));
        }
        if br!(t, S_PARSE_WHILE, self.peek() == Some(&Tok::Kw("while"))) {
            self.pos += 1;
            self.eat_ch(b'(');
            let cond = self.parse_expr(t);
            self.eat_ch(b')');
            self.eat_ch(b'{');
            let body = self.parse_block(t, depth + 1);
            self.eat_ch(b'}');
            return Some(Stmt::While(cond, body));
        }
        let is_assign = matches!(self.peek(), Some(Tok::Ident(_)) | Some(Tok::Kw("int")));
        if br!(t, S_PARSE_ASSIGN, is_assign) {
            if self.peek() == Some(&Tok::Kw("int")) {
                self.pos += 1;
            }
            let v = match self.peek() {
                Some(&Tok::Ident(v)) => {
                    self.pos += 1;
                    v
                }
                _ => 0,
            };
            self.eat_ch(b'=');
            let e = self.parse_expr(t);
            self.eat_ch(b';');
            return Some(Stmt::Assign(v, e));
        }
        self.pos += 1; // skip stray token
        None
    }
}

/// Parses a token stream into statements.
pub fn parse(toks: &[Tok], t: &mut dyn Tracer) -> Vec<Stmt> {
    let mut p = ParserState { toks, pos: 0 };
    p.parse_block(t, 0)
}

/// Constant-folds an expression.
fn fold_expr(e: Expr, t: &mut dyn Tracer) -> Expr {
    match e {
        Expr::Bin(op, lhs, rhs) => {
            let l = fold_expr(*lhs, t);
            let r = fold_expr(*rhs, t);
            let both_const = matches!((&l, &r), (Expr::Const(_), Expr::Const(_)));
            if br!(t, S_FOLD_CONST, both_const) {
                if let (Expr::Const(a), Expr::Const(b)) = (&l, &r) {
                    let v = match op {
                        b'+' => a.wrapping_add(*b),
                        b'-' => a.wrapping_sub(*b),
                        b'*' => a.wrapping_mul(*b),
                        _ => (a < b) as i64,
                    };
                    return Expr::Const(v);
                }
            }
            Expr::Bin(op, Box::new(l), Box::new(r))
        }
        other => other,
    }
}

/// Constant folding + dead-branch elimination over a statement list.
pub fn optimize(stmts: Vec<Stmt>, t: &mut dyn Tracer) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign(v, e) => out.push(Stmt::Assign(v, fold_expr(e, t))),
            Stmt::If(c, body) => {
                let c = fold_expr(c, t);
                let dead = matches!(c, Expr::Const(0));
                if br!(t, S_FOLD_DEAD, dead) {
                    continue; // drop statically-false branch
                }
                out.push(Stmt::If(c, optimize(body, t)));
            }
            Stmt::While(c, body) => {
                let c = fold_expr(c, t);
                let dead = matches!(c, Expr::Const(0));
                if br!(t, S_FOLD_DEAD, dead) {
                    continue;
                }
                out.push(Stmt::While(c, optimize(body, t)));
            }
        }
    }
    out
}

/// One emitted pseudo-instruction (opcode byte + operands), enough to count
/// code size and register pressure.
pub type Inst = (u8, i64, i64);

struct Codegen<'a> {
    t: &'a mut dyn Tracer,
    code: Vec<Inst>,
    regs_in_use: [bool; 8],
    cse: Vec<(u64, u8)>, // (expr hash, register)
}

impl Codegen<'_> {
    fn alloc_reg(&mut self) -> u8 {
        for (i, used) in self.regs_in_use.iter_mut().enumerate() {
            if br!(self.t, S_REG_FREE, !*used) {
                *used = true;
                return i as u8;
            }
        }
        // spill register 0
        self.code.push((b'S', 0, 0));
        0
    }

    fn free_reg(&mut self, r: u8) {
        if (r as usize) < self.regs_in_use.len() {
            self.regs_in_use[r as usize] = false;
        }
        // a freed register no longer holds its CSE value
        self.cse.retain(|&(_, reg)| reg != r);
    }

    fn hash_expr(e: &Expr) -> u64 {
        match e {
            // odd multiplier keeps the map injective over constants; the
            // added tag separates Const(v) from Var/Bin hashes
            Expr::Const(v) => (*v as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0x5851_F42D),
            Expr::Var(v) => 0x85EB_CA6Bu64.wrapping_mul(*v as u64 + 2),
            Expr::Bin(op, l, r) => Self::hash_expr(l)
                .rotate_left(13)
                .wrapping_mul(31)
                .wrapping_add(Self::hash_expr(r).rotate_left(7))
                .wrapping_add(*op as u64),
        }
    }

    fn gen_expr(&mut self, e: &Expr) -> u8 {
        let h = Self::hash_expr(e);
        let mut hit = None;
        for &(eh, r) in self.cse.iter().rev().take(8) {
            if !br!(self.t, S_CSE_HIT, eh != h) {
                hit = Some(r);
                break;
            }
        }
        if let Some(r) = hit {
            // copy the cached value into a fresh register: binary ops are
            // destructive on their left operand, so handing out the cached
            // register directly would let a later op clobber it
            let dst = self.alloc_reg();
            self.code.push((b'M', dst as i64, r as i64));
            return dst;
        }
        let r = match e {
            Expr::Const(v) => {
                let r = self.alloc_reg();
                br!(self.t, S_EMIT_IMM, true);
                self.code.push((b'I', r as i64, *v));
                r
            }
            Expr::Var(v) => {
                let r = self.alloc_reg();
                br!(self.t, S_EMIT_IMM, false);
                self.code.push((b'L', r as i64, *v as i64));
                r
            }
            Expr::Bin(op, l, rhs) => {
                let rl = self.gen_expr(l);
                let rr = self.gen_expr(rhs);
                self.code.push((*op, rl as i64, rr as i64));
                if rr != rl {
                    self.free_reg(rr);
                }
                // rl is overwritten with the result: its old value's CSE
                // entry is dead
                self.cse.retain(|&(_, reg)| reg != rl);
                rl
            }
        };
        self.cse.push((h, r));
        r
    }

    fn gen_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign(v, e) => {
                let r = self.gen_expr(e);
                self.code.push((b'=', *v as i64, r as i64));
                self.free_reg(r);
                self.cse.clear(); // assignment invalidates CSE entries
            }
            Stmt::If(c, body) => {
                let r = self.gen_expr(c);
                // J = jump-to-b-if-register-a-is-zero; target patched below
                let jump_at = self.code.len();
                self.code.push((b'J', r as i64, 0));
                self.free_reg(r);
                self.cse.clear(); // values beyond the join are path-dependent
                for s in body {
                    self.gen_stmt(s);
                }
                self.code[jump_at].2 = self.code.len() as i64;
            }
            Stmt::While(c, body) => {
                let loop_start = self.code.len();
                self.cse.clear(); // the back edge invalidates prior values
                let r = self.gen_expr(c);
                let jump_at = self.code.len();
                self.code.push((b'J', r as i64, 0));
                self.free_reg(r);
                for s in body {
                    self.gen_stmt(s);
                }
                // B = unconditional back jump to the condition
                self.code.push((b'B', 0, loop_start as i64));
                self.code[jump_at].2 = self.code.len() as i64;
            }
        }
    }
}

/// Compiles statements to pseudo-instructions.
pub fn codegen(stmts: &[Stmt], t: &mut dyn Tracer) -> Vec<Inst> {
    let mut cg = Codegen {
        t,
        code: Vec::new(),
        regs_in_use: [false; 8],
        cse: Vec::new(),
    };
    for s in stmts {
        cg.gen_stmt(s);
    }
    cg.code
}

/// Backward dead-store elimination over emitted code: a store to a variable
/// that is overwritten before any load (within a branch-free region) is
/// dropped. Control-flow markers (`J`/`W`/`B`) conservatively make all
/// variables live.
pub fn eliminate_dead_stores(code: &[Inst], t: &mut dyn Tracer) -> Vec<Inst> {
    let mut live = [true; 26];
    let mut keep = vec![true; code.len()];
    let mut i = code.len();
    while br!(t, S_DSE_LOOP, i > 0) {
        i -= 1;
        let (op, a, b) = code[i];
        match op {
            b'=' => {
                let v = a as usize % 26;
                if br!(t, S_STORE_DEAD, !live[v]) {
                    keep[i] = false;
                } else {
                    live[v] = false;
                }
                let _ = b;
            }
            b'L' => live[b as usize % 26] = true,
            b'J' | b'W' | b'B' => {
                br!(t, S_DSE_BARRIER, true);
                live = [true; 26];
            }
            _ => {
                br!(t, S_DSE_BARRIER, false);
            }
        }
    }
    // compact, remapping jump targets (J/B carry absolute indices)
    let mut new_index = vec![0usize; code.len() + 1];
    let mut n = 0usize;
    for (i, &k) in keep.iter().enumerate() {
        new_index[i] = n;
        n += k as usize;
    }
    new_index[code.len()] = n;
    code.iter()
        .zip(&keep)
        .filter(|&(_, &k)| k)
        .map(|(&(op, a, b), _)| match op {
            b'J' | b'B' => (op, a, new_index[b as usize] as i64),
            _ => (op, a, b),
        })
        .collect()
}

/// Why the register VM stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmExit {
    /// Fell off the end of the program.
    Finished,
    /// The fuel budget ran out mid-loop.
    OutOfFuel,
}

/// Executes compiled code on the 8-register / 26-variable machine the
/// code generator targets. Returns the final variable file and the exit
/// reason. `fuel` bounds the executed instruction count (generated `while`
/// loops are not guaranteed to terminate).
pub fn execute(code: &[Inst], fuel: u64) -> ([i64; 26], VmExit) {
    let mut regs = [0i64; 8];
    let mut vars = [0i64; 26];
    let mut pc = 0usize;
    let mut remaining = fuel;
    while pc < code.len() {
        if remaining == 0 {
            return (vars, VmExit::OutOfFuel);
        }
        remaining -= 1;
        let (op, a, b) = code[pc];
        pc += 1;
        match op {
            b'I' => regs[a as usize % 8] = b,
            b'L' => regs[a as usize % 8] = vars[b as usize % 26],
            b'M' => regs[a as usize % 8] = regs[b as usize % 8],
            b'=' => vars[a as usize % 26] = regs[b as usize % 8],
            b'+' => regs[a as usize % 8] = regs[a as usize % 8].wrapping_add(regs[b as usize % 8]),
            b'-' => regs[a as usize % 8] = regs[a as usize % 8].wrapping_sub(regs[b as usize % 8]),
            b'*' => regs[a as usize % 8] = regs[a as usize % 8].wrapping_mul(regs[b as usize % 8]),
            b'<' => {
                regs[a as usize % 8] = (regs[a as usize % 8] < regs[b as usize % 8]) as i64;
            }
            b'J' if regs[a as usize % 8] == 0 => pc = b as usize,
            b'J' => {}
            b'B' => pc = b as usize,
            _ => {} // 'S' spill marker and unknown ops are no-ops
        }
    }
    (vars, VmExit::Finished)
}

/// Reference interpreter: evaluates the AST directly with the same wrapping
/// semantics and fuel policy as [`execute`] (fuel is charged per statement
/// and per loop iteration). The oracle for compiler-correctness tests.
pub fn eval_ast(stmts: &[Stmt], fuel: &mut u64) -> Option<[i64; 26]> {
    let mut vars = [0i64; 26];
    if eval_block(stmts, &mut vars, fuel) {
        Some(vars)
    } else {
        None
    }
}

fn eval_expr(e: &Expr, vars: &[i64; 26]) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Var(v) => vars[*v as usize % 26],
        Expr::Bin(op, l, r) => {
            let (a, b) = (eval_expr(l, vars), eval_expr(r, vars));
            match op {
                b'+' => a.wrapping_add(b),
                b'-' => a.wrapping_sub(b),
                b'*' => a.wrapping_mul(b),
                _ => (a < b) as i64,
            }
        }
    }
}

fn eval_block(stmts: &[Stmt], vars: &mut [i64; 26], fuel: &mut u64) -> bool {
    for s in stmts {
        if *fuel == 0 {
            return false;
        }
        *fuel -= 1;
        match s {
            Stmt::Assign(v, e) => vars[*v as usize % 26] = eval_expr(e, vars),
            Stmt::If(c, body) => {
                if eval_expr(c, vars) != 0 && !eval_block(body, vars, fuel) {
                    return false;
                }
            }
            Stmt::While(c, body) => {
                while eval_expr(c, vars) != 0 {
                    if *fuel == 0 {
                        return false;
                    }
                    *fuel -= 1;
                    if !eval_block(body, vars, fuel) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Generates a toy-C source file. `style` 0 = arithmetic-heavy,
/// 1 = control-heavy, 2 = declaration-heavy, 3 = constant-heavy (folds a
/// lot).
pub fn gen_source(lines: usize, style: u32, rng: &mut Xoshiro256) -> Vec<u8> {
    let mut src = Vec::new();
    let mut depth = 0usize;
    for _ in 0..lines {
        let kind = match style {
            1 => rng.below(10), // control-heavy uses full range
            _ => 3 + rng.below(7),
        };
        let var = b'a' + rng.below(20) as u8;
        match kind {
            0..=1 if depth < 4 => {
                src.extend_from_slice(b"if (");
                src.push(b'a' + rng.below(20) as u8);
                src.extend_from_slice(b" < ");
                src.extend_from_slice(rng.below(100).to_string().as_bytes());
                src.extend_from_slice(b") {\n");
                depth += 1;
            }
            2 if depth < 4 => {
                src.extend_from_slice(b"while (");
                src.push(b'a' + rng.below(20) as u8);
                src.extend_from_slice(b" < ");
                src.extend_from_slice(rng.below(50).to_string().as_bytes());
                src.extend_from_slice(b") {\n");
                depth += 1;
            }
            _ => {
                if style == 2 && rng.chance(50) {
                    src.extend_from_slice(b"int ");
                }
                src.push(var);
                src.extend_from_slice(b" = ");
                let terms = 1 + rng.below(if style == 0 { 5 } else { 2 });
                for k in 0..terms {
                    if k > 0 {
                        src.extend_from_slice([b" + ", b" * ", b" - "][rng.below(3) as usize]);
                    }
                    if style == 3 || rng.chance(40) {
                        src.extend_from_slice(rng.below(1000).to_string().as_bytes());
                    } else {
                        src.push(b'a' + rng.below(20) as u8);
                    }
                }
                src.extend_from_slice(b";\n");
                if depth > 0 && rng.chance(30) {
                    src.extend_from_slice(b"}\n");
                    depth -= 1;
                }
            }
        }
    }
    for _ in 0..depth {
        src.extend_from_slice(b"}\n");
    }
    src
}

/// The gcc-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct GccWorkload {
    scale: Scale,
}

impl GccWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for GccWorkload {
    fn name(&self) -> &'static str {
        "gcc"
    }

    fn description(&self) -> &'static str {
        "toy C-subset compiler: lex, parse, fold, codegen"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = source lines; level unused; variant = source style
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 8] = [
            ("train", "cp-decl.i: declaration-heavy", 801, 30_000, 0, 2),
            ("ref", "166.i: mixed large unit", 802, 80_000, 0, 0),
            ("ext-1", "small reduced input", 803, 24_000, 0, 0),
            ("ext-2", "jump.i: control-heavy", 804, 34_000, 0, 1),
            ("ext-3", "emit-rtl.i: arithmetic-heavy", 805, 40_000, 0, 0),
            ("ext-4", "dbxout.i: constant-heavy", 806, 36_000, 0, 3),
            ("ext-5", "medium reduced input", 807, 40_000, 0, 1),
            ("ext-6", "large reduced input", 808, 56_000, 0, 2),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        // compile several "files", as a compilation unit sweep
        let files = 6usize;
        let lines_per_file = (input.size as usize / files).max(8);
        let mut total_code = 0usize;
        for f in 0..files {
            let style = if input.variant == 0 {
                f as u32 % 3 // "mixed" cycles styles per file
            } else {
                input.variant
            };
            let src = gen_source(lines_per_file, style, &mut rng);
            let toks = lex(&src, t);
            let ast = parse(&toks, t);
            let opt = optimize(ast, t);
            let code = codegen(&opt, t);
            let final_code = eliminate_dead_stores(&code, t);
            total_code += final_code.len();
        }
        std::hint::black_box(total_code);
    }

    fn instructions_per_branch(&self) -> f64 {
        5.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    #[test]
    fn lexer_tokenizes_all_classes() {
        let toks = lex(b"int x = 42; if (y < 7) { z = x + 1; }", &mut NullTracer);
        assert!(toks.contains(&Tok::Kw("int")));
        assert!(toks.contains(&Tok::Kw("if")));
        assert!(toks.contains(&Tok::Num(42)));
        assert!(toks.contains(&Tok::Ch(b'<')));
        assert!(matches!(toks[1], Tok::Ident(_)));
    }

    #[test]
    fn parser_builds_nested_structure() {
        let toks = lex(
            b"if (a < 2) { b = 3; while (c < 1) { d = 4; } }",
            &mut NullTracer,
        );
        let ast = parse(&toks, &mut NullTracer);
        assert_eq!(ast.len(), 1);
        match &ast[0] {
            Stmt::If(_, body) => {
                assert_eq!(body.len(), 2);
                assert!(matches!(body[1], Stmt::While(..)));
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn folding_evaluates_constants() {
        let toks = lex(b"x = 2 + 3 * 4;", &mut NullTracer);
        let ast = parse(&toks, &mut NullTracer);
        let opt = optimize(ast, &mut NullTracer);
        // left-assoc parse: (2 + 3) * 4 = 20
        assert_eq!(opt, vec![Stmt::Assign(23, Expr::Const(20))]);
    }

    #[test]
    fn dead_if_is_eliminated() {
        let toks = lex(b"if (1 < 1) { x = 5; } y = 2;", &mut NullTracer);
        let ast = parse(&toks, &mut NullTracer);
        let opt = optimize(ast, &mut NullTracer);
        assert_eq!(opt.len(), 1, "the statically-false if must vanish: {opt:?}");
        assert!(matches!(opt[0], Stmt::Assign(..)));
    }

    #[test]
    fn live_if_is_kept() {
        let toks = lex(b"if (a < 1) { x = 5; }", &mut NullTracer);
        let opt = optimize(parse(&toks, &mut NullTracer), &mut NullTracer);
        assert_eq!(opt.len(), 1);
        assert!(matches!(opt[0], Stmt::If(..)));
    }

    #[test]
    fn codegen_emits_and_reuses_registers() {
        let toks = lex(b"x = a + b; y = c + d; z = e + f;", &mut NullTracer);
        let opt = optimize(parse(&toks, &mut NullTracer), &mut NullTracer);
        let code = codegen(&opt, &mut NullTracer);
        assert!(code.iter().any(|&(op, _, _)| op == b'+'));
        assert!(
            code.iter().all(|&(op, _, _)| op != b'S'),
            "three simple statements must not spill: {code:?}"
        );
        // registers are recycled: max register index stays small
        let max_reg = code
            .iter()
            .filter(|&&(op, _, _)| op == b'L')
            .map(|&(_, r, _)| r)
            .max()
            .unwrap();
        assert!(max_reg <= 2, "register reuse failed: {code:?}");
    }

    fn count_stmts(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::Assign(..) => 1,
                Stmt::If(_, body) | Stmt::While(_, body) => 1 + count_stmts(body),
            })
            .sum()
    }

    #[test]
    fn generated_source_is_parseable() {
        for style in 0..4 {
            let mut rng = Xoshiro256::seed_from_u64(style as u64 + 10);
            let src = gen_source(300, style, &mut rng);
            let toks = lex(&src, &mut NullTracer);
            let ast = parse(&toks, &mut NullTracer);
            let total = count_stmts(&ast);
            assert!(
                total > 150,
                "style {style} should produce many statements, got {total}"
            );
        }
    }

    /// Compiles source text end-to-end (optionally optimizing) and runs it
    /// on the VM; also evaluates the AST oracle. Returns (vm vars, oracle).
    fn run_both(src: &[u8], optimize_first: bool, fuel: u64) -> ([i64; 26], Option<[i64; 26]>) {
        let t = &mut NullTracer;
        let ast = parse(&lex(src, t), t);
        let mut oracle_fuel = fuel;
        let oracle = eval_ast(&ast, &mut oracle_fuel);
        let ast = if optimize_first {
            optimize(ast, t)
        } else {
            ast
        };
        let code = eliminate_dead_stores(&codegen(&ast, t), t);
        let (vars, _) = execute(&code, fuel * 16);
        (vars, oracle)
    }

    #[test]
    fn compiled_code_matches_ast_oracle_straightline() {
        let cases: [&[u8]; 6] = [
            b"a = 5; b = a + 3; c = a * b;",
            b"x = 2 + 3 * 4; y = x - 10; z = y < 3;",
            b"a = 1; a = a + a + a; b = a * a * a;",
            b"q = 7 * (3 + 2); r = q - (1 + 1);",
            b"m = 4; n = m * (m + 1); o = n < m;",
            b"a = 9; b = 9; c = a - b; d = c < 1;",
        ];
        for src in cases {
            for optimize_first in [false, true] {
                let (vm, oracle) = run_both(src, optimize_first, 10_000);
                assert_eq!(
                    Some(vm),
                    oracle,
                    "source {:?} optimize={optimize_first}",
                    std::str::from_utf8(src).unwrap()
                );
            }
        }
    }

    #[test]
    fn compiled_code_matches_oracle_with_branches() {
        let cases: [&[u8]; 4] = [
            b"a = 5; if (a < 10) { b = 1; } if (a < 2) { b = 2; } c = b + a;",
            b"a = 1; if (a) { a = a + 1; if (a < 3) { a = a * 10; } } d = a;",
            b"x = 0; if (1 < 2) { x = 7; } y = x;",
            b"x = 3; if (2 < 1) { x = 9; } y = x + 1;",
        ];
        for src in cases {
            for optimize_first in [false, true] {
                let (vm, oracle) = run_both(src, optimize_first, 10_000);
                assert_eq!(
                    Some(vm),
                    oracle,
                    "source {:?} optimize={optimize_first}",
                    std::str::from_utf8(src).unwrap()
                );
            }
        }
    }

    #[test]
    fn compiled_loops_execute_correctly() {
        // sum 0..5 via a while loop: i counts up, s accumulates
        let src: &[u8] = b"i = 0; s = 0; while (i < 5) { s = s + i; i = i + 1; }";
        let (vm, oracle) = run_both(src, true, 10_000);
        assert_eq!(Some(vm), oracle);
        assert_eq!(vm[(b'i' - b'a') as usize], 5);
        assert_eq!(vm[(b's' - b'a') as usize], 10);
    }

    #[test]
    fn vm_fuel_bounds_infinite_loops() {
        let src: &[u8] = b"a = 1; while (a) { b = b + 1; }";
        let t = &mut NullTracer;
        let code = codegen(&parse(&lex(src, t), t), t);
        let (_, exit) = execute(&code, 1_000);
        assert_eq!(exit, VmExit::OutOfFuel);
    }

    #[test]
    fn generated_programs_compile_and_run_semantically_equal() {
        // fuzz-ish: every style's generated source must run identically on
        // the VM (optimized and unoptimized) and match the AST oracle when
        // the oracle terminates within fuel
        for style in 0..4u32 {
            for seed in 0..5u64 {
                let mut rng = Xoshiro256::seed_from_u64(seed * 31 + style as u64);
                let src = gen_source(60, style, &mut rng);
                let (vm_opt, oracle) = run_both(&src, true, 50_000);
                let (vm_raw, _) = run_both(&src, false, 50_000);
                if let Some(expect) = oracle {
                    assert_eq!(vm_opt, expect, "style {style} seed {seed} (optimized)");
                    assert_eq!(vm_raw, expect, "style {style} seed {seed} (raw)");
                }
            }
        }
    }

    #[test]
    fn dse_preserves_semantics_and_shrinks_code() {
        let t = &mut NullTracer;
        let src: &[u8] = b"a = 1; a = 2; a = 3; b = a; b = a + 1; c = b;";
        let ast = parse(&lex(src, t), t);
        let code = codegen(&ast, t);
        let dse = eliminate_dead_stores(&code, t);
        assert!(dse.len() < code.len(), "dead stores must be removed");
        let (v1, _) = execute(&code, 10_000);
        let (v2, _) = execute(&dse, 10_000);
        assert_eq!(v1, v2);
    }

    #[test]
    fn styles_change_branch_mix() {
        use btrace::EdgeProfiler;
        let rate_if = |style: u32| {
            let mut rng = Xoshiro256::seed_from_u64(77);
            let src = gen_source(1_000, style, &mut rng);
            let toks = lex(&src, &mut NullTracer);
            let mut prof = EdgeProfiler::new(SITES.len());
            let _ = parse(&toks, &mut prof);
            prof.edge(S_PARSE_STMT).taken_rate().unwrap()
        };
        let control = rate_if(1);
        let arith = rate_if(0);
        assert!(
            control > arith,
            "control-heavy style hits the if-statement branch more: {control:.3} vs {arith:.3}"
        );
    }
}
