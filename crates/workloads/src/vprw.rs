//! `vpr` analogue: FPGA maze routing.
//!
//! Routes a list of two-pin nets across a grid with obstacles using
//! breadth-first wavefront expansion (the Lee/maze router VPR's
//! PathFinder derives from), with per-cell congestion costs that grow as
//! nets pile up. Branch behaviour follows the architecture: obstacle
//! density, grid shape and net locality move the hit rates of the cell
//! tests and expansion loops.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};
use std::collections::VecDeque;

declare_sites! {
    S_NET_LOOP => "net_route_loop" (Loop),
    S_WAVE_LOOP => "wavefront_loop" (Loop),
    S_DIR_LOOP => "direction_scan" (Loop),
    S_IN_GRID => "cell_in_grid" (Guard),
    S_CELL_BLOCKED => "cell_blocked" (Guard),
    S_CELL_VISITED => "cell_already_visited" (Guard),
    S_GOAL_FOUND => "goal_reached" (Guard),
    S_CONGESTED => "cell_congested" (IfElse),
    S_TRACEBACK => "traceback_walk" (Loop),
    S_ROUTE_OK => "net_routed" (Guard),
    S_BBOX_SKIP => "outside_net_bbox" (Guard),
    S_RETRY => "failed_net_retried" (Guard),
    S_PATH_BEND => "path_has_bend" (IfElse),
}

/// A routing grid with obstacles and per-cell usage counts.
#[derive(Clone, Debug)]
pub struct Grid {
    width: usize,
    height: usize,
    blocked: Vec<bool>,
    usage: Vec<u16>,
}

impl Grid {
    /// Generates a `width x height` grid with `obstacle_pct`% blocked cells.
    pub fn generate(width: usize, height: usize, obstacle_pct: u64, rng: &mut Xoshiro256) -> Self {
        assert!(width >= 4 && height >= 4, "grid must be at least 4x4");
        let blocked = (0..width * height)
            .map(|_| rng.chance(obstacle_pct))
            .collect();
        Self {
            width,
            height,
            blocked,
            usage: vec![0; width * height],
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }
}

/// Outcome of routing one net.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteResult {
    /// Path cells from source to sink, empty if unroutable.
    pub path: Vec<(u16, u16)>,
    /// Cells expanded by the wavefront.
    pub expanded: u32,
}

/// Routes one net with BFS wavefront expansion confined to the net's
/// bounding box (plus a margin), as VPR's router does for speed.
pub fn route_net(
    grid: &mut Grid,
    src: (u16, u16),
    dst: (u16, u16),
    t: &mut dyn Tracer,
) -> RouteResult {
    let (w, h) = (grid.width, grid.height);
    let margin = 3i32;
    let bbox = (
        (src.0.min(dst.0) as i32 - margin).max(0) as usize,
        (src.1.min(dst.1) as i32 - margin).max(0) as usize,
        (src.0.max(dst.0) as i32 + margin).min(w as i32 - 1) as usize,
        (src.1.max(dst.1) as i32 + margin).min(h as i32 - 1) as usize,
    );
    let mut prev: Vec<i32> = vec![-1; w * h];
    let mut queue = VecDeque::new();
    let s_idx = grid.idx(src.0 as usize, src.1 as usize);
    prev[s_idx] = s_idx as i32;
    queue.push_back((src.0 as usize, src.1 as usize));
    let mut expanded = 0u32;
    let mut found = false;
    while br!(t, S_WAVE_LOOP, !queue.is_empty()) {
        let (x, y) = queue.pop_front().expect("guarded");
        expanded += 1;
        if br!(t, S_GOAL_FOUND, (x as u16, y as u16) == dst) {
            found = true;
            break;
        }
        const DIRS: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
        let mut d = 0usize;
        while br!(t, S_DIR_LOOP, d < DIRS.len()) {
            let (dx, dy) = DIRS[d];
            d += 1;
            let nx = x as i32 + dx;
            let ny = y as i32 + dy;
            if !br!(
                t,
                S_IN_GRID,
                nx >= 0 && ny >= 0 && nx < w as i32 && ny < h as i32
            ) {
                continue;
            }
            let (nx, ny) = (nx as usize, ny as usize);
            if br!(
                t,
                S_BBOX_SKIP,
                nx < bbox.0 || ny < bbox.1 || nx > bbox.2 || ny > bbox.3
            ) {
                continue;
            }
            let ni = grid.idx(nx, ny);
            if br!(t, S_CELL_BLOCKED, grid.blocked[ni]) {
                continue;
            }
            if br!(t, S_CELL_VISITED, prev[ni] >= 0) {
                continue;
            }
            // congestion-aware: heavily-used cells are deferred (treated as
            // blocked once over capacity)
            if br!(t, S_CONGESTED, grid.usage[ni] >= 3) {
                continue;
            }
            prev[ni] = grid.idx(x, y) as i32;
            queue.push_back((nx, ny));
        }
    }
    if !br!(t, S_ROUTE_OK, found) {
        return RouteResult {
            path: Vec::new(),
            expanded,
        };
    }
    // traceback
    let mut path = Vec::new();
    let mut cur = grid.idx(dst.0 as usize, dst.1 as usize);
    while br!(t, S_TRACEBACK, cur != s_idx) {
        path.push(((cur % w) as u16, (cur / w) as u16));
        cur = prev[cur] as usize;
    }
    path.push(src);
    path.reverse();
    for (k, &(x, y)) in path.iter().enumerate() {
        let i = grid.idx(x as usize, y as usize);
        grid.usage[i] += 1;
        // bend detection, as routers cost direction changes
        if k >= 2 {
            let (a, b, c) = (path[k - 2], path[k - 1], (x, y));
            let bend = (b.0 as i32 - a.0 as i32, b.1 as i32 - a.1 as i32)
                != (c.0 as i32 - b.0 as i32, c.1 as i32 - b.1 as i32);
            br!(t, S_PATH_BEND, bend);
        }
    }
    RouteResult { path, expanded }
}

/// The vpr-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct VprWorkload {
    scale: Scale,
}

impl VprWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for VprWorkload {
    fn name(&self) -> &'static str {
        "vpr"
    }

    fn description(&self) -> &'static str {
        "congestion-aware maze router on an FPGA-like grid"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = nets; level = grid side; variant = (obstacle_pct << 8) | locality
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "small array, sparse obstacles",
                901,
                2_600,
                48,
                (8 << 8) | 12,
            ),
            (
                "ref",
                "large array, denser obstacles",
                902,
                6_200,
                80,
                (16 << 8) | 20,
            ),
            (
                "ext-1",
                "very dense obstacles",
                903,
                3_000,
                64,
                (30 << 8) | 10,
            ),
            ("ext-2", "long global nets", 904, 2_800, 72, (10 << 8) | 48),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let side = input.level as usize;
        let obstacle_pct = (input.variant >> 8) as u64;
        let locality = (input.variant & 0xFF) as i64;
        let mut grid = Grid::generate(side, side, obstacle_pct, &mut rng);
        let mut routed = 0u64;
        let mut n = 0u64;
        while br!(t, S_NET_LOOP, n < input.size) {
            n += 1;
            let sx = rng.below(side as u64) as i64;
            let sy = rng.below(side as u64) as i64;
            let dx = (sx + rng.range(-locality, locality)).clamp(0, side as i64 - 1);
            let dy = (sy + rng.range(-locality, locality)).clamp(0, side as i64 - 1);
            let src = (sx as u16, sy as u16);
            let dst = (dx as u16, dy as u16);
            let r = route_net(&mut grid, src, dst, t);
            // rip-up-free single retry: failed nets try once more after the
            // congestion map has evolved, like PathFinder's later iterations
            if br!(t, S_RETRY, r.path.is_empty()) {
                let r2 = route_net(&mut grid, src, dst, t);
                routed += !r2.path.is_empty() as u64;
            } else {
                routed += 1;
            }
        }
        std::hint::black_box(routed);
    }

    fn instructions_per_branch(&self) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    fn open_grid(side: usize) -> Grid {
        Grid {
            width: side,
            height: side,
            blocked: vec![false; side * side],
            usage: vec![0; side * side],
        }
    }

    #[test]
    fn straight_route_has_manhattan_length() {
        let mut g = open_grid(16);
        let r = route_net(&mut g, (2, 3), (7, 3), &mut NullTracer);
        assert_eq!(r.path.len(), 6, "BFS finds a shortest path");
        assert_eq!(r.path.first(), Some(&(2, 3)));
        assert_eq!(r.path.last(), Some(&(7, 3)));
        // path is 4-connected
        for w in r.path.windows(2) {
            let dx = (w[0].0 as i32 - w[1].0 as i32).abs();
            let dy = (w[0].1 as i32 - w[1].1 as i32).abs();
            assert_eq!(dx + dy, 1);
        }
    }

    #[test]
    fn wall_blocks_route_within_bbox() {
        let mut g = open_grid(12);
        // vertical wall at x=5 (full height) between src and dst
        for y in 0..12 {
            let i = g.idx(5, y);
            g.blocked[i] = true;
        }
        let r = route_net(&mut g, (2, 6), (8, 6), &mut NullTracer);
        assert!(r.path.is_empty(), "wall spans the grid: unroutable");
        assert!(r.expanded > 0);
    }

    #[test]
    fn routing_marks_usage_and_congestion_diverts() {
        let mut g = open_grid(16);
        for _ in 0..3 {
            let r = route_net(&mut g, (1, 8), (14, 8), &mut NullTracer);
            assert!(!r.path.is_empty());
        }
        // the straight row is now congested; the 4th net must take a longer
        // path (or fail), not the saturated one
        let r4 = route_net(&mut g, (1, 8), (14, 8), &mut NullTracer);
        if !r4.path.is_empty() {
            assert!(
                r4.path.len() > 14,
                "must detour around congestion: {}",
                r4.path.len()
            );
        }
    }

    #[test]
    fn src_equals_dst() {
        let mut g = open_grid(8);
        let r = route_net(&mut g, (3, 3), (3, 3), &mut NullTracer);
        assert_eq!(r.path, vec![(3, 3)]);
    }

    #[test]
    fn bbox_confines_expansion() {
        let mut g = open_grid(64);
        let r = route_net(&mut g, (30, 30), (33, 30), &mut NullTracer);
        // bbox is ~10x7; expansion must stay well under the full grid
        assert!(r.expanded < 100, "expanded {} cells", r.expanded);
    }

    #[test]
    #[should_panic(expected = "at least 4x4")]
    fn tiny_grid_rejected() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let _ = Grid::generate(2, 2, 10, &mut rng);
    }
}
