//! `crafty` analogue: chess move generation and alpha-beta search.
//!
//! A real (simplified) chess engine: 0x88 board, full legal-ish move
//! generation for all piece types, material + mobility evaluation, and a
//! fixed-depth alpha-beta search with capture-first move ordering. Input
//! sets are different initial board layouts, as in the paper's crafty
//! experiments ("constructed by modifying the initial layout of the chess
//! board", §4.2) — search-tree branches (cutoffs, stand-pat, capture tests)
//! shift substantially between layouts.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_SQ_ON_BOARD => "square_on_board" (Guard),
    S_SQ_EMPTY => "square_empty" (Guard),
    S_OWN_PIECE => "square_own_piece" (Guard),
    S_IS_SLIDER => "piece_is_slider" (TypeCheck),
    S_RAY_CONT_BISHOP => "bishop_ray_continue" (Loop),
    S_RAY_CONT_ROOK => "rook_ray_continue" (Loop),
    S_RAY_CONT_QUEEN => "queen_ray_continue" (Loop),
    S_PAWN_CAPTURE => "pawn_capture_possible" (Guard),
    S_PAWN_DOUBLE => "pawn_double_push" (Guard),
    S_PROMOTION => "pawn_promotes" (Guard),
    S_MOVE_IS_CAPTURE => "move_is_capture" (IfElse),
    S_ORDER_CMP => "move_order_insertion_cmp" (Search),
    S_BETA_CUTOFF => "beta_cutoff" (Search),
    S_ALPHA_IMPROVE => "alpha_improves" (Search),
    S_DEPTH_ZERO => "search_depth_exhausted" (Guard),
    S_STAND_PAT => "eval_stand_pat" (Search),
    S_MOVE_LOOP => "move_list_loop" (Loop),
    S_KING_CAPTURED => "king_captured" (Guard),
    S_EVAL_AHEAD => "eval_side_ahead" (IfElse),
    S_EVAL_PAWN_ADVANCED => "eval_pawn_advanced" (Guard),
    S_EVAL_IN_CENTER => "eval_piece_in_center" (IfElse),
    S_EVAL_KING_GUARDED => "eval_king_has_cover" (Guard),
    S_IN_CHECK => "side_in_check" (Guard),
    S_ATTACK_RAY => "attack_ray_scan" (Loop),
    S_QSEARCH_STANDPAT => "qsearch_stand_pat_cutoff" (Search),
    S_QSEARCH_CAPTURE => "qsearch_move_is_capture" (Guard),
    S_GAME_LOOP => "self_play_loop" (Loop),
}

/// Piece codes; positive = white, negative = black.
pub const EMPTY: i8 = 0;
/// Pawn.
pub const PAWN: i8 = 1;
/// Knight.
pub const KNIGHT: i8 = 2;
/// Bishop.
pub const BISHOP: i8 = 3;
/// Rook.
pub const ROOK: i8 = 4;
/// Queen.
pub const QUEEN: i8 = 5;
/// King.
pub const KING: i8 = 6;

const PIECE_VALUE: [i32; 7] = [0, 100, 320, 330, 500, 900, 20_000];

/// A chess position on a 0x88 board (`board[rank * 16 + file]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Board {
    squares: [i8; 128],
    /// side to move: +1 white, -1 black
    side: i8,
}

/// A move from one 0x88 square to another.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Move {
    from: u8,
    to: u8,
    captured: i8,
}

const KNIGHT_DELTAS: [i16; 8] = [31, 33, 14, 18, -31, -33, -14, -18];
const KING_DELTAS: [i16; 8] = [1, -1, 16, -16, 15, 17, -15, -17];
const BISHOP_DELTAS: [i16; 4] = [15, 17, -15, -17];
const ROOK_DELTAS: [i16; 4] = [1, -1, 16, -16];

impl Board {
    /// The standard chess starting position.
    pub fn initial() -> Self {
        let mut squares = [EMPTY; 128];
        let back = [ROOK, KNIGHT, BISHOP, QUEEN, KING, BISHOP, KNIGHT, ROOK];
        for (f, &p) in back.iter().enumerate() {
            squares[f] = p;
            squares[16 + f] = PAWN;
            squares[96 + f] = -PAWN;
            squares[112 + f] = -p;
        }
        Self { squares, side: 1 }
    }

    /// An endgame-like layout: kings plus `extra` random pieces scattered
    /// over the board. Sparse boards shift the occupancy/ray/capture branch
    /// mix drastically relative to the opening.
    pub fn endgame(extra: u32, rng: &mut Xoshiro256) -> Self {
        let mut squares = [EMPTY; 128];
        squares[4] = KING;
        squares[112 + 4] = -KING;
        let mut placed = 0;
        while placed < extra {
            let sq = (rng.below(8) * 16 + rng.below(8)) as usize;
            if squares[sq] != EMPTY {
                continue;
            }
            let kind = *rng.pick(&[PAWN, PAWN, PAWN, KNIGHT, BISHOP, ROOK, QUEEN]);
            let side = if placed % 2 == 0 { 1 } else { -1 };
            squares[sq] = kind * side;
            placed += 1;
        }
        Self { squares, side: 1 }
    }

    /// A modified layout: the standard position with `mutations` random
    /// piece removals/relocations (the paper's "modified ref input" crafty
    /// inputs). Kings are never touched.
    pub fn modified(mutations: u32, rng: &mut Xoshiro256) -> Self {
        let mut b = Self::initial();
        let mut done = 0;
        while done < mutations {
            let sq = (rng.below(8) * 16 + rng.below(8)) as usize;
            let p = b.squares[sq];
            if p == EMPTY || p.abs() == KING {
                continue;
            }
            if rng.chance(40) {
                b.squares[sq] = EMPTY; // remove
            } else {
                let dst = (rng.below(8) * 16 + rng.below(8)) as usize;
                if b.squares[dst] == EMPTY {
                    b.squares[dst] = p;
                    b.squares[sq] = EMPTY;
                }
            }
            done += 1;
        }
        b
    }

    #[inline]
    fn on_board(sq: i16) -> bool {
        (0..128).contains(&sq) && (sq & 0x88) == 0
    }

    /// Generates pseudo-legal moves for the side to move.
    pub fn generate_moves(&self, t: &mut dyn Tracer, out: &mut Vec<Move>) {
        out.clear();
        let side = self.side;
        for rank in 0..8 {
            for file in 0..8 {
                let from = rank * 16 + file;
                let p = self.squares[from];
                if br!(t, S_SQ_EMPTY, p == EMPTY) {
                    continue;
                }
                if !br!(t, S_OWN_PIECE, p.signum() == side) {
                    continue;
                }
                let kind = p.abs();
                if br!(t, S_IS_SLIDER, matches!(kind, BISHOP | ROOK | QUEEN)) {
                    // each slider kind is a distinct static branch in the
                    // original source, so each gets its own ray-loop site
                    let (deltas, ray_site): (&[i16], _) = match kind {
                        BISHOP => (&BISHOP_DELTAS, S_RAY_CONT_BISHOP),
                        ROOK => (&ROOK_DELTAS, S_RAY_CONT_ROOK),
                        _ => (&KING_DELTAS, S_RAY_CONT_QUEEN), // queen: all 8
                    };
                    for &d in deltas {
                        let mut to = from as i16 + d;
                        loop {
                            if !br!(t, S_SQ_ON_BOARD, Self::on_board(to)) {
                                break;
                            }
                            let target = self.squares[to as usize];
                            if target == EMPTY {
                                out.push(Move {
                                    from: from as u8,
                                    to: to as u8,
                                    captured: EMPTY,
                                });
                            } else {
                                if target.signum() != side {
                                    out.push(Move {
                                        from: from as u8,
                                        to: to as u8,
                                        captured: target,
                                    });
                                }
                                br!(t, ray_site, false);
                                break;
                            }
                            br!(t, ray_site, true);
                            to += d;
                        }
                    }
                } else if kind == KNIGHT || kind == KING {
                    let deltas: &[i16] = if kind == KNIGHT {
                        &KNIGHT_DELTAS
                    } else {
                        &KING_DELTAS
                    };
                    for &d in deltas {
                        let to = from as i16 + d;
                        if !br!(t, S_SQ_ON_BOARD, Self::on_board(to)) {
                            continue;
                        }
                        let target = self.squares[to as usize];
                        if target == EMPTY || target.signum() != side {
                            out.push(Move {
                                from: from as u8,
                                to: to as u8,
                                captured: target,
                            });
                        }
                    }
                } else {
                    // pawn
                    let fwd = 16 * side as i16;
                    let one = from as i16 + fwd;
                    if Self::on_board(one) && self.squares[one as usize] == EMPTY {
                        br!(
                            t,
                            S_PROMOTION,
                            one as usize / 16 == 7 || one as usize / 16 == 0
                        );
                        out.push(Move {
                            from: from as u8,
                            to: one as u8,
                            captured: EMPTY,
                        });
                        let start_rank = if side > 0 { 1 } else { 6 };
                        let two = one + fwd;
                        if br!(
                            t,
                            S_PAWN_DOUBLE,
                            rank as i16 == start_rank
                                && Self::on_board(two)
                                && self.squares[two as usize] == EMPTY
                        ) {
                            out.push(Move {
                                from: from as u8,
                                to: two as u8,
                                captured: EMPTY,
                            });
                        }
                    }
                    for d in [fwd - 1, fwd + 1] {
                        let to = from as i16 + d;
                        let capturable = Self::on_board(to)
                            && self.squares[to as usize] != EMPTY
                            && self.squares[to as usize].signum() != side;
                        if br!(t, S_PAWN_CAPTURE, capturable) {
                            out.push(Move {
                                from: from as u8,
                                to: to as u8,
                                captured: self.squares[to as usize],
                            });
                        }
                    }
                }
            }
        }
    }

    fn make(&mut self, m: Move) {
        let mut p = self.squares[m.from as usize];
        // auto-queen promotion
        let to_rank = m.to / 16;
        if p.abs() == PAWN && (to_rank == 7 || to_rank == 0) {
            p = QUEEN * p.signum();
        }
        self.squares[m.to as usize] = p;
        self.squares[m.from as usize] = EMPTY;
        self.side = -self.side;
    }

    fn unmake(&mut self, m: Move, was: i8) {
        self.squares[m.from as usize] = was;
        self.squares[m.to as usize] = m.captured;
        self.side = -self.side;
    }

    /// The side's king square, if present (kings can be captured in this
    /// pseudo-legal engine).
    pub fn king_square(&self, side: i8) -> Option<usize> {
        (0..8)
            .flat_map(|r| (0..8).map(move |f| r * 16 + f))
            .find(|&sq| self.squares[sq] == KING * side)
    }

    /// Whether `sq` is attacked by any piece of `by` — knight/king/pawn
    /// probes plus blocker-terminated sliding rays, as in crafty's
    /// `Attacked()`.
    pub fn is_attacked(&self, sq: usize, by: i8, t: &mut dyn Tracer) -> bool {
        for &d in &KNIGHT_DELTAS {
            let from = sq as i16 + d;
            if Self::on_board(from) && self.squares[from as usize] == KNIGHT * by {
                return true;
            }
        }
        for &d in &KING_DELTAS {
            let from = sq as i16 + d;
            if Self::on_board(from) && self.squares[from as usize] == KING * by {
                return true;
            }
        }
        // pawns attack diagonally toward their movement direction
        let pawn_back = -16 * by as i16;
        for d in [pawn_back - 1, pawn_back + 1] {
            let from = sq as i16 + d;
            if Self::on_board(from) && self.squares[from as usize] == PAWN * by {
                return true;
            }
        }
        // sliding rays: diagonal (bishop/queen) and straight (rook/queen)
        for (deltas, kinds) in [
            (&BISHOP_DELTAS, [BISHOP, QUEEN]),
            (&ROOK_DELTAS, [ROOK, QUEEN]),
        ] {
            for &d in deltas {
                let mut from = sq as i16 + d;
                loop {
                    if !Self::on_board(from) {
                        break;
                    }
                    let p = self.squares[from as usize];
                    if !br!(t, S_ATTACK_RAY, p == EMPTY) {
                        if p.signum() == by && kinds.contains(&p.abs()) {
                            return true;
                        }
                        break;
                    }
                    from += d;
                }
            }
        }
        false
    }

    /// Whether `side`'s king is attacked.
    pub fn in_check(&self, side: i8, t: &mut dyn Tracer) -> bool {
        match self.king_square(side) {
            Some(sq) => self.is_attacked(sq, -side, t),
            None => false,
        }
    }

    /// Material + positional evaluation from the side-to-move's
    /// perspective. The positional terms (pawn advancement, centralization,
    /// king cover) are the phase-sensitive branches real evaluation
    /// functions are full of: their outcome mix differs sharply between
    /// opening and endgame positions.
    pub fn evaluate(&self, t: &mut dyn Tracer) -> i32 {
        let mut score = 0i32;
        for rank in 0..8 {
            for file in 0..8 {
                let p = self.squares[rank * 16 + file];
                if p == EMPTY {
                    continue;
                }
                let sign = p.signum() as i32;
                score += PIECE_VALUE[p.unsigned_abs() as usize] * sign;
                match p.abs() {
                    PAWN => {
                        let advanced = if p > 0 { rank >= 4 } else { rank <= 3 };
                        if br!(t, S_EVAL_PAWN_ADVANCED, advanced) {
                            score += 12 * sign;
                        }
                    }
                    KING => {
                        // cover: any friendly piece on the three squares in
                        // front of the king
                        let fwd = if p > 0 { 1i32 } else { -1 };
                        let r2 = rank as i32 + fwd;
                        let mut covered = false;
                        if (0..8).contains(&r2) {
                            for df in -1i32..=1 {
                                let f2 = file as i32 + df;
                                if (0..8).contains(&f2)
                                    && self.squares[(r2 * 16 + f2) as usize].signum() == p.signum()
                                {
                                    covered = true;
                                }
                            }
                        }
                        if br!(t, S_EVAL_KING_GUARDED, covered) {
                            score += 20 * sign;
                        }
                    }
                    _ => {
                        let central = (2..6).contains(&rank) && (2..6).contains(&file);
                        if br!(t, S_EVAL_IN_CENTER, central) {
                            score += 8 * sign;
                        }
                    }
                }
            }
        }
        score * self.side as i32
    }
}

/// Capture-only quiescence search with stand-pat, as real engines run at
/// the horizon to avoid evaluating mid-exchange positions.
fn quiesce(
    board: &mut Board,
    mut alpha: i32,
    beta: i32,
    qdepth: u32,
    t: &mut dyn Tracer,
    nodes: &mut u64,
) -> i32 {
    *nodes += 1;
    let stand_pat = board.evaluate(t);
    br!(t, S_EVAL_AHEAD, stand_pat > 0);
    if br!(t, S_QSEARCH_STANDPAT, stand_pat >= beta) || qdepth == 0 {
        return stand_pat;
    }
    if stand_pat > alpha {
        alpha = stand_pat;
    }
    let mut moves = Vec::with_capacity(48);
    board.generate_moves(t, &mut moves);
    for m in moves {
        if !br!(t, S_QSEARCH_CAPTURE, m.captured != EMPTY) {
            continue;
        }
        if m.captured.abs() == KING {
            return 900_000;
        }
        let was = board.squares[m.from as usize];
        board.make(m);
        let score = -quiesce(board, -beta, -alpha, qdepth - 1, t, nodes);
        board.unmake(m, was);
        if score > alpha {
            alpha = score;
        }
        if alpha >= beta {
            break;
        }
    }
    alpha
}

/// Alpha-beta search; returns `(score, best move)`.
pub fn search(
    board: &mut Board,
    depth: u32,
    mut alpha: i32,
    beta: i32,
    t: &mut dyn Tracer,
    nodes: &mut u64,
) -> (i32, Option<Move>) {
    *nodes += 1;
    if br!(t, S_DEPTH_ZERO, depth == 0) {
        let score = quiesce(board, alpha, beta, 2, t, nodes);
        br!(t, S_STAND_PAT, score >= beta);
        return (score, None);
    }
    br!(t, S_IN_CHECK, board.in_check(board.side, t));
    let mut moves = Vec::with_capacity(48);
    board.generate_moves(t, &mut moves);
    // capture-first ordering via insertion sort, as real engines do — its
    // comparison branch is hot and data-dependent
    for i in 1..moves.len() {
        let m = moves[i];
        let key = PIECE_VALUE[m.captured.unsigned_abs() as usize];
        let mut j = i;
        while br!(
            t,
            S_ORDER_CMP,
            j > 0 && PIECE_VALUE[moves[j - 1].captured.unsigned_abs() as usize] < key
        ) {
            moves[j] = moves[j - 1];
            j -= 1;
        }
        moves[j] = m;
    }
    let mut best = None;
    let mut best_score = -1_000_000;
    let mut i = 0usize;
    while br!(t, S_MOVE_LOOP, i < moves.len()) {
        let m = moves[i];
        i += 1;
        br!(t, S_MOVE_IS_CAPTURE, m.captured != EMPTY);
        if br!(t, S_KING_CAPTURED, m.captured.abs() == KING) {
            return (900_000 + depth as i32, Some(m));
        }
        let was = board.squares[m.from as usize];
        board.make(m);
        let (s, _) = search(board, depth - 1, -beta, -alpha, t, nodes);
        let score = -s;
        board.unmake(m, was);
        if score > best_score {
            best_score = score;
            best = Some(m);
        }
        if br!(t, S_ALPHA_IMPROVE, score > alpha) {
            alpha = score;
        }
        if br!(t, S_BETA_CUTOFF, alpha >= beta) {
            break;
        }
    }
    if best.is_none() {
        // stalemate/no moves: evaluate statically
        return (board.evaluate(t), None);
    }
    (best_score, best)
}

/// The crafty-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct CraftyWorkload {
    scale: Scale,
}

impl CraftyWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for CraftyWorkload {
    fn name(&self) -> &'static str {
        "crafty"
    }

    fn description(&self) -> &'static str {
        "chess move generation + alpha-beta search (self-play)"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = total plies of self-play (12 per game); level = search
        // depth; variant = position flavour: 0 standard, 1..=30 mutation
        // count, 99 mixed opening/middlegame/endgame, 100+k endgame with k
        // extra pieces
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 8] = [
            ("train", "standard opening games", 501, 36, 3, 0),
            (
                "ref",
                "position file mixing all game phases",
                502,
                430,
                3,
                99,
            ),
            (
                "ext-1",
                "modified ref input (light mutation)",
                503,
                48,
                3,
                3,
            ),
            ("ext-2", "endgame positions (12 pieces)", 504, 48, 3, 110),
            (
                "ext-3",
                "modified ref input (heavy mutation)",
                505,
                48,
                3,
                12,
            ),
            ("ext-4", "endgame positions (6 pieces)", 506, 60, 3, 104),
            ("ext-5", "modified train (few mutations)", 507, 40, 3, 6),
            ("ext-6", "modified ref input (mid mutation)", 508, 48, 3, 9),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        // A run is a series of games of 12 plies each, like crafty working
        // through a test-position file: the first game starts from the
        // standard (or lightly mutated) layout; later games start from
        // increasingly mutated layouts drawn from the input's seed.
        const PLIES_PER_GAME: u64 = 12;
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let games = input.size.div_ceil(PLIES_PER_GAME).max(1);
        let mut nodes = 0u64;
        for game in 0..games {
            let mut board = match input.variant {
                0 if game == 0 => Board::initial(),
                0 => Board::modified(1 + game as u32 % 3, &mut rng),
                v @ 1..=30 => Board::modified(v + game as u32 % 5, &mut rng),
                // the "position file" input leans heavily on endgame
                // positions, as tactical test suites do — openings are the
                // *train* input's territory
                99 => match game % 4 {
                    3 => Board::modified(14 + game as u32 % 6, &mut rng),
                    _ => Board::endgame(5 + (game as u32 % 7) * 2, &mut rng),
                },
                v => Board::endgame((v - 100).max(2) + game as u32 % 4, &mut rng),
            };
            let mut ply = 0u64;
            while br!(t, S_GAME_LOOP, ply < PLIES_PER_GAME) {
                ply += 1;
                let (score, best) = search(
                    &mut board,
                    input.level as u32,
                    -1_000_000,
                    1_000_000,
                    t,
                    &mut nodes,
                );
                match best {
                    Some(m) if score.abs() < 800_000 => board.make(m),
                    _ => break, // game over (king capture found or no moves)
                }
            }
        }
        std::hint::black_box(nodes);
    }

    fn instructions_per_branch(&self) -> f64 {
        6.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    #[test]
    fn initial_position_has_twenty_moves() {
        let b = Board::initial();
        let mut moves = Vec::new();
        b.generate_moves(&mut NullTracer, &mut moves);
        assert_eq!(moves.len(), 20, "16 pawn moves + 4 knight moves");
    }

    #[test]
    fn initial_material_is_balanced() {
        assert_eq!(
            Board::initial().evaluate(&mut NullTracer),
            0,
            "symmetric position: material and positional terms cancel"
        );
    }

    #[test]
    fn capture_is_recorded_and_reversible() {
        let mut b = Board::initial();
        // put a black pawn where the white queen can take it
        b.squares[3 + 16 * 2] = -PAWN; // d3
        let mut moves = Vec::new();
        b.generate_moves(&mut NullTracer, &mut moves);
        let cap = moves
            .iter()
            .find(|m| m.captured == -PAWN)
            .copied()
            .expect("a capture of the d3 pawn exists");
        let before = b.clone();
        let was = b.squares[cap.from as usize];
        b.make(cap);
        assert_eq!(b.side, -1);
        b.unmake(cap, was);
        assert_eq!(b, before, "make/unmake must round-trip");
    }

    #[test]
    fn search_prefers_material_win() {
        // White queen can capture an undefended black rook.
        let mut b = Board::initial();
        b.squares[16 * 4 + 3] = -ROOK; // black rook on d5
        b.squares[16 * 3 + 3] = QUEEN; // white queen on d4
        let mut nodes = 0;
        let (_score, best) = search(
            &mut b,
            2,
            -1_000_000,
            1_000_000,
            &mut NullTracer,
            &mut nodes,
        );
        let m = best.unwrap();
        assert_eq!(m.captured, -ROOK, "queen should grab the rook: {m:?}");
    }

    #[test]
    fn deeper_search_visits_more_nodes() {
        let mut nodes2 = 0;
        let mut nodes4 = 0;
        let mut b = Board::initial();
        search(
            &mut b,
            2,
            -1_000_000,
            1_000_000,
            &mut NullTracer,
            &mut nodes2,
        );
        let mut b = Board::initial();
        search(
            &mut b,
            4,
            -1_000_000,
            1_000_000,
            &mut NullTracer,
            &mut nodes4,
        );
        assert!(nodes4 > nodes2 * 10, "{nodes2} vs {nodes4}");
    }

    #[test]
    fn modified_boards_differ_and_keep_kings() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let m = Board::modified(10, &mut rng);
        assert_ne!(m, Board::initial());
        let kings: i32 = (0..8)
            .flat_map(|r| (0..8).map(move |f| (r, f)))
            .map(|(r, f)| (m.squares[r * 16 + f].abs() == KING) as i32)
            .sum();
        assert_eq!(kings, 2);
    }

    #[test]
    fn on_board_rejects_0x88_offboard() {
        assert!(Board::on_board(0));
        assert!(Board::on_board(0x77));
        assert!(!Board::on_board(0x08));
        assert!(!Board::on_board(-1));
        assert!(!Board::on_board(128));
    }

    #[test]
    fn check_detection_works() {
        let t = &mut NullTracer;
        let mut b = Board::initial();
        assert!(!b.in_check(1, t), "starting position is quiet");
        assert!(!b.in_check(-1, t));
        // plant a black rook on the white king's file with a clear path
        b.squares[16 + 4] = EMPTY; // remove e2 pawn
        b.squares[16 * 4 + 4] = -ROOK; // black rook e5
        assert!(b.in_check(1, t), "rook attacks the king down the file");
        assert!(!b.in_check(-1, t));
        // interpose a piece: no longer check
        b.squares[16 * 2 + 4] = KNIGHT;
        assert!(!b.in_check(1, t), "blocker cancels the ray");
    }

    #[test]
    fn knight_and_pawn_checks() {
        let t = &mut NullTracer;
        let mut b = Board::initial();
        b.squares[16 * 2 + 3] = -KNIGHT; // d3 knight forks e1
        assert!(b.in_check(1, t), "knight check");
        b.squares[16 * 2 + 3] = EMPTY;
        b.squares[16 + 3] = -PAWN; // black pawn d2 attacks e1
        assert!(b.in_check(1, t), "pawn check");
    }

    #[test]
    fn quiescence_resolves_hanging_exchanges() {
        // a queen en prise: the horizon eval would count it as material,
        // quiescence must see it is immediately lost
        let t = &mut NullTracer;
        let mut b = Board {
            squares: [EMPTY; 128],
            side: -1, // black to move
        };
        b.squares[4] = KING; // white king e1
        b.squares[112 + 4] = -KING; // black king e8
        b.squares[16 * 3 + 3] = QUEEN; // white queen d4
        b.squares[16 * 5 + 5] = -BISHOP; // black bishop f6 attacks d4
        let mut nodes = 0;
        let static_eval = b.evaluate(t);
        let q = quiesce(&mut b, -1_000_000, 1_000_000, 3, t, &mut nodes);
        // statically black is down queen-vs-bishop (~ -570); after the
        // quiescence capture only black's bishop remains (~ +330)
        assert!(static_eval < -400, "static {static_eval}");
        assert!(q > 200, "quiescence should take the queen: {q}");
        assert!(
            q > static_eval + 700,
            "the capture must swing the score: {static_eval} -> {q}"
        );
    }

    #[test]
    fn self_play_terminates_and_is_deterministic() {
        let w = CraftyWorkload::new(Scale::Tiny);
        let input = w.input_set("train").unwrap();
        let mut a = btrace::RecordingTracer::new(SITES.len());
        w.run(&input, &mut a);
        let mut b = btrace::RecordingTracer::new(SITES.len());
        w.run(&input, &mut b);
        assert_eq!(a.trace(), b.trace());
    }
}
