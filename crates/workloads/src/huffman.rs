//! Canonical Huffman coding with a real bitstream — the entropy-coding
//! substrate shared by the compression workloads' byte-level formats.
//!
//! [`bzip2w`](crate::bzip2w)'s profiled pipeline *models* output sizes from
//! code lengths (matching how the paper's benchmarks are profiled, where the
//! bit-packing contributes no interesting branches); this module supplies
//! the missing last mile so compressed blocks can round-trip through actual
//! bytes: length-limited canonical codes, an LSB-first bit writer/reader,
//! and symbol-stream encode/decode.

/// Maximum code length supported by the canonical coder.
pub const MAX_CODE_LEN: u8 = 20;

/// Errors from decoding a Huffman bitstream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HuffmanError {
    /// The bitstream ended inside a codeword.
    Truncated,
    /// A decoded codeword does not map to any symbol.
    InvalidCode,
    /// The supplied code lengths are not a valid (sub-)Kraft set.
    InvalidLengths,
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HuffmanError::Truncated => "bitstream ended inside a codeword",
            HuffmanError::InvalidCode => "codeword maps to no symbol",
            HuffmanError::InvalidLengths => "code lengths violate the Kraft inequality",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HuffmanError {}

/// Computes Huffman code lengths from symbol frequencies (two-queue
/// algorithm), capped at [`MAX_CODE_LEN`] by flattening over-long codes.
/// Symbols with zero frequency get length 0 (no code).
pub fn code_lengths(freq: &[u64]) -> Vec<u8> {
    #[derive(Clone)]
    struct Node {
        weight: u64,
        symbols: Vec<usize>,
    }
    let mut leaves: Vec<Node> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| Node {
            weight: f,
            symbols: vec![s],
        })
        .collect();
    let mut lengths = vec![0u8; freq.len()];
    match leaves.len() {
        0 => return lengths,
        1 => {
            lengths[leaves[0].symbols[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    leaves.sort_by_key(|n| n.weight);
    let mut leaf_q: std::collections::VecDeque<Node> = leaves.into();
    let mut merged: std::collections::VecDeque<Node> = std::collections::VecDeque::new();
    let take = |leaf_q: &mut std::collections::VecDeque<Node>,
                merged: &mut std::collections::VecDeque<Node>|
     -> Node {
        match (leaf_q.front(), merged.front()) {
            (Some(l), Some(m)) if l.weight <= m.weight => leaf_q.pop_front(),
            (Some(_), None) => leaf_q.pop_front(),
            _ => merged.pop_front(),
        }
        .expect("one queue is non-empty")
    };
    while leaf_q.len() + merged.len() > 1 {
        let a = take(&mut leaf_q, &mut merged);
        let b = take(&mut leaf_q, &mut merged);
        for &s in a.symbols.iter().chain(&b.symbols) {
            lengths[s] += 1;
        }
        let mut symbols = a.symbols;
        symbols.extend(b.symbols);
        merged.push_back(Node {
            weight: a.weight + b.weight,
            symbols,
        });
    }
    // cap pathological depths (very skewed distributions): flatten anything
    // beyond MAX_CODE_LEN; the result stays prefix-decodable because we
    // re-derive canonical codes from lengths after adjusting to Kraft
    if lengths.iter().any(|&l| l > MAX_CODE_LEN) {
        for l in lengths.iter_mut() {
            if *l > MAX_CODE_LEN {
                *l = MAX_CODE_LEN;
            }
        }
        // restore Kraft validity by lengthening the shallowest codes
        loop {
            let kraft: u64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 1u64 << (MAX_CODE_LEN - l))
                .sum();
            if kraft <= 1u64 << MAX_CODE_LEN {
                break;
            }
            let idx = (0..lengths.len())
                .filter(|&i| lengths[i] > 0 && lengths[i] < MAX_CODE_LEN)
                .min_by_key(|&i| lengths[i])
                .expect("some code can be lengthened");
            lengths[idx] += 1;
        }
    }
    lengths
}

/// Canonical codes derived from lengths: `codes[s]` holds the codeword for
/// symbol `s` (written MSB-first by [`BitWriter`]).
///
/// # Errors
///
/// [`HuffmanError::InvalidLengths`] if the lengths over-subscribe the code
/// space.
pub fn canonical_codes(lengths: &[u8]) -> Result<Vec<u32>, HuffmanError> {
    let max_len = lengths.iter().copied().max().unwrap_or(0);
    if max_len == 0 {
        return Ok(vec![0; lengths.len()]);
    }
    if max_len > MAX_CODE_LEN {
        return Err(HuffmanError::InvalidLengths);
    }
    let mut count = vec![0u32; max_len as usize + 1];
    for &l in lengths {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    // Kraft check
    let kraft: u64 = (1..=max_len as usize)
        .map(|l| (count[l] as u64) << (max_len as usize - l))
        .sum();
    if kraft > 1u64 << max_len {
        return Err(HuffmanError::InvalidLengths);
    }
    let mut next = vec![0u32; max_len as usize + 1];
    let mut code = 0u32;
    for l in 1..=max_len as usize {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    Ok(lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                c
            }
        })
        .collect())
}

/// MSB-first bit writer (canonical codes are prefix codes in MSB order).
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `len` bits of `code`, MSB first.
    pub fn write(&mut self, code: u32, len: u8) {
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.bit_pos as usize
        }
    }

    /// Finishes and returns the padded byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::Truncated`] at end of input.
    pub fn read_bit(&mut self) -> Result<u32, HuffmanError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(HuffmanError::Truncated);
        }
        let bit = (self.bytes[byte] >> (7 - self.pos % 8)) & 1;
        self.pos += 1;
        Ok(bit as u32)
    }
}

/// An encoder/decoder pair for one symbol alphabet.
#[derive(Clone, Debug)]
pub struct Codec {
    lengths: Vec<u8>,
    codes: Vec<u32>,
}

impl Codec {
    /// Builds a codec from symbol frequencies.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::InvalidLengths`] if code construction fails (cannot
    /// happen for frequencies produced by counting).
    pub fn from_frequencies(freq: &[u64]) -> Result<Self, HuffmanError> {
        let lengths = code_lengths(freq);
        let codes = canonical_codes(&lengths)?;
        Ok(Self { lengths, codes })
    }

    /// Builds a codec from already-computed lengths and codes (for decoding
    /// a stream whose lengths were transmitted in a container header).
    pub fn from_parts(lengths: Vec<u8>, codes: Vec<u32>) -> Self {
        Self { lengths, codes }
    }

    /// The code length of `symbol` (0 = no code).
    pub fn length(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }

    /// Encodes `symbols` into `w`.
    ///
    /// # Panics
    ///
    /// Panics if a symbol has no code (zero training frequency).
    pub fn encode(&self, symbols: &[u16], w: &mut BitWriter) {
        for &s in symbols {
            let len = self.lengths[s as usize];
            assert!(len > 0, "symbol {s} has no code");
            w.write(self.codes[s as usize], len);
        }
    }

    /// Decodes `count` symbols from `r` by walking the canonical code space.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::Truncated`] or [`HuffmanError::InvalidCode`] on
    /// malformed input.
    pub fn decode(&self, r: &mut BitReader<'_>, count: usize) -> Result<Vec<u16>, HuffmanError> {
        // (length, code) -> symbol lookup
        let mut by_len: Vec<Vec<(u32, u16)>> = vec![Vec::new(); MAX_CODE_LEN as usize + 1];
        for (s, (&l, &c)) in self.lengths.iter().zip(&self.codes).enumerate() {
            if l > 0 {
                by_len[l as usize].push((c, s as u16));
            }
        }
        for v in by_len.iter_mut() {
            v.sort_unstable();
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let mut code = 0u32;
            let mut len = 0u8;
            loop {
                code = (code << 1) | r.read_bit()?;
                len += 1;
                if len > MAX_CODE_LEN {
                    return Err(HuffmanError::InvalidCode);
                }
                if let Ok(idx) = by_len[len as usize].binary_search_by_key(&code, |&(c, _)| c) {
                    out.push(by_len[len as usize][idx].1);
                    break;
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn freq_of(symbols: &[u16], alphabet: usize) -> Vec<u64> {
        let mut f = vec![0u64; alphabet];
        for &s in symbols {
            f[s as usize] += 1;
        }
        f
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let symbols: Vec<u16> = (0..20_000)
            .map(|_| {
                // zipf-ish: mostly small symbols
                let r = rng.below(100);
                if r < 60 {
                    rng.below(4) as u16
                } else if r < 90 {
                    rng.below(32) as u16
                } else {
                    rng.below(258) as u16
                }
            })
            .collect();
        let codec = Codec::from_frequencies(&freq_of(&symbols, 258)).unwrap();
        let mut w = BitWriter::new();
        codec.encode(&symbols, &mut w);
        let bits = w.bit_len();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let back = codec.decode(&mut r, symbols.len()).unwrap();
        assert_eq!(back, symbols);
        // entropy coding must beat the 9-bit fixed-width baseline
        assert!(
            bits < symbols.len() * 9,
            "{bits} bits for {} symbols",
            symbols.len()
        );
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freq = [40u64, 30, 15, 10, 3, 1, 1];
        let lengths = code_lengths(&freq);
        let codes = canonical_codes(&lengths).unwrap();
        for i in 0..freq.len() {
            for j in 0..freq.len() {
                if i == j || lengths[i] == 0 || lengths[j] == 0 {
                    continue;
                }
                if lengths[i] <= lengths[j] {
                    let shifted = codes[j] >> (lengths[j] - lengths[i]);
                    assert!(shifted != codes[i], "code {i} is a prefix of code {j}");
                }
            }
        }
    }

    #[test]
    fn shorter_codes_for_frequent_symbols() {
        let freq = [1000u64, 100, 10, 1];
        let lengths = code_lengths(&freq);
        assert!(lengths[0] <= lengths[1]);
        assert!(lengths[1] <= lengths[2]);
        assert!(lengths[2] <= lengths[3]);
    }

    #[test]
    fn single_symbol_alphabet() {
        let freq = [0u64, 7, 0];
        let codec = Codec::from_frequencies(&freq).unwrap();
        assert_eq!(codec.length(1), 1);
        let symbols = vec![1u16; 50];
        let mut w = BitWriter::new();
        codec.encode(&symbols, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(codec.decode(&mut r, 50).unwrap(), symbols);
    }

    #[test]
    fn pathological_fibonacci_weights_stay_within_cap() {
        // Fibonacci-ish weights force maximal depth in an uncapped Huffman
        let mut freq = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freq.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = code_lengths(&freq);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        // and the capped lengths still decode
        let codec = Codec {
            codes: canonical_codes(&lengths).unwrap(),
            lengths,
        };
        let symbols: Vec<u16> = (0..40u16).collect();
        let mut w = BitWriter::new();
        codec.encode(&symbols, &mut w);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(codec.decode(&mut r, 40).unwrap(), symbols);
    }

    #[test]
    fn truncated_stream_is_detected() {
        let freq = [10u64, 10, 10, 10];
        let codec = Codec::from_frequencies(&freq).unwrap();
        let symbols = vec![0u16, 1, 2, 3, 0, 1];
        let mut w = BitWriter::new();
        codec.encode(&symbols, &mut w);
        let mut bytes = w.into_bytes();
        bytes.pop();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            codec.decode(&mut r, symbols.len()),
            Err(HuffmanError::Truncated)
        ));
    }

    #[test]
    fn invalid_lengths_rejected() {
        // three codes of length 1 over-subscribe the space
        assert_eq!(
            canonical_codes(&[1, 1, 1]),
            Err(HuffmanError::InvalidLengths)
        );
        assert!(canonical_codes(&[1, 2, 2]).is_ok());
        assert_eq!(
            canonical_codes(&[MAX_CODE_LEN + 1]),
            Err(HuffmanError::InvalidLengths)
        );
    }

    #[test]
    fn bit_writer_reader_agree_on_raw_bits() {
        let mut w = BitWriter::new();
        w.write(0b1011, 4);
        w.write(0b0, 1);
        w.write(0b111111111, 9);
        assert_eq!(w.bit_len(), 14);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut got = 0u32;
        for _ in 0..14 {
            got = (got << 1) | r.read_bit().unwrap();
        }
        assert_eq!(got, 0b10_1101_1111_1111);
    }

    #[test]
    fn error_display() {
        assert!(HuffmanError::Truncated.to_string().contains("ended"));
        assert!(HuffmanError::InvalidCode.to_string().contains("no symbol"));
        assert!(HuffmanError::InvalidLengths.to_string().contains("Kraft"));
    }
}
