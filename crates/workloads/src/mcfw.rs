//! `mcf` analogue: minimum-cost flow on generated transport networks.
//!
//! Successive shortest augmenting paths with an SPFA (queue-based
//! Bellman–Ford) distance computation over the residual network — the same
//! algorithmic skeleton as SPEC mcf's network simplex in terms of branch
//! structure: relaxation tests, residual-capacity guards, and queue
//! membership checks whose behaviour tracks the network's size, topology and
//! cost distribution.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};
use std::collections::VecDeque;

declare_sites! {
    S_SSP_ROUND => "shortest_path_round" (Loop),
    S_QUEUE_LOOP => "spfa_queue_loop" (Loop),
    S_ARC_LOOP => "arc_scan_loop" (Loop),
    S_CAP_POS => "residual_capacity_positive" (Guard),
    S_RELAX => "distance_relaxation" (Search),
    S_IN_QUEUE => "node_already_queued" (Guard),
    S_SINK_REACHED => "sink_reachable" (Guard),
    S_AUGMENT_LOOP => "augment_path_walk" (Loop),
    S_BOTTLENECK => "bottleneck_tightens" (Search),
    S_ARC_FORWARD => "arc_is_forward" (IfElse),
    S_DIST_SET => "node_distance_known" (Guard),
    S_COST_ZERO => "arc_cost_is_zero" (TypeCheck),
}

/// A directed arc with capacity and cost; arcs are stored with their
/// residual twins (`arc ^ 1` is the reverse arc).
#[derive(Clone, Copy, Debug)]
struct Arc {
    to: u32,
    cap: i64,
    cost: i64,
}

/// A flow network in adjacency-list form.
#[derive(Clone, Debug)]
pub struct Network {
    arcs: Vec<Arc>,
    adj: Vec<Vec<u32>>,
    source: u32,
    sink: u32,
}

impl Network {
    fn add_arc(&mut self, from: u32, to: u32, cap: i64, cost: i64) {
        let id = self.arcs.len() as u32;
        self.arcs.push(Arc { to, cap, cost });
        self.arcs.push(Arc {
            to: from,
            cap: 0,
            cost: -cost,
        });
        self.adj[from as usize].push(id);
        self.adj[to as usize].push(id + 1);
    }

    /// Generates a layered transport network: `layers` layers of `width`
    /// nodes, arcs between adjacent layers plus `shortcut_pct`% skip arcs,
    /// costs in `[1, cost_range]`.
    pub fn generate(
        layers: usize,
        width: usize,
        shortcut_pct: u64,
        cost_range: i64,
        rng: &mut Xoshiro256,
    ) -> Self {
        assert!(layers >= 2 && width >= 1, "need at least 2 layers");
        let n = layers * width + 2;
        let source = 0u32;
        let sink = (n - 1) as u32;
        let mut net = Self {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            source,
            sink,
        };
        let node = |l: usize, w: usize| (1 + l * width + w) as u32;
        for w in 0..width {
            net.add_arc(source, node(0, w), 2 + rng.below(6) as i64, 0);
            net.add_arc(node(layers - 1, w), sink, 2 + rng.below(6) as i64, 0);
        }
        for l in 0..layers - 1 {
            for w in 0..width {
                // arcs to a few nodes in the next layer
                let fan = 2 + rng.below(3) as usize;
                for _ in 0..fan {
                    let dst = rng.below(width as u64) as usize;
                    net.add_arc(
                        node(l, w),
                        node(l + 1, dst),
                        1 + rng.below(8) as i64,
                        1 + rng.below(cost_range as u64) as i64,
                    );
                }
                // occasional long skip arc
                if l + 2 < layers && rng.chance(shortcut_pct) {
                    let dst = rng.below(width as u64) as usize;
                    net.add_arc(
                        node(l, w),
                        node(l + 2, dst),
                        1 + rng.below(4) as i64,
                        1 + rng.below((cost_range * 2) as u64) as i64,
                    );
                }
            }
        }
        net
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }
}

/// Result of a min-cost-flow computation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowResult {
    /// Total flow pushed from source to sink.
    pub flow: i64,
    /// Total cost of that flow.
    pub cost: i64,
}

/// Runs successive-shortest-path min-cost max-flow, tracing branches.
pub fn min_cost_flow(net: &Network, t: &mut dyn Tracer) -> FlowResult {
    let n = net.num_nodes();
    let mut cap: Vec<i64> = net.arcs.iter().map(|a| a.cap).collect();
    let mut result = FlowResult::default();
    loop {
        // SPFA from source on the residual network
        let mut dist = vec![i64::MAX; n];
        let mut in_queue = vec![false; n];
        let mut pred: Vec<i32> = vec![-1; n];
        dist[net.source as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(net.source);
        in_queue[net.source as usize] = true;
        while br!(t, S_QUEUE_LOOP, !queue.is_empty()) {
            let u = queue.pop_front().expect("guarded") as usize;
            in_queue[u] = false;
            let mut ai = 0usize;
            while br!(t, S_ARC_LOOP, ai < net.adj[u].len()) {
                let aid = net.adj[u][ai] as usize;
                ai += 1;
                br!(t, S_ARC_FORWARD, aid.is_multiple_of(2));
                if !br!(t, S_CAP_POS, cap[aid] > 0) {
                    continue;
                }
                let arc = net.arcs[aid];
                let v = arc.to as usize;
                br!(t, S_COST_ZERO, arc.cost == 0);
                br!(t, S_DIST_SET, dist[v] != i64::MAX);
                let nd = dist[u].saturating_add(arc.cost);
                if br!(t, S_RELAX, nd < dist[v]) {
                    dist[v] = nd;
                    pred[v] = aid as i32;
                    if !br!(t, S_IN_QUEUE, in_queue[v]) {
                        in_queue[v] = true;
                        queue.push_back(v as u32);
                    }
                }
            }
        }
        if !br!(t, S_SINK_REACHED, dist[net.sink as usize] != i64::MAX) {
            break;
        }
        // walk predecessors to find the bottleneck, then augment
        let mut bottleneck = i64::MAX;
        let mut v = net.sink as usize;
        while br!(t, S_AUGMENT_LOOP, v != net.source as usize) {
            let aid = pred[v] as usize;
            if br!(t, S_BOTTLENECK, cap[aid] < bottleneck) {
                bottleneck = cap[aid];
            }
            v = net.arcs[aid ^ 1].to as usize;
        }
        let mut v = net.sink as usize;
        while v != net.source as usize {
            let aid = pred[v] as usize;
            cap[aid] -= bottleneck;
            cap[aid ^ 1] += bottleneck;
            v = net.arcs[aid ^ 1].to as usize;
        }
        result.flow += bottleneck;
        result.cost += bottleneck * dist[net.sink as usize];
        br!(t, S_SSP_ROUND, true);
    }
    br!(t, S_SSP_ROUND, false);
    result
}

/// The mcf-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct McfWorkload {
    scale: Scale,
}

impl McfWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for McfWorkload {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn description(&self) -> &'static str {
        "min-cost flow via successive shortest augmenting paths"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = instances x 1000; level = layers;
        // variant = (width << 16) | (shortcut_pct << 8) | cost_range
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "small networks, low cost spread",
                701,
                9_000,
                12,
                (10 << 16) | (20 << 8) | 10,
            ),
            (
                "ref",
                "large networks, wide cost spread",
                702,
                16_000,
                20,
                (14 << 16) | (35 << 8) | 60,
            ),
            (
                "ext-1",
                "deep narrow networks",
                703,
                11_000,
                30,
                (6 << 16) | (10 << 8) | 25,
            ),
            (
                "ext-2",
                "shallow wide networks",
                704,
                12_000,
                6,
                (24 << 16) | (50 << 8) | 15,
            ),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let width = (input.variant >> 16) as usize;
        let layers = input.level as usize;
        let shortcut = ((input.variant >> 8) & 0xFF) as u64;
        let cost_range = (input.variant & 0xFF) as i64;
        // solve a series of instances, as SPEC mcf re-optimizes timetables
        let instances = (input.size / 1000).max(1);
        let mut total = FlowResult::default();
        for _ in 0..instances {
            let net = Network::generate(layers, width, shortcut, cost_range, &mut rng);
            let r = min_cost_flow(&net, t);
            total.flow += r.flow;
            total.cost += r.cost;
        }
        std::hint::black_box(total);
    }

    fn instructions_per_branch(&self) -> f64 {
        7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    /// Hand-checkable diamond network.
    fn diamond() -> Network {
        //      1
        //   /     \
        // 0         3
        //   \     /
        //      2
        let mut net = Network {
            arcs: Vec::new(),
            adj: vec![Vec::new(); 4],
            source: 0,
            sink: 3,
        };
        net.add_arc(0, 1, 2, 1); // cheap, cap 2
        net.add_arc(0, 2, 2, 4); // pricey, cap 2
        net.add_arc(1, 3, 2, 1);
        net.add_arc(2, 3, 2, 1);
        net
    }

    #[test]
    fn diamond_flow_and_cost() {
        let r = min_cost_flow(&diamond(), &mut NullTracer);
        assert_eq!(r.flow, 4);
        // 2 units over 0-1-3 at cost 2 each, 2 units over 0-2-3 at cost 5
        assert_eq!(r.cost, 2 * 2 + 2 * 5);
    }

    #[test]
    fn disconnected_network_pushes_nothing() {
        let mut net = Network {
            arcs: Vec::new(),
            adj: vec![Vec::new(); 3],
            source: 0,
            sink: 2,
        };
        net.add_arc(0, 1, 5, 1); // no arc reaches the sink
        let r = min_cost_flow(&net, &mut NullTracer);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn cheaper_path_saturates_first() {
        // With unit capacities, the cheapest path must carry the first unit.
        let mut net = Network {
            arcs: Vec::new(),
            adj: vec![Vec::new(); 4],
            source: 0,
            sink: 3,
        };
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 3, 1, 1);
        net.add_arc(0, 2, 1, 10);
        net.add_arc(2, 3, 1, 10);
        let r = min_cost_flow(&net, &mut NullTracer);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 2 + 20);
    }

    #[test]
    fn generated_networks_have_positive_flow() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let net = Network::generate(6, 8, 25, 20, &mut rng);
        let r = min_cost_flow(&net, &mut NullTracer);
        assert!(r.flow > 0, "layered network must be connected");
        assert!(r.cost >= r.flow, "every interior arc costs at least 1");
    }

    #[test]
    fn flow_conservation_via_rerun_determinism() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        let net = Network::generate(5, 6, 30, 15, &mut rng);
        let a = min_cost_flow(&net, &mut NullTracer);
        let b = min_cost_flow(&net, &mut NullTracer);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 2 layers")]
    fn generate_rejects_degenerate() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let _ = Network::generate(1, 4, 10, 5, &mut rng);
    }
}
