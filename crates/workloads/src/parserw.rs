//! `parser` analogue: a dictionary-driven natural-language parser.
//!
//! Tokenizes generated English-like sentences, looks each word up in a
//! dictionary of word classes, and parses with a backtracking recursive
//! descent over a small phrase grammar (S → NP VP, NP → Det? Adj* N | Pron,
//! VP → V NP? PP*, PP → P NP). Dictionary coverage and sentence structure
//! differ per input set, shifting the lookup-miss and backtracking branches.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_SENT_LOOP => "sentence_loop" (Loop),
    S_TOKEN_LOOP => "token_scan_loop" (Loop),
    S_DICT_PROBE => "dict_probe_mismatch" (Search),
    S_KNOWN_WORD => "word_in_dictionary" (Guard),
    S_SUFFIX_S => "unknown_suffix_s" (IfElse),
    S_CLASS_NOUN => "class_is_noun" (TypeCheck),
    S_CLASS_VERB => "class_is_verb" (TypeCheck),
    S_TRY_DET => "np_has_determiner" (Search),
    S_ADJ_LOOP => "np_adjective_loop" (Loop),
    S_VP_HAS_OBJ => "vp_has_object" (Search),
    S_PP_LOOP => "vp_pp_loop" (Loop),
    S_BACKTRACK => "parse_backtracks" (Search),
    S_PARSE_OK => "sentence_parses" (Guard),
    S_NP_PRONOUN => "np_is_pronoun" (TypeCheck),
    S_SENT_LONG => "sentence_is_long" (IfElse),
}

/// Word classes of the toy grammar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WordClass {
    /// Noun.
    Noun,
    /// Verb.
    Verb,
    /// Adjective.
    Adjective,
    /// Determiner.
    Determiner,
    /// Pronoun.
    Pronoun,
    /// Preposition.
    Preposition,
}

const NOUNS: &[&str] = &[
    "cat", "dog", "tree", "house", "bird", "car", "book", "river", "stone", "cloud", "child",
    "road", "ship", "garden", "window",
];
const VERBS: &[&str] = &[
    "sees", "finds", "takes", "makes", "gives", "holds", "follows", "paints", "builds", "reads",
];
const ADJS: &[&str] = &[
    "big", "small", "red", "old", "quick", "bright", "quiet", "heavy", "green", "round",
];
const DETS: &[&str] = &["the", "a", "every", "some", "this"];
const PRONS: &[&str] = &["she", "he", "they", "it"];
const PREPS: &[&str] = &["on", "under", "near", "behind", "with"];

/// An open-addressing dictionary from word to class, with an instrumented
/// probe loop (linear probing, as link-grammar-era C dictionaries used).
pub struct Dictionary {
    slots: Vec<Option<(String, WordClass)>>,
    mask: usize,
}

impl Dictionary {
    /// Builds a dictionary containing a `coverage`-percent sample of the full
    /// vocabulary (unknown words force the parser onto its guessing path).
    pub fn build(coverage: u64, rng: &mut Xoshiro256) -> Self {
        let cap = 256usize; // power of two, ~40% load
        let mut d = Self {
            slots: vec![None; cap],
            mask: cap - 1,
        };
        let classes: [(&[&str], WordClass); 6] = [
            (NOUNS, WordClass::Noun),
            (VERBS, WordClass::Verb),
            (ADJS, WordClass::Adjective),
            (DETS, WordClass::Determiner),
            (PRONS, WordClass::Pronoun),
            (PREPS, WordClass::Preposition),
        ];
        for (words, class) in classes {
            for &w in words {
                // closed-class words are always kept; open-class words are
                // sampled by coverage
                let keep = matches!(
                    class,
                    WordClass::Determiner | WordClass::Pronoun | WordClass::Preposition
                ) || rng.chance(coverage);
                if keep {
                    d.insert(w, class);
                }
            }
        }
        d
    }

    fn hash(word: &str) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in word.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h as usize
    }

    fn insert(&mut self, word: &str, class: WordClass) {
        let mut i = Self::hash(word) & self.mask;
        while self.slots[i].is_some() {
            if self.slots[i].as_ref().map(|(w, _)| w.as_str()) == Some(word) {
                return;
            }
            i = (i + 1) & self.mask;
        }
        self.slots[i] = Some((word.to_owned(), class));
    }

    /// Looks up a word, tracing the probe loop.
    pub fn lookup(&self, word: &str, t: &mut dyn Tracer) -> Option<WordClass> {
        let mut i = Self::hash(word) & self.mask;
        loop {
            match &self.slots[i] {
                None => return None,
                Some((w, class)) => {
                    if !br!(t, S_DICT_PROBE, w != word) {
                        return Some(*class);
                    }
                    i = (i + 1) & self.mask;
                }
            }
        }
    }
}

/// Classifies a token: dictionary hit, or a suffix-based guess.
fn classify(dict: &Dictionary, word: &str, t: &mut dyn Tracer) -> WordClass {
    let hit = dict.lookup(word, t);
    if br!(t, S_KNOWN_WORD, hit.is_some()) {
        return hit.expect("guarded");
    }
    // unknown-word morphology guess, as the SPEC parser does
    if br!(t, S_SUFFIX_S, word.ends_with('s')) {
        WordClass::Verb
    } else {
        WordClass::Noun
    }
}

struct Parser<'a> {
    tokens: &'a [WordClass],
    pos: usize,
    backtracks: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<WordClass> {
        self.tokens.get(self.pos).copied()
    }

    fn parse_np(&mut self, t: &mut dyn Tracer) -> bool {
        let start = self.pos;
        if br!(t, S_NP_PRONOUN, self.peek() == Some(WordClass::Pronoun)) {
            self.pos += 1;
            return true;
        }
        if br!(t, S_TRY_DET, self.peek() == Some(WordClass::Determiner)) {
            self.pos += 1;
        }
        while br!(t, S_ADJ_LOOP, self.peek() == Some(WordClass::Adjective)) {
            self.pos += 1;
        }
        if br!(t, S_CLASS_NOUN, self.peek() == Some(WordClass::Noun)) {
            self.pos += 1;
            true
        } else {
            br!(t, S_BACKTRACK, self.pos != start);
            self.backtracks += (self.pos != start) as u32;
            self.pos = start;
            false
        }
    }

    fn parse_pp(&mut self, t: &mut dyn Tracer) -> bool {
        let start = self.pos;
        if self.peek() != Some(WordClass::Preposition) {
            return false;
        }
        self.pos += 1;
        if self.parse_np(t) {
            true
        } else {
            br!(t, S_BACKTRACK, true);
            self.backtracks += 1;
            self.pos = start;
            false
        }
    }

    fn parse_vp(&mut self, t: &mut dyn Tracer) -> bool {
        if !br!(t, S_CLASS_VERB, self.peek() == Some(WordClass::Verb)) {
            return false;
        }
        self.pos += 1;
        br!(t, S_VP_HAS_OBJ, self.parse_np(t));
        while br!(t, S_PP_LOOP, self.parse_pp(t)) {}
        true
    }

    fn parse_sentence(&mut self, t: &mut dyn Tracer) -> bool {
        self.parse_np(t) && self.parse_vp(t) && self.pos == self.tokens.len()
    }
}

/// Generates one sentence's words. `complexity` (0–100) controls adjective
/// stacking, PP chains and ungrammatical noise.
fn gen_sentence(rng: &mut Xoshiro256, complexity: u64, out: &mut Vec<&'static str>) {
    out.clear();
    // NP
    if rng.chance(25) {
        out.push(*rng.pick(PRONS));
    } else {
        if rng.chance(85) {
            out.push(*rng.pick(DETS));
        }
        while rng.chance(complexity / 2) && out.len() < 6 {
            out.push(*rng.pick(ADJS));
        }
        out.push(*rng.pick(NOUNS));
    }
    // VP
    out.push(*rng.pick(VERBS));
    if rng.chance(70) {
        if rng.chance(80) {
            out.push(*rng.pick(DETS));
        }
        out.push(*rng.pick(NOUNS));
    }
    while rng.chance(complexity / 3) && out.len() < 14 {
        out.push(*rng.pick(PREPS));
        out.push(*rng.pick(DETS));
        out.push(*rng.pick(NOUNS));
    }
    // noise: swap two words occasionally, making some sentences fail
    if rng.chance(complexity / 4) && out.len() >= 2 {
        let i = rng.below(out.len() as u64) as usize;
        let j = rng.below(out.len() as u64) as usize;
        out.swap(i, j);
    }
}

/// The parser-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct ParserWorkload {
    scale: Scale,
}

impl ParserWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for ParserWorkload {
    fn name(&self) -> &'static str {
        "parser"
    }

    fn description(&self) -> &'static str {
        "dictionary-based backtracking sentence parser"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = sentences; level = dictionary coverage %; variant = complexity
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "simple sentences, full dictionary",
                601,
                40_000,
                95,
                25,
            ),
            (
                "ref",
                "complex sentences, partial dictionary",
                602,
                110_000,
                70,
                60,
            ),
            (
                "ext-1",
                "very complex, sparse dictionary",
                603,
                50_000,
                45,
                85,
            ),
            ("ext-2", "simple, medium dictionary", 604, 45_000, 80, 30),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let dict = Dictionary::build(input.level as u64, &mut rng);
        let mut words = Vec::with_capacity(16);
        let mut classes = Vec::with_capacity(16);
        let mut parsed = 0u64;
        let mut s = 0u64;
        while br!(t, S_SENT_LOOP, s < input.size) {
            s += 1;
            gen_sentence(&mut rng, input.variant as u64, &mut words);
            br!(t, S_SENT_LONG, words.len() > 7);
            classes.clear();
            let mut i = 0usize;
            while br!(t, S_TOKEN_LOOP, i < words.len()) {
                classes.push(classify(&dict, words[i], t));
                i += 1;
            }
            let mut p = Parser {
                tokens: &classes,
                pos: 0,
                backtracks: 0,
            };
            let ok = p.parse_sentence(t);
            if br!(t, S_PARSE_OK, ok) {
                parsed += 1;
            }
        }
        std::hint::black_box(parsed);
    }

    fn instructions_per_branch(&self) -> f64 {
        6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    fn full_dict() -> Dictionary {
        let mut rng = Xoshiro256::seed_from_u64(1);
        Dictionary::build(100, &mut rng)
    }

    #[test]
    fn dictionary_lookup_hits_and_misses() {
        let d = full_dict();
        let t = &mut NullTracer;
        assert_eq!(d.lookup("cat", t), Some(WordClass::Noun));
        assert_eq!(d.lookup("sees", t), Some(WordClass::Verb));
        assert_eq!(d.lookup("the", t), Some(WordClass::Determiner));
        assert_eq!(d.lookup("zzyzx", t), None);
    }

    #[test]
    fn unknown_words_are_guessed_by_suffix() {
        let d = full_dict();
        let t = &mut NullTracer;
        assert_eq!(classify(&d, "wugs", t), WordClass::Verb);
        assert_eq!(classify(&d, "wug", t), WordClass::Noun);
    }

    #[test]
    fn grammatical_sentences_parse() {
        use WordClass::*;
        let t = &mut NullTracer;
        let cases: Vec<(Vec<WordClass>, bool)> = vec![
            (vec![Determiner, Noun, Verb, Determiner, Noun], true),
            (vec![Pronoun, Verb], true),
            (
                vec![
                    Determiner,
                    Adjective,
                    Adjective,
                    Noun,
                    Verb,
                    Preposition,
                    Determiner,
                    Noun,
                ],
                true,
            ),
            (vec![Determiner, Noun], false),       // no VP
            (vec![Verb, Determiner, Noun], false), // no subject
            (vec![Determiner, Noun, Verb, Preposition], false), // dangling P
        ];
        for (tokens, expect) in cases {
            let mut p = Parser {
                tokens: &tokens,
                pos: 0,
                backtracks: 0,
            };
            assert_eq!(p.parse_sentence(t), expect, "{tokens:?}");
        }
    }

    #[test]
    fn pp_failure_backtracks_cleanly() {
        use WordClass::*;
        let t = &mut NullTracer;
        // "she sees on" — PP starts but has no NP; VP should still succeed
        // with the position restored, then fail at end-of-input check.
        let tokens = vec![Pronoun, Verb, Preposition];
        let mut p = Parser {
            tokens: &tokens,
            pos: 0,
            backtracks: 0,
        };
        assert!(!p.parse_sentence(t));
        assert_eq!(p.backtracks, 1);
    }

    #[test]
    fn coverage_changes_parse_rate() {
        let w = ParserWorkload::new(Scale::Tiny);
        let count_ok = |level: i64, variant: u32| {
            let mut rng = Xoshiro256::seed_from_u64(9);
            let dict = Dictionary::build(level as u64, &mut rng);
            let mut ok = 0u32;
            let mut words = Vec::new();
            for _ in 0..500 {
                gen_sentence(&mut rng, variant as u64, &mut words);
                let classes: Vec<_> = words
                    .iter()
                    .map(|w| classify(&dict, w, &mut NullTracer))
                    .collect();
                let mut p = Parser {
                    tokens: &classes,
                    pos: 0,
                    backtracks: 0,
                };
                ok += p.parse_sentence(&mut NullTracer) as u32;
            }
            ok
        };
        let easy = count_ok(100, 20);
        let hard = count_ok(40, 80);
        assert!(
            easy > hard + 50,
            "full dictionary + simple sentences parse more: {easy} vs {hard}"
        );
        let _ = w; // silence unused in case of refactors
    }

    #[test]
    fn sentences_have_sane_lengths() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut words = Vec::new();
        for _ in 0..1_000 {
            gen_sentence(&mut rng, 70, &mut words);
            assert!((2..=17).contains(&words.len()), "{}", words.len());
        }
    }
}
