//! `eon` analogue: a small probabilistic-free ray tracer.
//!
//! Renders a procedural scene (a grid of spheres over a ground plane, one
//! point light) with reflections and hard shadows. In the paper, eon has
//! almost *no* input-dependent branches: its inputs change camera/resolution
//! parameters but the control-flow structure of ray-object intersection
//! stays put. The input sets here mirror that — same scene family, different
//! resolution, recursion depth and sphere counts — so the workload acts as
//! the suite's input-independence control.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_PIXEL_LOOP => "pixel_loop" (Loop),
    S_OBJ_LOOP => "object_loop" (Loop),
    S_DISC_POS => "sphere_discriminant_positive" (Search),
    S_T_CLOSER => "hit_is_closer" (Search),
    S_T_VALID => "hit_in_front" (Guard),
    S_PLANE_HIT => "ground_plane_hit" (Guard),
    S_SHADOW_HIT => "shadow_ray_blocked" (Guard),
    S_REFLECTIVE => "material_reflective" (TypeCheck),
    S_DEPTH_LIMIT => "recursion_depth_left" (Guard),
    S_LIGHT_ABOVE => "light_above_surface" (IfElse),
    S_AA_LOOP => "antialias_sample_loop" (Loop),
    S_CHECKER_DARK => "checker_square_dark" (IfElse),
    S_BVH_NODE_HIT => "bvh_node_aabb_hit" (Guard),
    S_BVH_IS_LEAF => "bvh_node_is_leaf" (TypeCheck),
    S_BVH_LEAF_LOOP => "bvh_leaf_sphere_loop" (Loop),
}

/// A 3-vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Constructs a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }

    fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    fn norm(self) -> Vec3 {
        let len = self.dot(self).sqrt();
        self.scale(1.0 / len)
    }
}

/// A sphere with a reflectivity flag.
#[derive(Clone, Copy, Debug)]
pub struct Sphere {
    center: Vec3,
    radius: f64,
    reflective: bool,
    shade: f64,
}

impl Sphere {
    /// Constructs a sphere.
    pub fn new(center: Vec3, radius: f64, reflective: bool, shade: f64) -> Self {
        Self {
            center,
            radius,
            reflective,
            shade,
        }
    }
}

/// An axis-aligned bounding box.
#[derive(Clone, Copy, Debug)]
struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    fn of_sphere(s: &Sphere) -> Self {
        Self {
            min: Vec3::new(
                s.center.x - s.radius,
                s.center.y - s.radius,
                s.center.z - s.radius,
            ),
            max: Vec3::new(
                s.center.x + s.radius,
                s.center.y + s.radius,
                s.center.z + s.radius,
            ),
        }
    }

    fn union(a: Aabb, b: Aabb) -> Aabb {
        Aabb {
            min: Vec3::new(
                a.min.x.min(b.min.x),
                a.min.y.min(b.min.y),
                a.min.z.min(b.min.z),
            ),
            max: Vec3::new(
                a.max.x.max(b.max.x),
                a.max.y.max(b.max.y),
                a.max.z.max(b.max.z),
            ),
        }
    }

    /// Slab test: does the ray hit the box before `t_max`?
    fn hit(&self, orig: Vec3, inv_dir: Vec3, t_max: f64) -> bool {
        let mut t0 = 1e-4f64;
        let mut t1 = t_max;
        for axis in 0..3 {
            let (lo, hi, o, inv) = match axis {
                0 => (self.min.x, self.max.x, orig.x, inv_dir.x),
                1 => (self.min.y, self.max.y, orig.y, inv_dir.y),
                _ => (self.min.z, self.max.z, orig.z, inv_dir.z),
            };
            let (mut near, mut far) = ((lo - o) * inv, (hi - o) * inv);
            if near > far {
                std::mem::swap(&mut near, &mut far);
            }
            t0 = t0.max(near);
            t1 = t1.min(far);
            if t0 > t1 {
                return false;
            }
        }
        true
    }
}

/// A node of the median-split bounding-volume hierarchy: a leaf holds a
/// contiguous range of (reordered) sphere indices.
#[derive(Clone, Debug)]
enum BvhNode {
    Leaf {
        bounds: Aabb,
        start: u32,
        count: u32,
    },
    Inner {
        bounds: Aabb,
        left: u32,
        right: u32,
    },
}

fn build_bvh(
    spheres: &mut [Sphere],
    order: &mut Vec<u32>,
    nodes: &mut Vec<BvhNode>,
    start: usize,
    count: usize,
) -> u32 {
    let bounds = order[start..start + count]
        .iter()
        .map(|&i| Aabb::of_sphere(&spheres[i as usize]))
        .reduce(Aabb::union)
        .expect("non-empty range");
    let id = nodes.len() as u32;
    if count <= 2 {
        nodes.push(BvhNode::Leaf {
            bounds,
            start: start as u32,
            count: count as u32,
        });
        return id;
    }
    // split on the widest axis at the median
    let span = bounds.max.sub(bounds.min);
    let axis = if span.x >= span.y && span.x >= span.z {
        0
    } else if span.y >= span.z {
        1
    } else {
        2
    };
    order[start..start + count].sort_by(|&a, &b| {
        let ca = spheres[a as usize].center;
        let cb = spheres[b as usize].center;
        let (ka, kb) = match axis {
            0 => (ca.x, cb.x),
            1 => (ca.y, cb.y),
            _ => (ca.z, cb.z),
        };
        ka.partial_cmp(&kb).expect("finite centers")
    });
    let mid = count / 2;
    nodes.push(BvhNode::Leaf {
        bounds,
        start: 0,
        count: 0,
    }); // placeholder, fixed below
    let left = build_bvh(spheres, order, nodes, start, mid);
    let right = build_bvh(spheres, order, nodes, start + mid, count - mid);
    nodes[id as usize] = BvhNode::Inner {
        bounds,
        left,
        right,
    };
    id
}

/// The procedural scene, with a BVH over its spheres.
#[derive(Clone, Debug)]
pub struct Scene {
    spheres: Vec<Sphere>,
    /// sphere indices, leaf-contiguous after BVH construction
    order: Vec<u32>,
    nodes: Vec<BvhNode>,
    light: Vec3,
}

impl Scene {
    /// Builds a `side x side` grid of spheres with alternating materials.
    pub fn grid(side: u32, rng: &mut Xoshiro256) -> Self {
        let mut spheres = Vec::new();
        for i in 0..side {
            for j in 0..side {
                let jitter = rng.unit() * 0.2;
                spheres.push(Sphere {
                    center: Vec3::new(
                        i as f64 * 2.2 - side as f64,
                        0.8 + jitter,
                        j as f64 * 2.2 + 3.0,
                    ),
                    radius: 0.75,
                    reflective: (i + j) % 3 == 0,
                    shade: 0.3 + 0.6 * ((i * 7 + j * 13) % 10) as f64 / 10.0,
                });
            }
        }
        Self::from_spheres(spheres, Vec3::new(-4.0, 10.0, 0.0))
    }

    /// Builds a scene from an explicit sphere list (testing/tooling).
    pub fn from_spheres(spheres: Vec<Sphere>, light: Vec3) -> Self {
        let mut scene = Self {
            order: (0..spheres.len() as u32).collect(),
            nodes: Vec::new(),
            spheres,
            light,
        };
        if !scene.spheres.is_empty() {
            let count = scene.spheres.len();
            let mut order = std::mem::take(&mut scene.order);
            let mut nodes = Vec::new();
            build_bvh(&mut scene.spheres, &mut order, &mut nodes, 0, count);
            scene.order = order;
            scene.nodes = nodes;
        }
        scene
    }

    /// Tests one sphere, updating the best hit.
    #[allow(clippy::type_complexity)]
    fn intersect_sphere(
        &self,
        s: &Sphere,
        orig: Vec3,
        dir: Vec3,
        best: &mut Option<(f64, Vec3, f64, bool)>,
        t: &mut dyn Tracer,
    ) {
        let oc = orig.sub(s.center);
        let b = oc.dot(dir);
        let c = oc.dot(oc) - s.radius * s.radius;
        let disc = b * b - c;
        if !br!(t, S_DISC_POS, disc > 0.0) {
            return;
        }
        let t_hit = -b - disc.sqrt();
        if !br!(t, S_T_VALID, t_hit > 1e-4) {
            return;
        }
        let closer = best.map(|(bt, ..)| t_hit < bt).unwrap_or(true);
        if br!(t, S_T_CLOSER, closer) {
            let point = orig.add(dir.scale(t_hit));
            let normal = point.sub(s.center).norm();
            *best = Some((t_hit, normal, s.shade, s.reflective));
        }
    }

    /// Intersects a ray with the scene via BVH traversal; returns
    /// `(t, normal, shade, reflective)` of the nearest hit.
    fn intersect(
        &self,
        orig: Vec3,
        dir: Vec3,
        t: &mut dyn Tracer,
    ) -> Option<(f64, Vec3, f64, bool)> {
        let mut best: Option<(f64, Vec3, f64, bool)> = None;
        let inv_dir = Vec3::new(1.0 / dir.x, 1.0 / dir.y, 1.0 / dir.z);
        let mut stack: Vec<u32> = Vec::with_capacity(32);
        if !self.nodes.is_empty() {
            stack.push(0);
        }
        while br!(t, S_OBJ_LOOP, !stack.is_empty()) {
            let node = &self.nodes[stack.pop().expect("guarded") as usize];
            let bounds = match node {
                BvhNode::Leaf { bounds, .. } | BvhNode::Inner { bounds, .. } => *bounds,
            };
            let t_max = best.map(|(bt, ..)| bt).unwrap_or(f64::MAX);
            if !br!(t, S_BVH_NODE_HIT, bounds.hit(orig, inv_dir, t_max)) {
                continue;
            }
            match node {
                leaf @ BvhNode::Leaf { start, count, .. } => {
                    br!(t, S_BVH_IS_LEAF, matches!(leaf, BvhNode::Leaf { .. }));
                    let mut k = *start as usize;
                    let end = (*start + *count) as usize;
                    while br!(t, S_BVH_LEAF_LOOP, k < end) {
                        let s = self.spheres[self.order[k] as usize];
                        self.intersect_sphere(&s, orig, dir, &mut best, t);
                        k += 1;
                    }
                }
                inner @ BvhNode::Inner { left, right, .. } => {
                    br!(t, S_BVH_IS_LEAF, matches!(inner, BvhNode::Leaf { .. }));
                    stack.push(*right);
                    stack.push(*left);
                }
            }
        }
        // ground plane y = 0
        let plane_hit = dir.y < -1e-6;
        if br!(t, S_PLANE_HIT, plane_hit) {
            let t_plane = -orig.y / dir.y;
            let closer = t_plane > 1e-4 && best.map(|(bt, ..)| t_plane < bt).unwrap_or(true);
            if closer {
                let p = orig.add(dir.scale(t_plane));
                // checkerboard shade
                let dark = ((p.x.floor() as i64 + p.z.floor() as i64) & 1) == 0;
                br!(t, S_CHECKER_DARK, dark);
                let check = if dark { 0.0 } else { 1.0 };
                best = Some((t_plane, Vec3::new(0.0, 1.0, 0.0), 0.2 + 0.5 * check, false));
            }
        }
        best
    }

    /// Traces one ray to a brightness value.
    pub fn trace(&self, orig: Vec3, dir: Vec3, depth: u32, t: &mut dyn Tracer) -> f64 {
        if !br!(t, S_DEPTH_LIMIT, depth > 0) {
            return 0.0;
        }
        let Some((t_hit, normal, shade, reflective)) = self.intersect(orig, dir, t) else {
            return 0.05; // sky
        };
        let point = orig.add(dir.scale(t_hit));
        let to_light = self.light.sub(point).norm();
        let facing = normal.dot(to_light);
        let mut brightness = 0.08; // ambient
        if br!(t, S_LIGHT_ABOVE, facing > 0.0) {
            // shadow ray
            let blocked = self
                .intersect(point.add(normal.scale(1e-3)), to_light, t)
                .is_some();
            if !br!(t, S_SHADOW_HIT, blocked) {
                brightness += shade * facing;
            }
        }
        if br!(t, S_REFLECTIVE, reflective) {
            let refl = dir.sub(normal.scale(2.0 * dir.dot(normal)));
            brightness = 0.4 * brightness
                + 0.6 * self.trace(point.add(normal.scale(1e-3)), refl, depth - 1, t);
        }
        brightness.min(1.0)
    }
}

/// The eon-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct EonWorkload {
    scale: Scale,
}

impl EonWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for EonWorkload {
    fn name(&self) -> &'static str {
        "eon"
    }

    fn description(&self) -> &'static str {
        "sphere-grid ray tracer with shadows and reflections"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = pixels (width*height); level = recursion depth;
        // variant = sphere grid side
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "chair.control.cook at low res",
                1201,
                110 * 110,
                3,
                5,
            ),
            (
                "ref",
                "chair.control.cook at high res",
                1202,
                200 * 200,
                4,
                5,
            ),
            ("ext-1", "denser scene, low res", 1203, 120 * 120, 3, 7),
            (
                "ext-2",
                "sparser scene, deep reflections",
                1204,
                130 * 130,
                6,
                4,
            ),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let scene = Scene::grid(input.variant, &mut rng);
        let side = (input.size as f64).sqrt() as u32;
        let eye = Vec3::new(0.0, 2.5, -6.0);
        let mut total = 0.0f64;
        let mut px = 0u64;
        let pixels = side as u64 * side as u64;
        while br!(t, S_PIXEL_LOOP, px < pixels) {
            let (ix, iy) = (px % side as u64, px / side as u64);
            px += 1;
            // 2x supersampling on edge-detected pixels (cheap adaptive AA):
            // a second sample when the pixel column is odd keeps the loop
            // branch data-dependent without doubling the whole frame
            let samples = if ix % 2 == 1 { 2u32 } else { 1 };
            let mut s = 0u32;
            while br!(t, S_AA_LOOP, s < samples) {
                let ju = s as f64 * 0.4 / side as f64;
                let u = (ix as f64 / side as f64 - 0.5 + ju) * 2.0;
                let v = (0.5 - iy as f64 / side as f64) * 1.5;
                let dir = Vec3::new(u, v, 1.0).norm();
                total += scene.trace(eye, dir, input.level as u32, t);
                s += 1;
            }
        }
        std::hint::black_box(total);
    }

    fn instructions_per_branch(&self) -> f64 {
        12.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    fn test_scene() -> Scene {
        let mut rng = Xoshiro256::seed_from_u64(1);
        Scene::grid(3, &mut rng)
    }

    #[test]
    fn ray_at_sphere_hits() {
        let scene = Scene::from_spheres(
            vec![Sphere::new(Vec3::new(0.0, 0.0, 5.0), 1.0, false, 0.5)],
            Vec3::new(0.0, 10.0, 0.0),
        );
        let hit = scene.intersect(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            &mut NullTracer,
        );
        let (t_hit, normal, ..) = hit.expect("dead-center ray must hit");
        assert!((t_hit - 4.0).abs() < 1e-9);
        assert!((normal.z + 1.0).abs() < 1e-9, "normal faces the ray");
    }

    #[test]
    fn ray_missing_everything_sees_sky() {
        let scene = test_scene();
        let up = scene.trace(
            Vec3::new(0.0, 2.0, -6.0),
            Vec3::new(0.0, 1.0, 0.0),
            3,
            &mut NullTracer,
        );
        assert!((up - 0.05).abs() < 1e-9);
    }

    #[test]
    fn downward_ray_hits_checkerboard() {
        let scene = test_scene();
        let hit = scene.intersect(
            Vec3::new(50.0, 5.0, 50.0), // far from all spheres
            Vec3::new(0.0, -1.0, 0.0),
            &mut NullTracer,
        );
        let (t_hit, normal, shade, refl) = hit.expect("plane must catch the ray");
        assert!((t_hit - 5.0).abs() < 1e-9);
        assert_eq!(normal, Vec3::new(0.0, 1.0, 0.0));
        assert!(!refl);
        assert!(shade == 0.2 || shade == 0.7);
    }

    #[test]
    fn shadowed_point_is_darker() {
        // A point directly under a sphere is shadowed from a light directly
        // above it.
        let scene = Scene::from_spheres(
            vec![Sphere::new(Vec3::new(0.0, 3.0, 5.0), 1.0, false, 0.9)],
            Vec3::new(0.0, 100.0, 5.0),
        );
        let shadowed = scene.trace(
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -0.19, 0.98).norm(),
            2,
            &mut NullTracer,
        );
        let lit = scene.trace(
            Vec3::new(8.0, 1.0, 0.0),
            Vec3::new(0.0, -0.19, 0.98).norm(),
            2,
            &mut NullTracer,
        );
        assert!(
            shadowed < lit,
            "under-sphere {shadowed:.3} vs open floor {lit:.3}"
        );
    }

    #[test]
    fn depth_zero_terminates() {
        let scene = test_scene();
        let v = scene.trace(
            Vec3::new(0.0, 2.0, -6.0),
            Vec3::new(0.0, 0.0, 1.0),
            0,
            &mut NullTracer,
        );
        assert_eq!(v, 0.0);
    }

    #[test]
    fn bvh_matches_brute_force_intersection() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let scene = Scene::grid(6, &mut rng);
        // brute force oracle over the same spheres
        let brute = |orig: Vec3, dir: Vec3| -> Option<f64> {
            scene
                .spheres
                .iter()
                .filter_map(|s| {
                    let oc = orig.sub(s.center);
                    let b = oc.dot(dir);
                    let c = oc.dot(oc) - s.radius * s.radius;
                    let disc = b * b - c;
                    (disc > 0.0).then(|| -b - disc.sqrt()).filter(|&t| t > 1e-4)
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
        };
        let eye = Vec3::new(0.0, 2.5, -6.0);
        let mut hits = 0u32;
        for i in 0..500u32 {
            let u = (i % 25) as f64 / 25.0 - 0.5;
            // aim slightly downward toward the sphere field (centres near
            // y = 0.8, eye at y = 2.5)
            let v = -0.02 - (i / 25) as f64 * 0.012;
            let dir = Vec3::new(u * 2.0, v, 1.0).norm();
            let bvh_t = scene
                .intersect(eye, dir, &mut NullTracer)
                .map(|(t, ..)| t)
                // exclude plane hits, which the oracle doesn't model
                .filter(|_| dir.y >= 0.0 || brute(eye, dir).is_some());
            match (bvh_t, brute(eye, dir)) {
                (Some(a), Some(b)) => {
                    // the BVH must find the same nearest sphere (or the plane
                    // in front of it)
                    assert!(a <= b + 1e-9, "BVH {a} vs brute {b}");
                    if (a - b).abs() < 1e-9 {
                        hits += 1;
                    }
                }
                (None, Some(b)) => panic!("BVH missed a sphere hit at t={b}"),
                _ => {}
            }
        }
        assert!(hits > 50, "enough rays should hit spheres: {hits}");
    }

    #[test]
    fn brightness_stays_normalized() {
        let scene = test_scene();
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..500 {
            let dir = Vec3::new(rng.unit() - 0.5, rng.unit() - 0.5, 1.0).norm();
            let v = scene.trace(Vec3::new(0.0, 2.0, -6.0), dir, 4, &mut NullTracer);
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }
}
