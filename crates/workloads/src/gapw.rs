//! `gap` analogue: a dynamically-typed math interpreter.
//!
//! GAP stores small integers immediately (tagged `T_INT`) and switches to a
//! multi-limb representation for magnitudes ≥ 2³⁰. The paper's Figure 6
//! shows the `Sum` handler's type-check branch — "are both operands
//! immediate integers?" — whose prediction accuracy is 90% on the train
//! input (mostly small values) but 58% on the reference input (about half
//! big values). This module reimplements that interpreter: tagged values,
//! the fast small-int paths with overflow checks, and a real multi-limb
//! big-integer fallback with instrumented carry/compare loops.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_HD_IS_INT => "sum_operands_are_t_int" (TypeCheck),
    S_ADD_OVERFLOW => "small_add_overflow" (Guard),
    S_MUL_IS_INT => "prod_operands_are_t_int" (TypeCheck),
    S_MUL_OVERFLOW => "small_mul_overflow" (Guard),
    S_CARRY_LOOP => "big_add_carry_loop" (Loop),
    S_BIG_CMP_LOOP => "big_compare_limb_loop" (Search),
    S_FITS_SMALL => "big_demotes_to_small" (Guard),
    S_NORMALIZE => "big_strip_zero_limbs" (Loop),
    S_OP_ARITH => "op_is_arithmetic" (IfElse),
    S_GCD_LOOP => "gcd_iteration" (Loop),
    S_GCD_SWAP => "gcd_operand_swap" (Search),
    S_LIST_LOOP => "list_sum_loop" (Loop),
    S_BORROW_LOOP => "big_sub_borrow_loop" (Loop),
    S_CMP_IS_INT => "cmp_operands_are_t_int" (TypeCheck),
    S_CMP_LESS => "cmp_result_less" (Search),
    S_POW_LOOP => "pow_square_loop" (Loop),
    S_POW_BIT_SET => "pow_exponent_bit_set" (IfElse),
}

/// GAP's immediate-integer magnitude bound: values at or above 2³⁰ are
/// stored as multi-limb big integers.
pub const SMALL_LIMIT: u64 = 1 << 30;

/// A GAP-style tagged value: an immediate small integer or a multi-limb
/// (base 2³²) magnitude. Only non-negative magnitudes are modeled — GAP's
/// sign handling is orthogonal to the branch behaviour under study.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// Immediate integer, `< SMALL_LIMIT` (the `T_INT` tag of Figure 6).
    Small(u64),
    /// Multi-limb magnitude, little-endian base-2³² limbs, no leading zero
    /// limb, always `>= SMALL_LIMIT`.
    Big(Vec<u32>),
}

impl Value {
    /// Builds a value from a `u64`, choosing the representation by
    /// `SMALL_LIMIT` exactly as GAP does.
    pub fn from_u64(v: u64) -> Self {
        if v < SMALL_LIMIT {
            Value::Small(v)
        } else {
            let lo = v as u32;
            let hi = (v >> 32) as u32;
            if hi == 0 {
                Value::Big(vec![lo])
            } else {
                Value::Big(vec![lo, hi])
            }
        }
    }

    /// Whether the value is an immediate integer.
    pub fn is_small(&self) -> bool {
        matches!(self, Value::Small(_))
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self {
            Value::Small(v) => Some(*v),
            Value::Big(limbs) => match limbs.len() {
                1 => Some(limbs[0] as u64),
                2 => Some(limbs[0] as u64 | (limbs[1] as u64) << 32),
                _ => None,
            },
        }
    }

    fn limbs(&self) -> Vec<u32> {
        match self {
            Value::Small(v) => {
                if *v >> 32 == 0 {
                    vec![*v as u32]
                } else {
                    vec![*v as u32, (*v >> 32) as u32]
                }
            }
            Value::Big(l) => l.clone(),
        }
    }
}

fn normalize(mut limbs: Vec<u32>, t: &mut dyn Tracer) -> Value {
    while br!(
        t,
        S_NORMALIZE,
        limbs.len() > 1 && *limbs.last().unwrap() == 0
    ) {
        limbs.pop();
    }
    let small_candidate = match limbs.len() {
        1 => Some(limbs[0] as u64),
        2 => Some(limbs[0] as u64 | (limbs[1] as u64) << 32),
        _ => None,
    };
    match small_candidate {
        Some(v) if br!(t, S_FITS_SMALL, v < SMALL_LIMIT) => Value::Small(v),
        _ => Value::Big(limbs),
    }
}

fn big_add(a: &[u32], b: &[u32], t: &mut dyn Tracer) -> Vec<u32> {
    let n = a.len().max(b.len());
    let mut out = Vec::with_capacity(n + 1);
    let mut carry = 0u64;
    for i in 0..n {
        let x = *a.get(i).unwrap_or(&0) as u64;
        let y = *b.get(i).unwrap_or(&0) as u64;
        let s = x + y + carry;
        out.push(s as u32);
        carry = s >> 32;
        br!(t, S_CARRY_LOOP, carry != 0);
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// Compares two limb vectors as magnitudes.
fn big_cmp(a: &[u32], b: &[u32], t: &mut dyn Tracer) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for i in (0..a.len()).rev() {
        if br!(t, S_BIG_CMP_LOOP, a[i] != b[i]) {
            return a[i].cmp(&b[i]);
        }
    }
    Ordering::Equal
}

/// `|a - b|` over limb vectors (a >= b must hold).
fn big_sub(a: &[u32], b: &[u32], t: &mut dyn Tracer) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for (i, &limb) in a.iter().enumerate() {
        let x = limb as i64;
        let y = *b.get(i).unwrap_or(&0) as i64;
        let mut d = x - y - borrow;
        borrow = 0;
        if br!(t, S_BORROW_LOOP, d < 0) {
            d += 1 << 32;
            borrow = 1;
        }
        out.push(d as u32);
    }
    out
}

fn big_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u64 + x as u64 * y as u64 + carry;
            out[i + j] = cur as u32;
            carry = cur >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u64 + carry;
            out[k] = cur as u32;
            carry = cur >> 32;
            k += 1;
        }
    }
    out
}

/// The interpreter's `Sum` handler — the paper's Figure 6, including the
/// `T_INT` type check (line 5) and the shifted-overflow test (line 9).
pub fn sum(a: &Value, b: &Value, t: &mut dyn Tracer) -> Value {
    if br!(t, S_HD_IS_INT, a.is_small() && b.is_small()) {
        let (x, y) = match (a, b) {
            (Value::Small(x), Value::Small(y)) => (*x, *y),
            _ => unreachable!("guarded by the T_INT check"),
        };
        let result = x + y; // cannot overflow u64: both < 2^30
        if !br!(t, S_ADD_OVERFLOW, result >= SMALL_LIMIT) {
            return Value::Small(result);
        }
        // falls through to the generic path, like GAP's SUM()
    }
    normalize(big_add(&a.limbs(), &b.limbs(), t), t)
}

/// The interpreter's `Prod` handler with its own type-check and overflow
/// branches.
pub fn prod(a: &Value, b: &Value, t: &mut dyn Tracer) -> Value {
    if br!(t, S_MUL_IS_INT, a.is_small() && b.is_small()) {
        let (x, y) = match (a, b) {
            (Value::Small(x), Value::Small(y)) => (*x, *y),
            _ => unreachable!("guarded by the T_INT check"),
        };
        let result = x * y; // < 2^60, no u64 overflow
        if !br!(t, S_MUL_OVERFLOW, result >= SMALL_LIMIT) {
            return Value::Small(result);
        }
    }
    normalize(big_mul(&a.limbs(), &b.limbs()), t)
}

/// Less-than comparison with GAP's immediate-integer fast path.
pub fn less_than(a: &Value, b: &Value, t: &mut dyn Tracer) -> bool {
    if br!(t, S_CMP_IS_INT, a.is_small() && b.is_small()) {
        let (x, y) = match (a, b) {
            (Value::Small(x), Value::Small(y)) => (*x, *y),
            _ => unreachable!("guarded by the T_INT check"),
        };
        return br!(t, S_CMP_LESS, x < y);
    }
    let r = big_cmp(&a.limbs(), &b.limbs(), t) == std::cmp::Ordering::Less;
    br!(t, S_CMP_LESS, r)
}

/// `base^exp` by binary exponentiation with magnitude clamping (results are
/// bounded at six limbs, like a computation working modulo a word count).
pub fn pow(base: &Value, exp: u32, t: &mut dyn Tracer) -> Value {
    let mut result = Value::Small(1);
    let mut sq = base.clone();
    let mut e = exp;
    while br!(t, S_POW_LOOP, e != 0) {
        if br!(t, S_POW_BIT_SET, e & 1 == 1) {
            result = prod(&result, &sq, t);
        }
        e >>= 1;
        if e != 0 {
            sq = prod(&sq, &sq, t);
        }
        // clamp runaway magnitudes to keep limb counts realistic
        if let Value::Big(l) = &result {
            if l.len() > 6 {
                result = normalize(l[..6].to_vec(), t);
            }
        }
        if let Value::Big(l) = &sq {
            if l.len() > 6 {
                sq = normalize(l[..6].to_vec(), t);
            }
        }
    }
    result
}

/// `|a - b|` on values.
pub fn absdiff(a: &Value, b: &Value, t: &mut dyn Tracer) -> Value {
    let (al, bl) = (a.limbs(), b.limbs());
    match big_cmp(&al, &bl, t) {
        std::cmp::Ordering::Less => normalize(big_sub(&bl, &al, t), t),
        _ => normalize(big_sub(&al, &bl, t), t),
    }
}

/// GCD, instrumented: Euclidean division when both operands fit in a
/// machine word (the common case, with a data-dependent iteration count),
/// falling back to bounded subtractive steps for multi-limb operands.
pub fn gcd(a: &Value, b: &Value, t: &mut dyn Tracer) -> Value {
    if let (Some(mut x), Some(mut y)) = (a.to_u64(), b.to_u64()) {
        if br!(t, S_GCD_SWAP, x < y) {
            std::mem::swap(&mut x, &mut y);
        }
        while br!(t, S_GCD_LOOP, y != 0) {
            let r = x % y;
            x = y;
            y = r;
        }
        return Value::from_u64(x);
    }
    // multi-limb fallback: a few subtractive rounds bring the magnitudes
    // together or down into machine-word range
    let mut x = a.clone();
    let mut y = b.clone();
    let mut fuel = 64u32;
    while br!(t, S_GCD_LOOP, y.to_u64() != Some(0) && fuel != 0) {
        fuel -= 1;
        if let (Some(xs), Some(ys)) = (x.to_u64(), y.to_u64()) {
            return gcd(&Value::from_u64(xs), &Value::from_u64(ys), t);
        }
        let (xl, yl) = (x.limbs(), y.limbs());
        if br!(
            t,
            S_GCD_SWAP,
            big_cmp(&xl, &yl, t) == std::cmp::Ordering::Less
        ) {
            std::mem::swap(&mut x, &mut y);
            continue;
        }
        let d = absdiff(&x, &y, t);
        x = y;
        y = d;
    }
    x
}

/// One generated interpreter operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Sum(usize, usize, usize),
    Prod(usize, usize, usize),
    Diff(usize, usize, usize),
    Gcd(usize, usize, usize),
    Cmp(usize, usize, usize),
    Pow(usize, usize, u32),
    SumList(usize),
    Fresh(usize, u64),
}

/// The gap-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct GapWorkload {
    scale: Scale,
}

impl GapWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

const NUM_VARS: usize = 64;

fn gen_value(rng: &mut Xoshiro256, big_pct: u64) -> u64 {
    if rng.chance(big_pct) {
        // big magnitude: force >= 2^30, up to 2^52 so products grow limbs
        SMALL_LIMIT + rng.below(1 << 52)
    } else {
        // small values, low enough that products of two smalls stay under
        // the 2^30 immediate-integer limit (as typical GAP working values do)
        rng.below(1 << 15)
    }
}

impl Workload for GapWorkload {
    fn name(&self) -> &'static str {
        "gap"
    }

    fn description(&self) -> &'static str {
        "dynamically-typed math interpreter with immediate and big integers"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // level = percentage of freshly generated values that are big;
        // variant = op-mix flavour (0 arithmetic, 1 gcd-heavy, 2 list-heavy)
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 6] = [
            ("train", "mostly small integers", 201, 130_000, 5, 0),
            ("ref", "about half big integers", 202, 320_000, 45, 0),
            (
                "ext-1",
                "Smith-Normal-Form-like gcd mix",
                203,
                160_000,
                30,
                1,
            ),
            ("ext-2", "group ops, small ints only", 204, 180_000, 0, 0),
            ("ext-3", "medium reduced input", 205, 140_000, 20, 2),
            ("ext-4", "modified ref input", 206, 200_000, 60, 0),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let big_pct = input.level as u64;
        let mut vars: Vec<Value> = (0..NUM_VARS)
            .map(|_| Value::from_u64(gen_value(&mut rng, big_pct)))
            .collect();
        let mut checksum = 0u64;
        for step in 0..input.size {
            let d = rng.below(NUM_VARS as u64) as usize;
            let a = rng.below(NUM_VARS as u64) as usize;
            let b = rng.below(NUM_VARS as u64) as usize;
            // Interpreter workspaces don't drift toward all-big values the
            // way unconstrained accumulation would: most operands come from
            // the input stream itself, and each sub-computation starts from
            // a fresh workspace. Refresh accordingly so the T_INT mix tracks
            // the input's big-value fraction (Fig. 6).
            if rng.chance(90) {
                vars[a] = Value::from_u64(gen_value(&mut rng, big_pct));
            }
            if rng.chance(90) {
                vars[b] = Value::from_u64(gen_value(&mut rng, big_pct));
            }
            if step % 2000 == 1999 {
                for v in vars.iter_mut() {
                    *v = Value::from_u64(gen_value(&mut rng, big_pct));
                }
            }
            let op = match input.variant {
                1 => match rng.below(10) {
                    0..=3 => Op::Gcd(d, a, b),
                    4..=6 => Op::Diff(d, a, b),
                    7..=8 => Op::Sum(d, a, b),
                    _ => Op::Fresh(d, gen_value(&mut rng, big_pct)),
                },
                2 => match rng.below(10) {
                    0..=4 => Op::SumList(d),
                    5..=7 => Op::Sum(d, a, b),
                    _ => Op::Fresh(d, gen_value(&mut rng, big_pct)),
                },
                _ => match rng.below(18) {
                    0..=5 => Op::Sum(d, a, b),
                    6..=8 => Op::Prod(d, a, b),
                    9..=10 => Op::Diff(d, a, b),
                    11 => Op::Gcd(d, a, b),
                    12..=13 => Op::Cmp(d, a, b),
                    14 => Op::Pow(d, a, 2 + rng.below(9) as u32),
                    15 => Op::SumList(d),
                    _ => Op::Fresh(d, gen_value(&mut rng, big_pct)),
                },
            };
            // op dispatch branch: arithmetic fast path vs. structural op
            let arith = matches!(op, Op::Sum(..) | Op::Prod(..) | Op::Diff(..));
            br!(t, S_OP_ARITH, arith);
            match op {
                Op::Sum(d, a, b) => vars[d] = sum(&vars[a], &vars[b], t),
                Op::Prod(d, a, b) => {
                    let p = prod(&vars[a], &vars[b], t);
                    // keep magnitudes bounded so limb counts stay realistic
                    vars[d] = if matches!(&p, Value::Big(l) if l.len() > 6) {
                        Value::from_u64(gen_value(&mut rng, big_pct))
                    } else {
                        p
                    };
                }
                Op::Diff(d, a, b) => vars[d] = absdiff(&vars[a], &vars[b], t),
                Op::Gcd(d, a, b) => vars[d] = gcd(&vars[a], &vars[b], t),
                Op::Cmp(d, a, b) => {
                    vars[d] = Value::Small(less_than(&vars[a], &vars[b], t) as u64);
                }
                Op::Pow(d, a, e) => vars[d] = pow(&vars[a], e, t),
                Op::SumList(d) => {
                    // sum over a freshly generated input list (gap's Sum over
                    // list elements read from the input stream)
                    let mut acc = Value::Small(0);
                    let len = 4 + rng.below(8);
                    let mut i = 0u64;
                    while br!(t, S_LIST_LOOP, i < len) {
                        let elem = Value::from_u64(gen_value(&mut rng, big_pct));
                        acc = sum(&acc, &elem, t);
                        i += 1;
                    }
                    vars[d] = acc;
                }
                Op::Fresh(d, v) => vars[d] = Value::from_u64(v),
            }
            if let Some(v) = vars[d].to_u64() {
                checksum = checksum.wrapping_add(v);
            }
        }
        std::hint::black_box(checksum);
    }

    fn instructions_per_branch(&self) -> f64 {
        8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::{EdgeProfiler, NullTracer};

    fn v(x: u64) -> Value {
        Value::from_u64(x)
    }

    #[test]
    fn representation_boundary() {
        assert!(v(SMALL_LIMIT - 1).is_small());
        assert!(!v(SMALL_LIMIT).is_small());
        assert_eq!(v(SMALL_LIMIT).to_u64(), Some(SMALL_LIMIT));
        assert_eq!(v(u64::MAX).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn sum_small_fast_path_and_overflow() {
        let t = &mut NullTracer;
        assert_eq!(sum(&v(2), &v(3), t), v(5));
        // two values just under the limit overflow into a big
        let a = SMALL_LIMIT - 1;
        let r = sum(&v(a), &v(a), t);
        assert!(!r.is_small());
        assert_eq!(r.to_u64(), Some(2 * a));
    }

    #[test]
    fn sum_matches_u64_arithmetic_exhaustively() {
        let t = &mut NullTracer;
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..2_000 {
            let a = rng.below(1 << 62);
            let b = rng.below(1 << 62);
            assert_eq!(sum(&v(a), &v(b), t).to_u64(), Some(a + b));
        }
    }

    #[test]
    fn prod_matches_u128_arithmetic() {
        let t = &mut NullTracer;
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..2_000 {
            let a = rng.below(1 << 32);
            let b = rng.below(1 << 31);
            let p = prod(&v(a), &v(b), t);
            assert_eq!(p.to_u64(), Some(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn prod_grows_many_limbs() {
        let t = &mut NullTracer;
        let big = v(u64::MAX);
        let p = prod(&big, &big, t);
        match p {
            Value::Big(ref l) => assert_eq!(l.len(), 4),
            _ => panic!("u64::MAX squared needs 4 limbs"),
        }
        // (2^64-1)^2 = 2^128 - 2^65 + 1; check low limb
        if let Value::Big(l) = p {
            assert_eq!(l[0], 1);
        }
    }

    #[test]
    fn absdiff_and_demotion() {
        let t = &mut NullTracer;
        let a = v(SMALL_LIMIT + 100);
        let b = v(SMALL_LIMIT + 30);
        let d = absdiff(&a, &b, t);
        assert_eq!(d, v(70), "difference of two bigs demotes to small");
        assert!(d.is_small());
        assert_eq!(absdiff(&v(30), &v(100), t), v(70), "absolute");
    }

    #[test]
    fn gcd_known_values() {
        let t = &mut NullTracer;
        assert_eq!(gcd(&v(48), &v(36), t).to_u64(), Some(12));
        assert_eq!(gcd(&v(17), &v(5), t).to_u64(), Some(1));
        assert_eq!(gcd(&v(0), &v(9), t).to_u64(), Some(9));
        let g = gcd(&v(SMALL_LIMIT * 6), &v(SMALL_LIMIT * 4), t);
        assert_eq!(g.to_u64(), Some(SMALL_LIMIT * 2));
    }

    #[test]
    fn type_check_branch_bias_follows_input_mix() {
        // The Figure 6 property: the T_INT check is heavily taken on the
        // train-like mix and near 50/50 on the ref-like mix.
        let w = GapWorkload::new(Scale::Tiny);
        let rate = |name: &str| {
            let mut prof = EdgeProfiler::new(SITES.len());
            w.run(&w.input_set(name).unwrap(), &mut prof);
            prof.edge(S_HD_IS_INT).taken_rate().unwrap()
        };
        let train = rate("train");
        let reference = rate("ref");
        assert!(train > 0.8, "train mostly small ints: {train:.3}");
        assert!(
            reference < train - 0.2,
            "ref has many bigs: train={train:.3} ref={reference:.3}"
        );
    }

    #[test]
    fn normalization_strips_leading_zeros() {
        let t = &mut NullTracer;
        let val = normalize(vec![5, 0, 0], t);
        assert_eq!(val, Value::Small(5));
        let kept = normalize(vec![0, 0, 1], t);
        assert_eq!(kept, Value::Big(vec![0, 0, 1]));
    }
}
