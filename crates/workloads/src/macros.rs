//! Internal macros shared by the workload implementations.

/// Declares a workload's static branch-site table plus one `SiteId` constant
/// per site:
///
/// ```ignore
/// declare_sites! {
///     S_CHAIN_EXIT => "hash_chain_exit" (Loop),
///     S_MATCH_LONGER => "match_longer" (Search),
/// }
/// ```
///
/// expands to `pub const SITES: &[SiteDecl]` and
/// `const S_CHAIN_EXIT: SiteId = SiteId(0);` etc., with ids assigned in
/// declaration order.
macro_rules! declare_sites {
    ($($konst:ident => $name:literal ($kind:ident)),+ $(,)?) => {
        /// The workload's static branch-site table.
        pub const SITES: &[btrace::SiteDecl] = &[
            $(btrace::SiteDecl::new($name, btrace::BranchKind::$kind)),+
        ];
        declare_sites!(@ids 0u32; $($konst),+);
    };
    (@ids $idx:expr; $head:ident $(, $rest:ident)*) => {
        pub(crate) const $head: btrace::SiteId = btrace::SiteId($idx);
        declare_sites!(@ids $idx + 1u32; $($rest),*);
    };
    (@ids $idx:expr;) => {};
}

/// Traces a conditional branch through the ambient tracer and yields the
/// condition, so instrumented code reads like ordinary control flow:
///
/// ```ignore
/// if br!(t, S_CHAIN_EXIT, chain_length != 0) { … }
/// ```
macro_rules! br {
    ($tracer:expr, $site:expr, $cond:expr) => {{
        let cond: bool = $cond;
        $tracer.branch($site, cond);
        cond
    }};
}

#[cfg(test)]
mod tests {
    use btrace::{CountingTracer, SiteId, Tracer};

    mod demo {
        declare_sites! {
            S_A => "alpha" (Loop),
            S_B => "beta" (Guard),
            S_C => "gamma" (TypeCheck),
        }
    }

    #[test]
    fn ids_follow_declaration_order() {
        assert_eq!(demo::S_A, SiteId(0));
        assert_eq!(demo::S_B, SiteId(1));
        assert_eq!(demo::S_C, SiteId(2));
        assert_eq!(demo::SITES.len(), 3);
        assert_eq!(demo::SITES[1].name, "beta");
        assert_eq!(demo::SITES[2].kind, btrace::BranchKind::TypeCheck);
    }

    #[test]
    fn br_macro_traces_and_returns() {
        let mut t = CountingTracer::new();
        let tr: &mut dyn Tracer = &mut t;
        let x = 5;
        let mut hits = 0;
        if br!(tr, demo::S_A, x > 3) {
            hits += 1;
        }
        if br!(tr, demo::S_B, x > 9) {
            hits += 1;
        }
        assert_eq!(hits, 1);
        assert_eq!(t.count(), 2);
    }
}
