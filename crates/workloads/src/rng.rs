//! Deterministic pseudo-random generation for input-set synthesis.
//!
//! The workloads need seeded, platform-stable randomness whose output never
//! changes under dependency upgrades (the whole evaluation depends on input
//! sets being reproducible bit-for-bit), so the suite carries its own small
//! xoshiro256** implementation instead of depending on an external RNG
//! crate's unversioned stream.

/// xoshiro256** (Blackman & Vigna), seeded via SplitMix64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64, so
    /// any seed — including 0 — yields a well-mixed state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift reduction
    /// (bias < 2⁻³² for the bounds used here).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below((hi - lo) as u64 + 1) as i64
    }

    /// Bernoulli draw: true with probability `percent`/100.
    #[inline]
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = Xoshiro256::seed_from_u64(0);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), vals.len());
    }

    #[test]
    fn below_respects_bound_and_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range(-3, 3) {
                -3 => lo_seen = true,
                3 => hi_seen = true,
                v => assert!((-3..=3).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_tracks_percentage() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.chance(30)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = Xoshiro256::seed_from_u64(13);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(17);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        Xoshiro256::seed_from_u64(1).below(0);
    }
}
