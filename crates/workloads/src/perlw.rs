//! `perlbmk` analogue: text processing and pattern matching.
//!
//! Mirrors SPEC's `diffmail.pl` workload: generate batches of mail-like
//! messages, diff pairs of message bodies line-by-line (LCS dynamic
//! program), and match headers against a set of glob-style patterns with a
//! backtracking matcher. Input sets vary message similarity, pattern
//! selectivity and batch shape — exactly the knobs `diffmail.pl` takes as
//! command-line parameters.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_MSG_LOOP => "message_loop" (Loop),
    S_LINE_LOOP => "diff_line_loop" (Loop),
    S_LINE_EQ => "diff_lines_equal" (Search),
    S_DP_TAKE_LEFT => "lcs_prefers_left" (IfElse),
    S_RX_CHAR_EQ => "glob_char_matches" (Search),
    S_RX_IS_STAR => "glob_token_is_star" (TypeCheck),
    S_RX_IS_CLASS => "glob_token_is_class" (TypeCheck),
    S_RX_STAR_EXTEND => "glob_star_extend" (Loop),
    S_RX_CLASS_MEMBER => "glob_class_member_scan" (Search),
    S_HDR_FILTER => "header_filter_hits" (Guard),
    S_CASE_UPPER => "char_needs_casefold" (IfElse),
    S_DOMAIN_EQ => "from_domain_matches" (Search),
    S_SUBJ_LONG => "subject_is_long" (IfElse),
    S_MYERS_D_LOOP => "myers_edit_distance_loop" (Loop),
    S_MYERS_GO_DOWN => "myers_step_is_down" (IfElse),
    S_MYERS_SNAKE => "myers_snake_extends" (Loop),
}

/// A glob-style pattern token.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Pat {
    Lit(u8),
    Any,            // ?
    Star,           // *
    Class(Vec<u8>), // [abc]
}

/// Compiles a glob pattern (`*`, `?`, `[...]`, literals).
pub fn compile_glob(pattern: &str) -> Vec<u8> {
    // patterns are stored as bytes and parsed on the fly by the matcher, so
    // this just validates and normalizes
    pattern.bytes().collect()
}

fn parse_tokens(pat: &[u8]) -> Vec<Pat> {
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < pat.len() {
        match pat[i] {
            b'*' => {
                toks.push(Pat::Star);
                i += 1;
            }
            b'?' => {
                toks.push(Pat::Any);
                i += 1;
            }
            b'[' => {
                let mut set = Vec::new();
                i += 1;
                while i < pat.len() && pat[i] != b']' {
                    set.push(pat[i]);
                    i += 1;
                }
                i += 1; // skip ]
                toks.push(Pat::Class(set));
            }
            c => {
                toks.push(Pat::Lit(c));
                i += 1;
            }
        }
    }
    toks
}

fn match_tokens(toks: &[Pat], text: &[u8], t: &mut dyn Tracer) -> bool {
    match toks.first() {
        None => text.is_empty(),
        Some(tok) => {
            if br!(t, S_RX_IS_STAR, *tok == Pat::Star) {
                // greedy star with backtracking: try every split point
                let mut skip = text.len();
                loop {
                    if match_tokens(&toks[1..], &text[skip..], t) {
                        return true;
                    }
                    if !br!(t, S_RX_STAR_EXTEND, skip > 0) {
                        return false;
                    }
                    skip -= 1;
                }
            }
            if text.is_empty() {
                return false;
            }
            let c = text[0].to_ascii_lowercase();
            br!(t, S_CASE_UPPER, text[0].is_ascii_uppercase());
            let head_ok = if br!(t, S_RX_IS_CLASS, matches!(tok, Pat::Class(_))) {
                let Pat::Class(set) = tok else {
                    unreachable!("guarded")
                };
                let mut hit = false;
                for &m in set {
                    if !br!(t, S_RX_CLASS_MEMBER, m != c) {
                        hit = true;
                        break;
                    }
                }
                hit
            } else {
                match tok {
                    Pat::Lit(l) => br!(t, S_RX_CHAR_EQ, *l == c),
                    Pat::Any => true,
                    _ => unreachable!("star and class handled above"),
                }
            };
            head_ok && match_tokens(&toks[1..], &text[1..], t)
        }
    }
}

/// Matches a glob pattern against text (case-insensitive), tracing the
/// matcher's branches.
pub fn glob_match(pattern: &[u8], text: &[u8], t: &mut dyn Tracer) -> bool {
    match_tokens(&parse_tokens(pattern), text, t)
}

/// Line-level diff size via Myers' O(ND) algorithm — the algorithm diff(1)
/// and Perl's Algorithm::Diff actually use. Returns the number of changed
/// lines (insertions + deletions), i.e. the shortest edit distance.
///
/// The working set is the classic `v` array of furthest-reaching x per
/// diagonal; the hot branches are the down/right choice and the "snake"
/// (matching-run) extension loop, both directly input-similarity-dependent.
pub fn diff_size(a: &[u64], b: &[u64], t: &mut dyn Tracer) -> usize {
    let (n, m) = (a.len() as i64, b.len() as i64);
    if n == 0 {
        return m as usize;
    }
    if m == 0 {
        return n as usize;
    }
    let max = n + m;
    let offset = max;
    let mut v = vec![0i64; (2 * max + 1) as usize];
    let mut d = 0i64;
    while br!(t, S_MYERS_D_LOOP, d <= max) {
        let mut k = -d;
        while k <= d {
            let go_down =
                k == -d || (k != d && v[(offset + k - 1) as usize] < v[(offset + k + 1) as usize]);
            let mut x = if br!(t, S_MYERS_GO_DOWN, go_down) {
                v[(offset + k + 1) as usize]
            } else {
                v[(offset + k - 1) as usize] + 1
            };
            let mut y = x - k;
            while br!(
                t,
                S_MYERS_SNAKE,
                x < n && y < m && a[x as usize] == b[y as usize]
            ) {
                x += 1;
                y += 1;
            }
            v[(offset + k) as usize] = x;
            if x >= n && y >= m {
                return d as usize;
            }
            k += 2;
        }
        d += 1;
    }
    unreachable!("d = n + m always reaches the end")
}

/// Line-level diff size via the classic LCS dynamic program (the O(NM)
/// oracle [`diff_size`] is tested against).
pub fn diff_size_dp(a: &[u64], b: &[u64], t: &mut dyn Tracer) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    let mut i = 0usize;
    while br!(t, S_LINE_LOOP, i < n) {
        for j in 0..m {
            let v = if br!(t, S_LINE_EQ, a[i] == b[j]) {
                dp[idx(i, j)] + 1
            } else {
                let (left, up) = (dp[idx(i + 1, j)], dp[idx(i, j + 1)]);
                if br!(t, S_DP_TAKE_LEFT, left >= up) {
                    left
                } else {
                    up
                }
            };
            dp[idx(i + 1, j + 1)] = v;
        }
        i += 1;
    }
    let lcs = dp[idx(n, m)] as usize;
    (n - lcs) + (m - lcs)
}

/// A generated mail message: header fields plus body-line hashes.
#[derive(Clone, Debug)]
pub struct Message {
    /// Subject line.
    pub subject: Vec<u8>,
    /// From address.
    pub from: Vec<u8>,
    /// Hashes of the body lines (the diff operates on line identity).
    pub body: Vec<u64>,
}

const SUBJECT_WORDS: &[&str] = &[
    "meeting",
    "report",
    "urgent",
    "schedule",
    "update",
    "invoice",
    "holiday",
    "review",
    "reminder",
    "newsletter",
];
const DOMAINS: &[&str] = &["example.com", "mail.org", "corp.net", "lists.io"];

fn gen_message(rng: &mut Xoshiro256, body_lines: u64) -> Message {
    let mut subject = Vec::new();
    for k in 0..1 + rng.below(4) {
        if k > 0 {
            subject.push(b' ');
        }
        subject.extend_from_slice(rng.pick(SUBJECT_WORDS).as_bytes());
    }
    if rng.chance(30) {
        // mixed case to exercise folding
        for b in subject.iter_mut() {
            if rng.chance(25) {
                *b = b.to_ascii_uppercase();
            }
        }
    }
    let mut from = Vec::new();
    from.extend_from_slice(b"user");
    from.extend_from_slice(rng.below(1000).to_string().as_bytes());
    from.push(b'@');
    from.extend_from_slice(rng.pick(DOMAINS).as_bytes());
    let body = (0..body_lines).map(|_| rng.below(1 << 20)).collect();
    Message {
        subject,
        from,
        body,
    }
}

/// Mutates a message body: each line changes with probability
/// `churn_pct`/100 (diffmail's "how different are the two mailboxes" knob).
fn mutate_body(body: &[u64], churn_pct: u64, rng: &mut Xoshiro256) -> Vec<u64> {
    let mut out = Vec::with_capacity(body.len());
    for &line in body {
        if rng.chance(churn_pct) {
            if rng.chance(30) {
                continue; // deletion
            }
            out.push(rng.below(1 << 20)); // replacement
            if rng.chance(20) {
                out.push(rng.below(1 << 20)); // extra insertion
            }
        } else {
            out.push(line);
        }
    }
    out
}

/// The perlbmk-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct PerlWorkload {
    scale: Scale,
}

impl PerlWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

const PATTERNS: &[&str] = &[
    "urgent*", "*report*", "meet?ng*", "[ru]e*", "*invoice", "news*er",
];

impl Workload for PerlWorkload {
    fn name(&self) -> &'static str {
        "perlbmk"
    }

    fn description(&self) -> &'static str {
        "diffmail-like text diffing + glob pattern matching"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = messages; level = body churn %; variant = body lines
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "diffmail param set 2: similar mailboxes",
                1101,
                2_800,
                12,
                28,
            ),
            (
                "ref",
                "diffmail param set 1: larger batch, similar mix",
                1102,
                5_200,
                16,
                36,
            ),
            ("ext-1", "short messages, heavy churn", 1103, 3_600, 70, 14),
            ("ext-2", "long messages, light churn", 1104, 2_200, 6, 60),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let patterns: Vec<Vec<u8>> = PATTERNS.iter().map(|p| compile_glob(p)).collect();
        let mut total_diff = 0usize;
        let mut matched = 0u64;
        let mut m = 0u64;
        while br!(t, S_MSG_LOOP, m < input.size) {
            m += 1;
            let msg = gen_message(&mut rng, input.variant as u64);
            br!(t, S_SUBJ_LONG, msg.subject.len() > 14);
            let other_body = mutate_body(&msg.body, input.level as u64, &mut rng);
            total_diff += diff_size(&msg.body, &other_body, t);
            // every 16th message also gets a full LCS table, as diffmail
            // renders context output for a sample of messages
            if m % 16 == 1 {
                let cap_a = msg.body.len().min(24);
                let cap_b = other_body.len().min(24);
                total_diff += diff_size_dp(&msg.body[..cap_a], &other_body[..cap_b], t);
            }
            for p in &patterns {
                let hit = glob_match(p, &msg.subject, t);
                if br!(t, S_HDR_FILTER, hit) {
                    matched += 1;
                }
            }
            // domain filter over the From header, scanning character by
            // character like Perl's index()
            let watch = b"corp.net";
            let mut dom_hit = false;
            for win in msg.from.windows(watch.len()) {
                if !br!(t, S_DOMAIN_EQ, win != watch) {
                    dom_hit = true;
                    break;
                }
            }
            matched += dom_hit as u64;
        }
        std::hint::black_box((total_diff, matched));
    }

    fn instructions_per_branch(&self) -> f64 {
        6.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    fn m(p: &str, s: &str) -> bool {
        glob_match(p.as_bytes(), s.as_bytes(), &mut NullTracer)
    }

    #[test]
    fn literal_and_any() {
        assert!(m("cat", "cat"));
        assert!(m("c?t", "cat"));
        assert!(m("c?t", "cut"));
        assert!(!m("c?t", "cart"));
        assert!(!m("cat", "dog"));
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn star_matches_greedily_with_backtracking() {
        assert!(m("*", ""));
        assert!(m("*", "anything"));
        assert!(m("a*b", "ab"));
        assert!(m("a*b", "axxxb"));
        assert!(!m("a*b", "axxxc"));
        assert!(m("*a*a*", "banana"));
        assert!(m("a*a*b", "aab"));
    }

    #[test]
    fn classes_and_case_folding() {
        assert!(m("[abc]x", "bx"));
        assert!(!m("[abc]x", "dx"));
        assert!(m("cat", "CAT"), "matching is case-insensitive on text");
        assert!(m("[ru]e*", "Report"));
    }

    #[test]
    fn diff_of_identical_is_zero() {
        let a = vec![1, 2, 3, 4];
        assert_eq!(diff_size(&a, &a, &mut NullTracer), 0);
    }

    #[test]
    fn diff_counts_insertions_and_deletions() {
        let a = vec![1, 2, 3];
        let b = vec![1, 3];
        assert_eq!(diff_size(&a, &b, &mut NullTracer), 1, "one deletion");
        let c = vec![9, 1, 2, 3, 9];
        assert_eq!(diff_size(&a, &c, &mut NullTracer), 2, "two insertions");
        let disjoint = vec![7, 8];
        assert_eq!(
            diff_size(&a, &disjoint, &mut NullTracer),
            5,
            "no common lines"
        );
    }

    #[test]
    fn myers_matches_dp_oracle() {
        let mut rng = Xoshiro256::seed_from_u64(17);
        for case in 0..200 {
            let n = rng.below(30) as usize;
            let a: Vec<u64> = (0..n).map(|_| rng.below(6)).collect();
            let b: Vec<u64> = (0..rng.below(30) as usize).map(|_| rng.below(6)).collect();
            let myers = diff_size(&a, &b, &mut NullTracer);
            let dp = diff_size_dp(&a, &b, &mut NullTracer);
            assert_eq!(myers, dp, "case {case}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn myers_edge_cases() {
        let t = &mut NullTracer;
        assert_eq!(diff_size(&[], &[], t), 0);
        assert_eq!(diff_size(&[1, 2], &[], t), 2);
        assert_eq!(diff_size(&[], &[9], t), 1);
        assert_eq!(diff_size(&[1, 2, 3], &[1, 2, 3], t), 0);
        assert_eq!(diff_size(&[1, 2, 3], &[3, 2, 1], t), 4);
    }

    #[test]
    fn churn_scales_diff_size() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let base: Vec<u64> = (0..200).map(|_| rng.below(1 << 20)).collect();
        let light = mutate_body(&base, 5, &mut rng);
        let heavy = mutate_body(&base, 60, &mut rng);
        let dl = diff_size(&base, &light, &mut NullTracer);
        let dh = diff_size(&base, &heavy, &mut NullTracer);
        assert!(dh > dl * 3, "heavy churn diffs more: {dl} vs {dh}");
    }

    #[test]
    fn patterns_compile_and_some_subjects_match() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut hits = 0;
        for _ in 0..200 {
            let msg = gen_message(&mut rng, 5);
            for p in PATTERNS {
                hits += m(p, std::str::from_utf8(&msg.subject).unwrap()) as u32;
            }
        }
        assert!(
            hits > 10,
            "pattern set should hit generated subjects: {hits}"
        );
        assert!(hits < 800, "but not everything: {hits}");
    }
}
