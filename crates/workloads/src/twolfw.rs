//! `twolf` analogue: simulated-annealing standard-cell placement.
//!
//! TimberWolf places cells on a grid by proposing random swaps/moves and
//! accepting them by the Metropolis criterion under a cooling temperature.
//! The *accept-worsening-move* branch is the canonical phase-behaviour
//! branch: early in the schedule (hot) it is taken most of the time, late
//! (cold) almost never — so its prediction accuracy drifts through the run,
//! and its overall behaviour shifts with the netlist and schedule
//! parameters. This is why twolf shows many input-dependent branches in the
//! paper despite a stable overall misprediction rate (Table 1 vs Figure 3).

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_TEMP_LOOP => "cooling_step_loop" (Loop),
    S_MOVE_LOOP => "moves_per_temp_loop" (Loop),
    S_MOVE_KIND => "move_is_swap" (IfElse),
    S_CELL_OCCUPIED => "target_cell_occupied" (Guard),
    S_DELTA_IMPROVES => "delta_improves" (Search),
    S_ACCEPT_WORSE => "accept_worsening_move" (Search),
    S_NET_SPAN_X => "net_spans_x" (IfElse),
    S_SAME_ROW => "cells_same_row" (IfElse),
    S_BOUNDS => "move_in_bounds" (Guard),
    S_PIN_LOOP => "net_pin_loop" (Loop),
    S_REJECT_FROZEN => "temperature_frozen" (Guard),
    S_IN_WINDOW => "move_within_range_window" (Guard),
    S_NET_SMALL => "net_is_two_pin" (TypeCheck),
}

/// A placement problem: cells connected by 2-pin and multi-pin nets on a
/// `rows x cols` grid.
#[derive(Clone, Debug)]
pub struct Netlist {
    rows: usize,
    cols: usize,
    /// nets as lists of cell ids
    nets: Vec<Vec<u32>>,
    /// nets touching each cell
    cell_nets: Vec<Vec<u32>>,
    num_cells: usize,
}

impl Netlist {
    /// Generates a random netlist with `num_cells` cells on a grid with
    /// ~30% free sites, average net degree set by `avg_degree` (x10).
    pub fn generate(num_cells: usize, avg_degree_x10: u32, rng: &mut Xoshiro256) -> Self {
        assert!(num_cells >= 4, "need at least 4 cells");
        let sites = (num_cells * 13 / 10).max(num_cells + 2);
        let cols = (sites as f64).sqrt().ceil() as usize;
        let rows = sites.div_ceil(cols);
        let num_nets = num_cells * avg_degree_x10 as usize / 25;
        let mut nets = Vec::with_capacity(num_nets);
        for _ in 0..num_nets.max(1) {
            let degree = 2 + rng.below(4) as usize;
            let mut pins: Vec<u32> = (0..degree)
                .map(|_| rng.below(num_cells as u64) as u32)
                .collect();
            pins.sort_unstable();
            pins.dedup();
            if pins.len() >= 2 {
                nets.push(pins);
            }
        }
        let mut cell_nets = vec![Vec::new(); num_cells];
        for (ni, net) in nets.iter().enumerate() {
            for &c in net {
                cell_nets[c as usize].push(ni as u32);
            }
        }
        Self {
            rows,
            cols,
            nets,
            cell_nets,
            num_cells,
        }
    }
}

/// Placement state: cell -> site and site -> cell maps.
struct Placement {
    pos: Vec<usize>,    // cell -> site index
    occupant: Vec<i32>, // site -> cell id or -1
}

/// Half-perimeter wirelength of one net under a placement.
fn net_hpwl(net: &[u32], pos: &[usize], cols: usize, t: &mut dyn Tracer) -> i64 {
    let (mut min_x, mut max_x) = (i64::MAX, i64::MIN);
    let (mut min_y, mut max_y) = (i64::MAX, i64::MIN);
    br!(t, S_NET_SMALL, net.len() == 2);
    let mut i = 0usize;
    while br!(t, S_PIN_LOOP, i < net.len()) {
        let p = pos[net[i] as usize];
        let (x, y) = ((p % cols) as i64, (p / cols) as i64);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
        i += 1;
    }
    // branch on which dimension dominates (router-direction heuristic)
    let dx = max_x - min_x;
    let dy = max_y - min_y;
    br!(t, S_NET_SPAN_X, dx >= dy);
    dx + dy
}

/// Wirelength over the nets touching `cell`.
fn cell_cost(nl: &Netlist, cell: u32, pos: &[usize], t: &mut dyn Tracer) -> i64 {
    nl.cell_nets[cell as usize]
        .iter()
        .map(|&ni| net_hpwl(&nl.nets[ni as usize], pos, nl.cols, t))
        .sum()
}

/// Runs the annealing schedule; returns the final total wirelength.
/// `temp0_x10` is the starting temperature × 10 (e.g. 400 = 40.0).
pub fn anneal(
    nl: &Netlist,
    temp_steps: u32,
    moves_per_step: u32,
    temp0_x10: u32,
    seed: u64,
    t: &mut dyn Tracer,
) -> i64 {
    let sites = nl.rows * nl.cols;
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x0770_1F00);
    let mut place = Placement {
        pos: Vec::new(),
        occupant: vec![-1; sites],
    };
    let mut site_order: Vec<usize> = (0..sites).collect();
    rng.shuffle(&mut site_order);
    place.pos = site_order[..nl.num_cells].to_vec();
    for (cell, &site) in place.pos.iter().enumerate() {
        place.occupant[site] = cell as i32;
    }
    // geometric cooling from a temperature that accepts most moves
    let temp0 = temp0_x10 as f64 / 10.0;
    let mut temperature = temp0;
    let cooling = 0.92f64;
    let mut step = 0u32;
    while br!(t, S_TEMP_LOOP, step < temp_steps) {
        let frozen = temperature < 0.05;
        if br!(t, S_REJECT_FROZEN, frozen) {
            break;
        }
        let mut m = 0u32;
        while br!(t, S_MOVE_LOOP, m < moves_per_step) {
            m += 1;
            let cell = rng.below(nl.num_cells as u64) as u32;
            let from = place.pos[cell as usize];
            let to = rng.below(sites as u64) as usize;
            if !br!(t, S_BOUNDS, to != from) {
                continue;
            }
            // TimberWolf's range limiter: as the schedule cools, only moves
            // within a shrinking window around the cell are considered —
            // this guard's bias drifts with temperature (phase behaviour)
            let window = (nl.cols as f64 * (temperature / temp0).max(0.15)) as i64 + 1;
            let dx = ((to % nl.cols) as i64 - (from % nl.cols) as i64).abs();
            let dy = ((to / nl.cols) as i64 - (from / nl.cols) as i64).abs();
            if !br!(t, S_IN_WINDOW, dx <= window && dy <= window) {
                continue;
            }
            let other = place.occupant[to];
            let is_swap = br!(t, S_CELL_OCCUPIED, other >= 0);
            br!(t, S_MOVE_KIND, is_swap);
            br!(t, S_SAME_ROW, from / nl.cols == to / nl.cols);
            // cost before
            let before = cell_cost(nl, cell, &place.pos, t)
                + if is_swap {
                    cell_cost(nl, other as u32, &place.pos, t)
                } else {
                    0
                };
            // tentatively apply
            place.pos[cell as usize] = to;
            if is_swap {
                place.pos[other as usize] = from;
            }
            let after = cell_cost(nl, cell, &place.pos, t)
                + if is_swap {
                    cell_cost(nl, other as u32, &place.pos, t)
                } else {
                    0
                };
            let delta = after - before;
            let accept = if br!(t, S_DELTA_IMPROVES, delta <= 0) {
                true
            } else {
                // Metropolis criterion — the classic phase-behaviour branch
                br!(
                    t,
                    S_ACCEPT_WORSE,
                    rng.unit() < (-(delta as f64) / temperature).exp()
                )
            };
            if accept {
                place.occupant[from] = if is_swap { other } else { -1 };
                place.occupant[to] = cell as i32;
            } else {
                // roll back
                place.pos[cell as usize] = from;
                if is_swap {
                    place.pos[other as usize] = to;
                }
            }
        }
        temperature *= cooling;
        step += 1;
    }
    nl.nets
        .iter()
        .map(|net| net_hpwl(net, &place.pos, nl.cols, t))
        .sum()
}

/// The twolf-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct TwolfWorkload {
    scale: Scale,
}

impl TwolfWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for TwolfWorkload {
    fn name(&self) -> &'static str {
        "twolf"
    }

    fn description(&self) -> &'static str {
        "simulated-annealing standard-cell placer"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = moves per temperature step;
        // level = cells | (temp_steps << 16);
        // variant = degree_x10 | (temp0_x10 << 8)
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 6] = [
            (
                "train",
                "small netlist, hot short schedule",
                401,
                2_600,
                160 | (40 << 16),
                22 | (500 << 8),
            ),
            (
                "ref",
                "large netlist, long cold-tail schedule",
                402,
                6_500,
                420 | (85 << 16),
                26 | (220 << 8),
            ),
            (
                "ext-1",
                "large reduced input",
                403,
                3_600,
                300 | (60 << 16),
                24 | (400 << 8),
            ),
            (
                "ext-2",
                "medium reduced, quenched schedule",
                404,
                3_000,
                220 | (30 << 16),
                20 | (120 << 8),
            ),
            (
                "ext-3",
                "modified ref input",
                405,
                4_800,
                420 | (70 << 16),
                30 | (300 << 8),
            ),
            (
                "ext-4",
                "small reduced, slow anneal",
                406,
                2_400,
                120 | (95 << 16),
                18 | (600 << 8),
            ),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let cells = (input.level & 0xFFFF) as usize;
        let temp_steps = (input.level >> 16) as u32;
        let degree = input.variant & 0xFF;
        let temp0_x10 = input.variant >> 8;
        let nl = Netlist::generate(cells, degree, &mut rng);
        let wl = anneal(&nl, temp_steps, input.size as u32, temp0_x10, input.seed, t);
        std::hint::black_box(wl);
    }

    fn instructions_per_branch(&self) -> f64 {
        7.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::{EdgeProfiler, NullTracer};

    fn small_netlist(seed: u64) -> Netlist {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        Netlist::generate(60, 24, &mut rng)
    }

    #[test]
    fn netlist_is_well_formed() {
        let nl = small_netlist(1);
        assert!(nl.rows * nl.cols >= nl.num_cells);
        for net in &nl.nets {
            assert!(net.len() >= 2);
            for &c in net {
                assert!((c as usize) < nl.num_cells);
                assert!(nl.cell_nets[c as usize]
                    .iter()
                    .any(|&n| { nl.nets[n as usize].contains(&c) }));
            }
        }
    }

    #[test]
    fn annealing_reduces_wirelength() {
        let nl = small_netlist(2);
        let quick = anneal(&nl, 1, 10, 400, 7, &mut NullTracer);
        let long = anneal(&nl, 60, 400, 400, 7, &mut NullTracer);
        assert!(
            long < quick,
            "long schedule ({long}) should beat a near-random placement ({quick})"
        );
    }

    #[test]
    fn accept_worse_rate_declines_with_cooling() {
        // Run two separate schedules: a hot one (few steps, high temp) and
        // the tail of a cold one, comparing the Metropolis branch's bias.
        let nl = small_netlist(3);
        let rate_for_steps = |steps: u32| {
            let mut prof = EdgeProfiler::new(SITES.len());
            anneal(&nl, steps, 300, 400, 11, &mut prof);
            prof.edge(S_ACCEPT_WORSE).taken_rate().unwrap()
        };
        let hot = rate_for_steps(3); // only hot phase
        let full = rate_for_steps(60); // includes long cold tail
        assert!(
            hot > full + 0.1,
            "hot acceptance {hot:.3} should exceed whole-run acceptance {full:.3}"
        );
    }

    #[test]
    fn hpwl_of_single_colocated_net_is_zero() {
        let nl = small_netlist(4);
        let pos: Vec<usize> = vec![5; nl.num_cells];
        assert_eq!(net_hpwl(&nl.nets[0], &pos, nl.cols, &mut NullTracer), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let nl = small_netlist(5);
        let a = anneal(&nl, 10, 100, 400, 9, &mut NullTracer);
        let b = anneal(&nl, 10, 100, 400, 9, &mut NullTracer);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 4 cells")]
    fn rejects_degenerate_netlist() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let _ = Netlist::generate(2, 20, &mut rng);
    }
}
