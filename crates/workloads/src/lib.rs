//! `workloads` — a from-scratch benchmark suite standing in for the SPEC
//! CPU2000 integer benchmarks used by the paper.
//!
//! The paper instruments the twelve SPEC INT 2000 programs with Pin and
//! profiles their conditional branches across multiple input sets. SPEC
//! binaries and inputs are proprietary, so this crate reimplements each
//! benchmark's *algorithmic domain* as a real (not stubbed) Rust program
//! whose interesting conditional branches are instrumented through
//! [`btrace::Tracer`]:
//!
//! | here | SPEC analogue | domain |
//! |------|---------------|--------|
//! | [`bzip2w`] | bzip2 | block compression (RLE + BWT + MTF + entropy model) |
//! | [`gzipw`]  | gzip  | LZ77 with hash chains and level-indexed `config_table` (the paper's Figure 7 loop) |
//! | [`twolfw`] | twolf | simulated-annealing standard-cell placement |
//! | [`gapw`]   | gap   | dynamically-typed math interpreter with small/big integers (the paper's Figure 6 type-check) |
//! | [`craftyw`]| crafty| chess move generation + alpha-beta search |
//! | [`parserw`]| parser| dictionary-based natural-language parser |
//! | [`mcfw`]   | mcf   | min-cost network flow (SPFA-based) |
//! | [`gccw`]   | gcc   | toy C-subset compiler (lex, parse, fold, codegen) |
//! | [`vprw`]   | vpr   | FPGA maze routing on a grid |
//! | [`vortexw`]| vortex| object-oriented in-memory database |
//! | [`perlw`]  | perlbmk | text/pattern-matching interpreter (diffmail-like) |
//! | [`eonw`]   | eon   | small ray tracer |
//!
//! Every workload is deterministic given an [`InputSet`] (seeded generators,
//! no wall-clock or platform dependence) and exposes several input sets —
//! `train`, `ref`, and `ext-1`…`ext-N` mirroring the paper's Table 2/Table 4
//! methodology.
//!
//! ```
//! use btrace::{EdgeProfiler, Tracer};
//! use workloads::{suite, Scale};
//!
//! for workload in suite(Scale::Tiny) {
//!     let input = workload.input_set("train").expect("every workload has train");
//!     let mut edges = EdgeProfiler::new(workload.sites().len());
//!     workload.run(&input, &mut edges);
//!     assert!(edges.dynamic_count().unwrap() > 0, "{}", workload.name());
//! }
//! ```

#[macro_use]
mod macros;

mod datagen;
mod rng;

pub mod bzip2w;
pub mod craftyw;
pub mod eonw;
pub mod gapw;
pub mod gccw;
pub mod gzipw;
pub mod huffman;
pub mod mcfw;
pub mod parserw;
pub mod perlw;
pub mod twolfw;
pub mod vortexw;
pub mod vprw;

pub use datagen::{entropy_bits_per_byte, generate as generate_data, DataKind};
pub use rng::Xoshiro256;

use btrace::{SiteDecl, Tracer};

/// One named input data set for a workload.
///
/// The four numeric knobs are interpreted by each workload (e.g. for the
/// gzip analogue, `size` is the input length in bytes, `level` the
/// compression level, `variant` the data flavour). Two input sets with equal
/// fields produce bit-identical branch streams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InputSet {
    /// Input-set name: `"train"`, `"ref"`, or `"ext-1"`…`"ext-6"`.
    pub name: &'static str,
    /// Human-readable description (mirrors the paper's Table 2/4 notes).
    pub description: &'static str,
    /// Seed for the input generator.
    pub seed: u64,
    /// Main work amount (bytes, operations, nodes — workload-specific).
    pub size: u64,
    /// Workload-specific level/parameter (compression level, search depth …).
    pub level: i64,
    /// Selects the generator flavour / data mix.
    pub variant: u32,
}

/// Global scaling of workload run lengths.
///
/// The paper's runs are 10⁹–10¹¹ branches; ours default to a few million
/// ([`Scale::Full`]) so the whole evaluation runs in minutes. `Tiny` is for
/// unit tests, `Small` for quick experiment iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// ~2% of full size: unit-test scale.
    Tiny,
    /// ~25% of full size.
    Small,
    /// Full evaluation scale.
    Full,
}

impl Scale {
    /// Multiplier applied to each input set's `size`.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.02,
            Scale::Small => 0.25,
            Scale::Full => 1.0,
        }
    }

    /// Applies the scale to a full-size work amount, with a floor so tiny
    /// runs still exercise every code path.
    pub fn apply(self, full_size: u64) -> u64 {
        ((full_size as f64 * self.factor()) as u64).max(16)
    }
}

/// A benchmark program with instrumented conditional branches.
///
/// `Send + Sync` are supertraits so boxed workloads can be shared with the
/// sweep engine's worker threads; workloads are immutable descriptions
/// (all run state lives on the `run` stack), so every implementation
/// satisfies them automatically.
pub trait Workload: Send + Sync {
    /// Workload name (the SPEC analogue's name, e.g. `"gzip"`).
    fn name(&self) -> &'static str;

    /// One-line description of the program.
    fn description(&self) -> &'static str;

    /// The static branch-site table. Site `i` in this table is traced as
    /// `SiteId(i)`.
    fn sites(&self) -> &'static [SiteDecl];

    /// The workload's input sets. The first two are always `train` and
    /// `ref`; extras are named `ext-1`…`ext-N`.
    fn input_sets(&self) -> Vec<InputSet>;

    /// Runs the program on `input`, reporting every instrumented conditional
    /// branch to `tracer`.
    fn run(&self, input: &InputSet, tracer: &mut dyn Tracer);

    /// Modeled average dynamic instructions per conditional branch, used to
    /// report Table-2-style instruction counts. SPEC INT programs average
    /// roughly 5–8 instructions per conditional branch.
    fn instructions_per_branch(&self) -> f64 {
        7.0
    }

    /// Looks up an input set by name.
    fn input_set(&self, name: &str) -> Option<InputSet> {
        self.input_sets().into_iter().find(|i| i.name == name)
    }
}

/// The full 12-workload suite at the given scale, in the paper's Figure 3
/// order (sorted by dynamic fraction of input-dependent branches).
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(bzip2w::Bzip2Workload::new(scale)),
        Box::new(gzipw::GzipWorkload::new(scale)),
        Box::new(twolfw::TwolfWorkload::new(scale)),
        Box::new(gapw::GapWorkload::new(scale)),
        Box::new(craftyw::CraftyWorkload::new(scale)),
        Box::new(parserw::ParserWorkload::new(scale)),
        Box::new(mcfw::McfWorkload::new(scale)),
        Box::new(gccw::GccWorkload::new(scale)),
        Box::new(vprw::VprWorkload::new(scale)),
        Box::new(vortexw::VortexWorkload::new(scale)),
        Box::new(perlw::PerlWorkload::new(scale)),
        Box::new(eonw::EonWorkload::new(scale)),
    ]
}

/// Looks up one workload of the suite by name.
pub fn by_name(name: &str, scale: Scale) -> Option<Box<dyn Workload>> {
    suite(scale).into_iter().find(|w| w.name() == name)
}

/// The six benchmarks the paper studies with extra input sets (§4.2): those
/// where more than 10% of static branches are input-dependent.
pub const EXTENDED_BENCHMARKS: &[&str] = &["bzip2", "gzip", "twolf", "gap", "crafty", "gcc"];

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::{validate_sites, CountingTracer, RecordingTracer, Tracer};

    #[test]
    fn suite_has_twelve_distinct_workloads() {
        let s = suite(Scale::Tiny);
        assert_eq!(s.len(), 12);
        let mut names: Vec<_> = s.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn every_workload_has_train_and_ref_and_valid_sites() {
        for w in suite(Scale::Tiny) {
            let inputs = w.input_sets();
            assert!(inputs.len() >= 2, "{} needs >= 2 input sets", w.name());
            assert_eq!(inputs[0].name, "train", "{}", w.name());
            assert_eq!(inputs[1].name, "ref", "{}", w.name());
            validate_sites(w.name(), w.sites());
            assert!(!w.sites().is_empty(), "{}", w.name());
            assert!(w.instructions_per_branch() > 1.0);
        }
    }

    #[test]
    fn extended_benchmarks_have_six_extra_inputs_where_required() {
        // Paper Table 4: bzip2 has 4 extras, gzip 6, twolf 4, gap 4,
        // crafty 6, gcc 6 — we require at least 4 extras for each.
        for name in EXTENDED_BENCHMARKS {
            let w = by_name(name, Scale::Tiny).unwrap();
            let extras = w
                .input_sets()
                .iter()
                .filter(|i| i.name.starts_with("ext-"))
                .count();
            assert!(extras >= 4, "{name} has only {extras} extra inputs");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        for w in suite(Scale::Tiny) {
            let input = w.input_set("train").unwrap();
            let mut a = RecordingTracer::new(w.sites().len());
            w.run(&input, &mut a);
            let mut b = RecordingTracer::new(w.sites().len());
            w.run(&input, &mut b);
            assert_eq!(
                a.trace(),
                b.trace(),
                "{} must be deterministic on {}",
                w.name(),
                input.name
            );
            assert!(
                a.trace().len() > 1_000,
                "{} tiny train run should still produce branches, got {}",
                w.name(),
                a.trace().len()
            );
        }
    }

    #[test]
    fn input_sets_differ_from_each_other() {
        // Small rather than Tiny scale: Tiny's work floor compresses the
        // train/ref size gap for workloads with small unit counts (plies,
        // instances), hiding the ordering this test checks.
        for w in suite(Scale::Small) {
            let train = w.input_set("train").unwrap();
            let r = w.input_set("ref").unwrap();
            let mut a = CountingTracer::new();
            w.run(&train, &mut a);
            let mut b = CountingTracer::new();
            w.run(&r, &mut b);
            // ref runs are larger than train runs, as in SPEC
            assert!(
                b.count() > a.count(),
                "{}: ref ({}) should out-run train ({})",
                w.name(),
                b.count(),
                a.count()
            );
        }
    }

    #[test]
    fn all_declared_sites_execute_on_some_input() {
        // Every declared static branch should be reachable on at least one
        // of train/ref — dead sites indicate instrumentation bugs.
        for w in suite(Scale::Tiny) {
            let mut seen = vec![false; w.sites().len()];
            for name in ["train", "ref"] {
                let input = w.input_set(name).unwrap();
                let mut rec = RecordingTracer::new(w.sites().len());
                w.run(&input, &mut rec);
                for (i, &e) in rec.trace().stats().per_site_exec.iter().enumerate() {
                    if e > 0 {
                        seen[i] = true;
                    }
                }
            }
            let dead: Vec<_> = w
                .sites()
                .iter()
                .enumerate()
                .filter(|&(i, _)| !seen[i])
                .map(|(_, d)| d.name)
                .collect();
            assert!(dead.is_empty(), "{}: dead sites {:?}", w.name(), dead);
        }
    }

    #[test]
    fn scale_ordering() {
        assert!(Scale::Tiny.factor() < Scale::Small.factor());
        assert!(Scale::Small.factor() < Scale::Full.factor());
        assert_eq!(Scale::Full.apply(1000), 1000);
        assert_eq!(Scale::Tiny.apply(10), 16, "floor applies");
    }

    #[test]
    fn unknown_lookup_returns_none() {
        assert!(by_name("nonexistent", Scale::Tiny).is_none());
        let w = by_name("gzip", Scale::Tiny).unwrap();
        assert!(w.input_set("no-such-input").is_none());
    }

    #[test]
    fn tracer_sees_sites_within_declared_range() {
        for w in suite(Scale::Tiny) {
            struct RangeCheck {
                max: u32,
                ok: bool,
            }
            impl Tracer for RangeCheck {
                fn branch(&mut self, site: btrace::SiteId, _taken: bool) {
                    if site.0 >= self.max {
                        self.ok = false;
                    }
                }
            }
            let mut rc = RangeCheck {
                max: w.sites().len() as u32,
                ok: true,
            };
            let input = w.input_set("ref").unwrap();
            w.run(&input, &mut rc);
            assert!(rc.ok, "{} traced an out-of-range site", w.name());
        }
    }
}
