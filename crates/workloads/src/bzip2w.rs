//! `bzip2` analogue: block-sorting compression.
//!
//! The real bzip2 pipeline — run-length pre-pass, Burrows–Wheeler transform,
//! move-to-front, zero run-length coding, Huffman coding — implemented per
//! block. The branch behaviour is dominated by the BWT sort comparisons and
//! the MTF search loop, both of which depend directly on the input data's
//! structure: text exits the MTF scan near the front, random data scans
//! deep; smooth graphic/video data needs many more suffix-doubling rounds
//! than text. This is what makes bzip2 the most input-dependent benchmark in
//! the paper's Figure 3.

use crate::datagen::{generate, DataKind};
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_BLOCK_LOOP => "block_loop" (Loop),
    S_RLE_RUN => "rle1_run_extends" (Loop),
    S_RLE_LONG => "rle1_run_reportable" (Guard),
    S_SA_ROUND => "bwt_doubling_round" (Loop),
    S_SA_CMP1 => "bwt_rank_compare" (Search),
    S_SA_CMP2 => "bwt_rank_tiebreak" (Search),
    S_SA_UNIQUE => "bwt_ranks_all_unique" (Guard),
    S_MTF_SCAN => "mtf_scan_loop" (Search),
    S_MTF_FRONT => "mtf_hit_front" (Guard),
    S_ZRL_ZERO => "zero_run_extends" (Loop),
    S_HUF_PICK => "huffman_pick_smaller" (Search),
    S_HUF_LEAF => "huffman_node_is_leaf" (TypeCheck),
    S_GROUP_LOOP => "selector_group_loop" (Loop),
    S_TABLE_BETTER => "selector_table_better" (Search),
}

/// Block size of the compressor (bzip2's `-1` level uses 100 kB; scaled down
/// to keep runs in the millions of branches).
pub const BLOCK_SIZE: usize = 2048;

/// Run-length pre-pass (bzip2's RLE1): runs of 4+ identical bytes are
/// shortened to 4 bytes plus a count. Returns the transformed block.
pub fn rle1(block: &[u8], t: &mut dyn Tracer) -> Vec<u8> {
    let mut out = Vec::with_capacity(block.len());
    let mut i = 0usize;
    while i < block.len() {
        let b = block[i];
        let mut run = 1usize;
        while br!(
            t,
            S_RLE_RUN,
            i + run < block.len() && block[i + run] == b && run < 255 + 4
        ) {
            run += 1;
        }
        if br!(t, S_RLE_LONG, run >= 4) {
            out.extend_from_slice(&[b, b, b, b, (run - 4) as u8]);
        } else {
            out.extend(std::iter::repeat_n(b, run));
        }
        i += run;
    }
    out
}

/// Burrows–Wheeler transform via prefix doubling. Returns the transformed
/// bytes and the primary index.
pub fn bwt(data: &[u8], t: &mut dyn Tracer) -> (Vec<u8>, usize) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let mut rank: Vec<u32> = data.iter().map(|&b| b as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut k = 1usize;
    let mut tmp = vec![0u32; n];
    while br!(t, S_SA_ROUND, k < n) {
        let key = |i: u32| -> (u32, u32) {
            let a = rank[i as usize];
            let b = rank[(i as usize + k) % n];
            (a, b)
        };
        order.sort_by(|&a, &b| {
            let (a1, a2) = key(a);
            let (b1, b2) = key(b);
            if br!(t, S_SA_CMP1, a1 != b1) {
                a1.cmp(&b1)
            } else if br!(t, S_SA_CMP2, a2 != b2) {
                a2.cmp(&b2)
            } else {
                std::cmp::Ordering::Equal
            }
        });
        tmp[order[0] as usize] = 0;
        let mut distinct = 1u32;
        for w in 0..n - 1 {
            let (a, b) = (order[w], order[w + 1]);
            let equal = key(a) == key(b);
            tmp[b as usize] = if equal { distinct - 1 } else { distinct };
            if !equal {
                distinct += 1;
            }
        }
        std::mem::swap(&mut rank, &mut tmp);
        if br!(t, S_SA_UNIQUE, distinct as usize == n) {
            break;
        }
        k *= 2;
    }
    // order holds rotation start indices in sorted order (ties already
    // resolved when ranks became unique)
    let mut out = Vec::with_capacity(n);
    let mut primary = 0usize;
    for (row, &start) in order.iter().enumerate() {
        let s = start as usize;
        out.push(data[(s + n - 1) % n]);
        if s == 0 {
            primary = row;
        }
    }
    (out, primary)
}

/// Move-to-front coding with an instrumented scan loop.
pub fn mtf(data: &[u8], t: &mut dyn Tracer) -> Vec<u8> {
    let mut list: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(data.len());
    for &b in data {
        if br!(t, S_MTF_FRONT, list[0] == b) {
            out.push(0);
            continue;
        }
        let mut pos = 1usize;
        while br!(t, S_MTF_SCAN, list[pos] != b) {
            pos += 1;
        }
        list.copy_within(0..pos, 1);
        list[0] = b;
        out.push(pos as u8);
    }
    out
}

/// The RUNA zero-run symbol (binary digit 1 of the run length, LSB first).
pub const RUNA: u16 = 256;
/// The RUNB zero-run symbol (binary digit 0 of the run length, LSB first).
pub const RUNB: u16 = 257;

/// Zero run-length coding (bzip2's RUNA/RUNB stage): runs of MTF zeros are
/// replaced by their length in LSB-first binary written with RUNA (1) and
/// RUNB (0) digits; the final digit is always RUNA, so runs self-delimit
/// against the following non-zero symbol.
pub fn zrl_encode(mtf_out: &[u8], t: &mut dyn Tracer) -> Vec<u16> {
    let mut symbols: Vec<u16> = Vec::with_capacity(mtf_out.len());
    let mut i = 0usize;
    while i < mtf_out.len() {
        if mtf_out[i] == 0 {
            let mut run = 1usize;
            while br!(
                t,
                S_ZRL_ZERO,
                i + run < mtf_out.len() && mtf_out[i + run] == 0
            ) {
                run += 1;
            }
            let mut r = run;
            while r > 0 {
                symbols.push(if r % 2 == 1 { RUNA } else { RUNB });
                r /= 2;
            }
            i += run;
        } else {
            symbols.push(mtf_out[i] as u16);
            i += 1;
        }
    }
    symbols
}

/// Inverse of [`zrl_encode`].
pub fn zrl_decode(symbols: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(symbols.len());
    let mut i = 0usize;
    while i < symbols.len() {
        if symbols[i] >= RUNA {
            let mut run = 0usize;
            let mut bit = 0u32;
            while i < symbols.len() && symbols[i] >= RUNA {
                if symbols[i] == RUNA {
                    run += 1usize << bit;
                }
                bit += 1;
                i += 1;
            }
            out.extend(std::iter::repeat_n(0u8, run));
        } else {
            out.push(symbols[i] as u8);
            i += 1;
        }
    }
    out
}

/// Zero run-length coding followed by Huffman code-length computation.
/// Returns the total compressed size estimate in bits.
fn entropy_stage(mtf_out: &[u8], t: &mut dyn Tracer) -> u64 {
    let symbols = zrl_encode(mtf_out, t);
    // Two Huffman tables (bzip2 uses up to six): one trained on the first
    // half of the block, one on the second; each 50-symbol group picks the
    // cheaper table, as bzip2's selector stage does.
    let mut freq_a = [0u64; 258];
    let mut freq_b = [0u64; 258];
    for (k, &s) in symbols.iter().enumerate() {
        if k < symbols.len() / 2 {
            freq_a[s as usize] += 1;
        } else {
            freq_b[s as usize] += 1;
        }
    }
    let len_a = huffman_lengths(&freq_a, t);
    let len_b = huffman_lengths(&freq_b, t);
    let cost = |lengths: &[u8], group: &[u16]| -> u64 {
        group
            .iter()
            // untrained symbols cost the escape length 15, as in bzip2
            .map(|&s| match lengths[s as usize] {
                0 => 15,
                l => l as u64,
            })
            .sum()
    };
    let mut bits = 0u64;
    let mut start = 0usize;
    while br!(t, S_GROUP_LOOP, start < symbols.len()) {
        let group = &symbols[start..(start + 50).min(symbols.len())];
        let (ca, cb) = (cost(&len_a, group), cost(&len_b, group));
        bits += if br!(t, S_TABLE_BETTER, ca <= cb) {
            ca
        } else {
            cb
        };
        start += 50;
    }
    bits
}

/// Computes Huffman code lengths with a simple two-queue algorithm over
/// sorted leaf frequencies.
fn huffman_lengths(freq: &[u64], t: &mut dyn Tracer) -> Vec<u8> {
    #[derive(Clone)]
    struct Node {
        weight: u64,
        kids: Vec<usize>, // leaf symbol indices under this node
    }
    let mut leaves: Vec<Node> = freq
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0)
        .map(|(s, &f)| Node {
            weight: f,
            kids: vec![s],
        })
        .collect();
    let mut lengths = vec![0u8; freq.len()];
    if leaves.len() <= 1 {
        if let Some(n) = leaves.first() {
            lengths[n.kids[0]] = 1;
        }
        return lengths;
    }
    leaves.sort_by_key(|n| n.weight);
    let mut merged: std::collections::VecDeque<Node> = std::collections::VecDeque::new();
    let mut leaf_q: std::collections::VecDeque<Node> = leaves.into();
    let take = |t: &mut dyn Tracer,
                leaf_q: &mut std::collections::VecDeque<Node>,
                merged: &mut std::collections::VecDeque<Node>|
     -> Node {
        let from_leaf = match (leaf_q.front(), merged.front()) {
            (Some(l), Some(m)) => l.weight <= m.weight,
            (Some(_), None) => true,
            _ => false,
        };
        if br!(t, S_HUF_PICK, from_leaf) {
            leaf_q.pop_front().expect("checked front")
        } else {
            merged.pop_front().expect("checked front")
        }
    };
    while leaf_q.len() + merged.len() > 1 {
        let a = take(t, &mut leaf_q, &mut merged);
        let b = take(t, &mut leaf_q, &mut merged);
        for node in [&a, &b] {
            // every symbol under a merged node gains one bit of depth
            br!(t, S_HUF_LEAF, node.kids.len() == 1);
            for &s in &node.kids {
                lengths[s] += 1;
            }
        }
        let mut kids = a.kids;
        kids.extend(b.kids);
        merged.push_back(Node {
            weight: a.weight + b.weight,
            kids,
        });
    }
    lengths
}

/// Inverse of [`rle1`]: expands `[b b b b count]` groups back into runs.
pub fn rle1_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0usize;
    // length of the current literal run *in the encoded stream* — the
    // output tail cannot be used for detection because a decoded long run
    // would make the next literal of the same byte look like a 4-run
    let mut run = 0usize;
    let mut prev: Option<u8> = None;
    while i < data.len() {
        let b = data[i];
        i += 1;
        out.push(b);
        if prev == Some(b) {
            run += 1;
        } else {
            run = 1;
            prev = Some(b);
        }
        if run == 4 {
            // a literal run of exactly 4 is always followed by its extension
            // count in the encoded stream
            let extra = data[i] as usize;
            i += 1;
            out.extend(std::iter::repeat_n(b, extra));
            run = 0;
            prev = None;
        }
    }
    out
}

/// Inverse of [`mtf`].
pub fn mtf_decode(codes: &[u8]) -> Vec<u8> {
    let mut list: Vec<u8> = (0..=255).collect();
    let mut out = Vec::with_capacity(codes.len());
    for &pos in codes {
        let b = list[pos as usize];
        list.copy_within(0..pos as usize, 1);
        list[0] = b;
        out.push(b);
    }
    out
}

/// Inverse Burrows–Wheeler transform via the standard LF mapping.
pub fn inverse_bwt(last_column: &[u8], primary: usize) -> Vec<u8> {
    let n = last_column.len();
    if n == 0 {
        return Vec::new();
    }
    // counts[c] = number of bytes < c in the last column
    let mut counts = [0usize; 257];
    for &b in last_column {
        counts[b as usize + 1] += 1;
    }
    for c in 1..257 {
        counts[c] += counts[c - 1];
    }
    // next[i]: row of the rotation that starts one position later
    let mut occ = [0usize; 256];
    let mut lf = vec![0usize; n];
    for (row, &b) in last_column.iter().enumerate() {
        lf[row] = counts[b as usize] + occ[b as usize];
        occ[b as usize] += 1;
    }
    // walk backwards from the primary row, reconstructing right to left
    let mut out = vec![0u8; n];
    let mut row = primary;
    for slot in out.iter_mut().rev() {
        *slot = last_column[row];
        row = lf[row];
    }
    out
}

/// One fully decodable compressed block: the ZRL/MTF symbol stream plus the
/// BWT primary index (the bit-level Huffman packing is modeled by
/// [`compress`]'s size accounting; the symbol stream is the information
/// content).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// BWT primary row index.
    pub primary: u32,
    /// ZRL-coded MTF symbols (0–255 literals, RUNA/RUNB run digits).
    pub symbols: Vec<u16>,
}

/// Compresses one block into decodable form.
pub fn encode_block(raw: &[u8], t: &mut dyn Tracer) -> Block {
    let pre = rle1(raw, t);
    let (transformed, primary) = bwt(&pre, t);
    let coded = mtf(&transformed, t);
    Block {
        primary: primary as u32,
        symbols: zrl_encode(&coded, t),
    }
}

/// Decompresses a [`Block`] back to the original bytes.
pub fn decode_block(block: &Block) -> Vec<u8> {
    let coded = zrl_decode(&block.symbols);
    let transformed = mtf_decode(&coded);
    let pre = inverse_bwt(&transformed, block.primary as usize);
    rle1_decode(&pre)
}

/// Errors from [`decompress_bytes`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bzip2Error {
    /// The container ended early or a length field is inconsistent.
    Malformed,
    /// The embedded Huffman stream failed to decode.
    Entropy(crate::huffman::HuffmanError),
}

impl std::fmt::Display for Bzip2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bzip2Error::Malformed => f.write_str("malformed bzip2w container"),
            Bzip2Error::Entropy(e) => write!(f, "entropy stream: {e}"),
        }
    }
}

impl std::error::Error for Bzip2Error {}

impl From<crate::huffman::HuffmanError> for Bzip2Error {
    fn from(e: crate::huffman::HuffmanError) -> Self {
        Bzip2Error::Entropy(e)
    }
}

/// Compresses `data` into an actual byte container: per block, the BWT
/// primary index, the symbol count, the 258 Huffman code lengths, and the
/// canonical-Huffman bitstream of the ZRL symbols. The inverse is
/// [`decompress_bytes`].
pub fn compress_bytes(data: &[u8], t: &mut dyn Tracer) -> Vec<u8> {
    use crate::huffman::{BitWriter, Codec};
    let mut out = Vec::new();
    let blocks: Vec<Block> = data
        .chunks(BLOCK_SIZE)
        .map(|chunk| encode_block(chunk, t))
        .collect();
    out.extend_from_slice(&(blocks.len() as u32).to_le_bytes());
    for block in &blocks {
        let mut freq = [0u64; 258];
        for &sym in &block.symbols {
            freq[sym as usize] += 1;
        }
        let codec = Codec::from_frequencies(&freq).expect("counted frequencies are valid");
        let mut w = BitWriter::new();
        codec.encode(&block.symbols, &mut w);
        let payload = w.into_bytes();
        out.extend_from_slice(&block.primary.to_le_bytes());
        out.extend_from_slice(&(block.symbols.len() as u32).to_le_bytes());
        for sym in 0..258usize {
            out.push(codec.length(sym));
        }
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    out
}

/// Decompresses a [`compress_bytes`] container.
///
/// # Errors
///
/// [`Bzip2Error`] on truncated or corrupt input.
pub fn decompress_bytes(container: &[u8]) -> Result<Vec<u8>, Bzip2Error> {
    use crate::huffman::{canonical_codes, BitReader};
    let mut pos = 0usize;
    let read_u32 = |pos: &mut usize| -> Result<u32, Bzip2Error> {
        let end = *pos + 4;
        let bytes: [u8; 4] = container
            .get(*pos..end)
            .ok_or(Bzip2Error::Malformed)?
            .try_into()
            .expect("slice of length 4");
        *pos = end;
        Ok(u32::from_le_bytes(bytes))
    };
    let num_blocks = read_u32(&mut pos)?;
    let mut out = Vec::new();
    for _ in 0..num_blocks {
        let primary = read_u32(&mut pos)?;
        let count = read_u32(&mut pos)? as usize;
        let lengths: Vec<u8> = container
            .get(pos..pos + 258)
            .ok_or(Bzip2Error::Malformed)?
            .to_vec();
        pos += 258;
        let payload_len = read_u32(&mut pos)? as usize;
        let payload = container
            .get(pos..pos + payload_len)
            .ok_or(Bzip2Error::Malformed)?;
        pos += payload_len;
        let codes = canonical_codes(&lengths)?;
        let codec = crate::huffman::Codec::from_parts(lengths, codes);
        let mut r = BitReader::new(payload);
        let symbols = codec.decode(&mut r, count)?;
        out.extend(decode_block(&Block { primary, symbols }));
    }
    if pos != container.len() {
        return Err(Bzip2Error::Malformed);
    }
    Ok(out)
}

/// Compresses `data` block by block, returning the modeled output size in
/// bits (the pipeline's observable result).
pub fn compress(data: &[u8], t: &mut dyn Tracer) -> u64 {
    let mut bits = 0u64;
    let mut start = 0usize;
    while br!(t, S_BLOCK_LOOP, start < data.len()) {
        let end = (start + BLOCK_SIZE).min(data.len());
        let pre = rle1(&data[start..end], t);
        let (transformed, _primary) = bwt(&pre, t);
        let coded = mtf(&transformed, t);
        bits += entropy_stage(&coded, t);
        start = end;
    }
    bits
}

/// The bzip2-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct Bzip2Workload {
    scale: Scale,
}

impl Bzip2Workload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for Bzip2Workload {
    fn name(&self) -> &'static str {
        "bzip2"
    }

    fn description(&self) -> &'static str {
        "block-sorting compressor (RLE + BWT + MTF + Huffman)"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        let table: [(&'static str, &'static str, u64, u64, u32); 6] = [
            (
                "train",
                "input.compressed: already-compressed data",
                301,
                32 * 1024,
                5,
            ),
            ("ref", "input.source: program source", 302, 160 * 1024, 1),
            ("ext-1", "input.graphic", 303, 64 * 1024, 3),
            ("ext-2", "gcc-emitted text", 304, 56 * 1024, 0),
            ("ext-3", "11MB-class text file (scaled)", 305, 96 * 1024, 0),
            ("ext-4", "video file", 306, 72 * 1024, 4),
        ];
        table
            .iter()
            .map(|&(name, description, seed, size, variant)| InputSet {
                name,
                description,
                seed,
                size: self.scale.apply(size),
                level: 0,
                variant,
            })
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let kind = DataKind::from_variant(input.variant);
        let data = generate(kind, input.size as usize, input.seed);
        let bits = compress(&data, t);
        std::hint::black_box(bits);
    }

    fn instructions_per_branch(&self) -> f64 {
        9.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::{EdgeProfiler, NullTracer};

    /// Reference BWT by naive full rotation sort (test oracle).
    fn bwt_naive(data: &[u8]) -> (Vec<u8>, usize) {
        let n = data.len();
        let mut rot: Vec<usize> = (0..n).collect();
        rot.sort_by(|&a, &b| {
            (0..n)
                .map(|i| data[(a + i) % n].cmp(&data[(b + i) % n]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let out = rot.iter().map(|&s| data[(s + n - 1) % n]).collect();
        let primary = rot.iter().position(|&s| s == 0).unwrap();
        (out, primary)
    }

    #[test]
    fn bwt_matches_naive_oracle() {
        for (seed, kind) in [
            (1, DataKind::Text),
            (2, DataKind::Random),
            (3, DataKind::Log),
        ] {
            let data = generate(kind, 300, seed);
            let (fast, p_fast) = bwt(&data, &mut NullTracer);
            let (naive, p_naive) = bwt_naive(&data);
            assert_eq!(fast, naive, "{kind:?}");
            assert_eq!(p_fast, p_naive, "{kind:?}");
        }
    }

    #[test]
    fn bwt_known_small_case() {
        // classic example: "banana"
        let (out, primary) = bwt(b"banana", &mut NullTracer);
        let (expect, p) = bwt_naive(b"banana");
        assert_eq!(out, expect);
        assert_eq!(primary, p);
    }

    #[test]
    fn rle1_compresses_runs_and_preserves_short_data() {
        let t = &mut NullTracer;
        assert_eq!(rle1(b"abc", t), b"abc");
        let out = rle1(&[7u8; 10], t);
        assert_eq!(out, vec![7, 7, 7, 7, 6]);
        let mixed = rle1(b"xxxxxyz", t);
        assert_eq!(mixed, vec![b'x', b'x', b'x', b'x', 1, b'y', b'z']);
    }

    #[test]
    fn mtf_front_hits_dominate_after_bwt_of_text() {
        let data = generate(DataKind::Text, 4_000, 9);
        let (transformed, _) = bwt(&data, &mut NullTracer);
        let mut prof = EdgeProfiler::new(SITES.len());
        let coded = mtf(&transformed, &mut prof);
        let zeros = coded.iter().filter(|&&b| b == 0).count();
        assert!(
            zeros * 3 > coded.len(),
            "BWT output should be MTF-friendly: {zeros}/{}",
            coded.len()
        );
    }

    #[test]
    fn compression_ratio_orders_data_kinds() {
        let bits_for = |kind| {
            let data = generate(kind, 16_384, 21);
            compress(&data, &mut NullTracer)
        };
        let text = bits_for(DataKind::Text);
        let random = bits_for(DataKind::Random);
        assert!(
            text < random / 2,
            "text ({text} bits) must compress far better than random ({random} bits)"
        );
        assert!(
            random <= 16_384 * 9,
            "random stays near 8 bits/byte + overhead"
        );
    }

    #[test]
    fn huffman_lengths_satisfy_kraft() {
        let mut freq = [0u64; 258];
        for (i, f) in freq.iter_mut().enumerate().take(32) {
            *f = (i as u64 + 1) * (i as u64 + 1);
        }
        let lengths = huffman_lengths(&freq, &mut NullTracer);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft sum {kraft}");
        assert!(kraft > 0.999, "a full Huffman tree is tight: {kraft}");
    }

    #[test]
    fn huffman_rare_symbols_get_longer_codes() {
        let mut freq = [0u64; 258];
        freq[0] = 1000;
        freq[1] = 1;
        freq[2] = 1;
        let lengths = huffman_lengths(&freq, &mut NullTracer);
        assert!(lengths[0] < lengths[1]);
        assert_eq!(lengths[1], lengths[2]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(compress(&[], &mut NullTracer), 0);
        let (out, p) = bwt(&[], &mut NullTracer);
        assert!(out.is_empty());
        assert_eq!(p, 0);
    }

    #[test]
    fn block_roundtrip_all_kinds() {
        for (kind, seed) in [
            (DataKind::Text, 41),
            (DataKind::Source, 42),
            (DataKind::Random, 43),
            (DataKind::Graphic, 44),
            (DataKind::Video, 45),
            (DataKind::Log, 46),
        ] {
            let data = generate(kind, 1_800, seed);
            let block = encode_block(&data, &mut NullTracer);
            assert_eq!(decode_block(&block), data, "{kind:?}");
        }
    }

    #[test]
    fn block_roundtrip_pathological_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![7],
            vec![7; 2_000],               // one huge run (> 259)
            b"abababababababab".to_vec(), // periodic
            (0..=255u8).collect(),        // all distinct
            b"aaaabaaaabaaaab".to_vec(),  // 4-runs at boundaries
            vec![0; 300].into_iter().chain(vec![1; 300]).collect(),
        ];
        for data in cases {
            let block = encode_block(&data, &mut NullTracer);
            assert_eq!(decode_block(&block), data, "len {}", data.len());
        }
    }

    #[test]
    fn byte_container_roundtrips() {
        for (kind, seed, len) in [
            (DataKind::Text, 71, 9_000),
            (DataKind::Random, 72, 5_000),
            (DataKind::Graphic, 73, 7_000),
        ] {
            let data = generate(kind, len, seed);
            let container = compress_bytes(&data, &mut NullTracer);
            assert_eq!(decompress_bytes(&container).unwrap(), data, "{kind:?}");
            if kind == DataKind::Text {
                assert!(
                    container.len() < data.len(),
                    "text must shrink: {} -> {}",
                    data.len(),
                    container.len()
                );
            }
        }
        // empty input
        let container = compress_bytes(&[], &mut NullTracer);
        assert_eq!(decompress_bytes(&container).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let data = generate(DataKind::Text, 3_000, 77);
        let container = compress_bytes(&data, &mut NullTracer);
        // truncation
        assert!(decompress_bytes(&container[..container.len() - 5]).is_err());
        assert!(decompress_bytes(&container[..2]).is_err());
        // trailing garbage
        let mut long = container.clone();
        long.push(0);
        assert_eq!(decompress_bytes(&long), Err(Bzip2Error::Malformed));
    }

    #[test]
    fn rle1_roundtrip_long_runs() {
        let t = &mut NullTracer;
        for run_len in [1usize, 3, 4, 5, 258, 259, 260, 600] {
            let data = vec![9u8; run_len];
            assert_eq!(rle1_decode(&rle1(&data, t)), data, "run {run_len}");
        }
        // mixed content with runs touching the cap
        let mut mixed = vec![1u8; 259];
        mixed.extend_from_slice(b"xyz");
        mixed.extend(vec![1u8; 263]);
        assert_eq!(rle1_decode(&rle1(&mixed, t)), mixed);
    }

    #[test]
    fn inverse_bwt_inverts_bwt() {
        for (kind, seed) in [(DataKind::Text, 5), (DataKind::Random, 6)] {
            let data = generate(kind, 700, seed);
            let (last, primary) = bwt(&data, &mut NullTracer);
            assert_eq!(inverse_bwt(&last, primary), data, "{kind:?}");
        }
        let (last, primary) = bwt(b"banana", &mut NullTracer);
        assert_eq!(inverse_bwt(&last, primary), b"banana");
    }

    #[test]
    fn zrl_roundtrip_and_self_delimiting_runs() {
        let t = &mut NullTracer;
        let cases: Vec<Vec<u8>> = vec![
            vec![0],
            vec![0, 0, 0, 5, 0, 0, 9],
            vec![0; 100],
            vec![5, 6, 7],
            vec![0, 1, 0, 0, 2, 0, 0, 0, 3],
        ];
        for mtf_out in cases {
            let symbols = zrl_encode(&mtf_out, t);
            assert_eq!(zrl_decode(&symbols), mtf_out, "{mtf_out:?}");
        }
    }

    #[test]
    fn mtf_decode_inverts_mtf() {
        let data = generate(DataKind::Log, 2_000, 9);
        let coded = mtf(&data, &mut NullTracer);
        assert_eq!(mtf_decode(&coded), data);
    }

    #[test]
    fn mtf_depth_differs_text_vs_random() {
        // The input-dependence driver: MTF scan depth (taken rate of the
        // scan loop) is much higher for random data than for BWT'd text.
        let scan_rate = |kind| {
            let data = generate(kind, 8_192, 33);
            let (transformed, _) = bwt(&data, &mut NullTracer);
            let mut prof = EdgeProfiler::new(SITES.len());
            mtf(&transformed, &mut prof);
            prof.edge(S_MTF_SCAN).taken_rate().unwrap()
        };
        let text = scan_rate(DataKind::Text);
        let random = scan_rate(DataKind::Random);
        assert!(
            random > text,
            "random scans deeper: text={text:.3} random={random:.3}"
        );
    }
}
