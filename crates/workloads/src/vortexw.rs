//! `vortex` analogue: an object-oriented in-memory database.
//!
//! A hand-built B-tree (order 16) storing typed records, driven by
//! transaction mixes of inserts, lookups, deletes and range scans — the
//! schema-manipulation pattern of SPEC vortex. The branch profile follows
//! the key distribution (sequential keys descend one spine; random keys
//! spread; skewed keys revisit hot nodes) and the operation mix.

use crate::rng::Xoshiro256;
use crate::{InputSet, Scale, Workload};
use btrace::{SiteDecl, Tracer};

declare_sites! {
    S_TXN_LOOP => "transaction_loop" (Loop),
    S_OP_IS_QUERY => "op_is_query" (TypeCheck),
    S_DESCEND => "btree_descend_loop" (Loop),
    S_KEY_SEARCH => "node_key_search" (Search),
    S_IS_LEAF => "node_is_leaf" (TypeCheck),
    S_FOUND => "key_found" (Guard),
    S_NODE_FULL => "leaf_node_full" (Guard),
    S_SPLIT_ROOT => "split_reaches_root" (Guard),
    S_SCAN_LOOP => "range_scan_loop" (Loop),
    S_KIND_CHECK => "record_kind_matches" (TypeCheck),
    S_DELETE_HIT => "delete_target_present" (Guard),
    S_UNDERFLOW => "leaf_underflow" (Guard),
    S_SCAN_IN_RANGE => "scan_record_in_range" (Guard),
    S_PAYLOAD_OK => "payload_checksum_ok" (Guard),
}

const ORDER: usize = 16; // max keys per node

/// A typed database record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Record {
    /// Primary key.
    pub key: u64,
    /// Record type tag (vortex's object kinds).
    pub kind: u8,
    /// Payload checksum stand-in.
    pub payload: u64,
}

// children stay individually boxed: the per-child pointer chase mimics the
// object-database node traversal of the original vortex benchmark
#[allow(clippy::vec_box)]
enum Node {
    Leaf {
        records: Vec<Record>,
    },
    Inner {
        keys: Vec<u64>,
        children: Vec<Box<Node>>,
    },
}

/// An order-16 B-tree of records.
pub struct BTree {
    root: Box<Node>,
    len: usize,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        Self {
            root: Box::new(Node::Leaf {
                records: Vec::new(),
            }),
            len: 0,
        }
    }

    /// Number of records stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Child index for descending an inner node: separator keys equal to the
    /// search key route right (the separator is the first key of the right
    /// subtree after a leaf split).
    fn position_inner(keys: &[u64], key: u64, t: &mut dyn Tracer) -> usize {
        let mut i = 0usize;
        while br!(t, S_KEY_SEARCH, i < keys.len() && keys[i] <= key) {
            i += 1;
        }
        i
    }

    /// Linear key search within a leaf, tracing each comparison — the
    /// hottest branch of the workload, exactly like vortex's `Chunk` scans.
    fn position_rec(records: &[Record], key: u64, t: &mut dyn Tracer) -> usize {
        let mut i = 0usize;
        while br!(t, S_KEY_SEARCH, i < records.len() && records[i].key < key) {
            i += 1;
        }
        i
    }

    /// Looks up a record by key.
    pub fn lookup(&self, key: u64, t: &mut dyn Tracer) -> Option<Record> {
        let mut node = &*self.root;
        loop {
            let is_leaf = matches!(node, Node::Leaf { .. });
            if br!(t, S_IS_LEAF, is_leaf) {
                let Node::Leaf { records } = node else {
                    unreachable!("guarded")
                };
                let i = Self::position_rec(records, key, t);
                let hit = i < records.len() && records[i].key == key;
                return if br!(t, S_FOUND, hit) {
                    Some(records[i])
                } else {
                    None
                };
            }
            let Node::Inner { keys, children } = node else {
                unreachable!("guarded")
            };
            let i = Self::position_inner(keys, key, t);
            br!(t, S_DESCEND, true);
            node = &children[i];
        }
    }

    /// Inserts or overwrites a record. Returns whether the key was new.
    pub fn insert(&mut self, rec: Record, t: &mut dyn Tracer) -> bool {
        let (new, split) = Self::insert_into(&mut self.root, rec, t);
        if let Some((mid, right)) = split {
            if br!(t, S_SPLIT_ROOT, true) {
                let old_root = std::mem::replace(
                    &mut self.root,
                    Box::new(Node::Inner {
                        keys: vec![mid],
                        children: Vec::new(),
                    }),
                );
                let Node::Inner { children, .. } = &mut *self.root else {
                    unreachable!("just built")
                };
                children.push(old_root);
                children.push(right);
            }
        }
        self.len += new as usize;
        new
    }

    fn insert_into(
        node: &mut Node,
        rec: Record,
        t: &mut dyn Tracer,
    ) -> (bool, Option<(u64, Box<Node>)>) {
        match node {
            Node::Leaf { records } => {
                let i = Self::position_rec(records, rec.key, t);
                if i < records.len() && records[i].key == rec.key {
                    records[i] = rec;
                    return (false, None);
                }
                records.insert(i, rec);
                if br!(t, S_NODE_FULL, records.len() > ORDER) {
                    let mid = records.len() / 2;
                    let right: Vec<Record> = records.split_off(mid);
                    let sep = right[0].key;
                    return (true, Some((sep, Box::new(Node::Leaf { records: right }))));
                }
                (true, None)
            }
            Node::Inner { keys, children } => {
                let i = Self::position_inner(keys, rec.key, t);
                br!(t, S_DESCEND, true);
                let (new, split) = Self::insert_into(&mut children[i], rec, t);
                if let Some((sep, right)) = split {
                    keys.insert(i, sep);
                    children.insert(i + 1, right);
                    if keys.len() > ORDER {
                        let mid = keys.len() / 2;
                        let sep_up = keys[mid];
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // sep_up moves up
                        let right_children = children.split_off(mid + 1);
                        return (
                            new,
                            Some((
                                sep_up,
                                Box::new(Node::Inner {
                                    keys: right_keys,
                                    children: right_children,
                                }),
                            )),
                        );
                    }
                }
                (new, None)
            }
        }
    }

    /// Deletes a record by key, rebalancing underfull leaves by borrowing
    /// from or merging with an adjacent sibling, and collapsing the root
    /// when it empties. Returns the removed record.
    pub fn delete(&mut self, key: u64, t: &mut dyn Tracer) -> Option<Record> {
        fn walk(node: &mut Node, key: u64, t: &mut dyn Tracer) -> Option<Record> {
            match node {
                Node::Leaf { records } => {
                    let i = BTree::position_rec(records, key, t);
                    let hit = i < records.len() && records[i].key == key;
                    if br!(t, S_DELETE_HIT, hit) {
                        Some(records.remove(i))
                    } else {
                        None
                    }
                }
                Node::Inner { keys, children } => {
                    let i = BTree::position_inner(keys, key, t);
                    br!(t, S_DESCEND, true);
                    let removed = walk(&mut children[i], key, t);
                    if removed.is_some() {
                        let underfull = match &*children[i] {
                            Node::Leaf { records } => records.len() < ORDER / 4,
                            Node::Inner { keys, .. } => keys.is_empty(),
                        };
                        if br!(t, S_UNDERFLOW, underfull) {
                            BTree::rebalance_child(keys, children, i);
                        }
                    }
                    removed
                }
            }
        }
        let removed = walk(&mut self.root, key, t);
        // collapse a root that merging left with a single child
        if let Node::Inner { keys, children } = &mut *self.root {
            if keys.is_empty() {
                self.root = children.pop().expect("an inner node has children");
            }
        }
        self.len -= removed.is_some() as usize;
        removed
    }

    /// Restores the minimum-fill invariant of the underfull `children[i]`
    /// by borrowing from an adjacent sibling when it can spare an element,
    /// or merging with it otherwise — the standard B-tree deletion fix-up,
    /// applied at every level on the way back up. Separator keys are
    /// maintained as "smallest key of the right subtree".
    #[allow(clippy::vec_box)]
    fn rebalance_child(keys: &mut Vec<u64>, children: &mut Vec<Box<Node>>, i: usize) {
        let leaf_min = ORDER / 4;
        // --- try borrowing from the left sibling ---
        if i > 0 {
            let (left_part, right_part) = children.split_at_mut(i);
            match (&mut *left_part[i - 1], &mut *right_part[0]) {
                (Node::Leaf { records: left }, Node::Leaf { records: child })
                    if left.len() > leaf_min =>
                {
                    let moved = left.pop().expect("left is non-empty");
                    keys[i - 1] = moved.key;
                    child.insert(0, moved);
                    return;
                }
                (
                    Node::Inner {
                        keys: lk,
                        children: lc,
                    },
                    Node::Inner {
                        keys: ck,
                        children: cc,
                    },
                ) if lk.len() >= 2 => {
                    // rotate: left's last child moves over; the parent
                    // separator rotates down, left's last key rotates up
                    ck.insert(0, keys[i - 1]);
                    keys[i - 1] = lk.pop().expect("left has >= 2 keys");
                    cc.insert(0, lc.pop().expect("inner node has children"));
                    return;
                }
                _ => {}
            }
        }
        // --- try borrowing from the right sibling ---
        if i + 1 < children.len() {
            let (left_part, right_part) = children.split_at_mut(i + 1);
            match (&mut *left_part[i], &mut *right_part[0]) {
                (Node::Leaf { records: child }, Node::Leaf { records: right })
                    if right.len() > leaf_min =>
                {
                    let moved = right.remove(0);
                    child.push(moved);
                    keys[i] = right[0].key;
                    return;
                }
                (
                    Node::Inner {
                        keys: ck,
                        children: cc,
                    },
                    Node::Inner {
                        keys: rk,
                        children: rc,
                    },
                ) if rk.len() >= 2 => {
                    ck.push(keys[i]);
                    keys[i] = rk.remove(0);
                    cc.push(rc.remove(0));
                    return;
                }
                _ => {}
            }
        }
        // --- merge with a sibling (prefer left) ---
        if i > 0 {
            let absorbed = *children.remove(i);
            let sep = keys.remove(i - 1);
            match (&mut *children[i - 1], absorbed) {
                (Node::Leaf { records: left }, Node::Leaf { records: child }) => {
                    left.extend(child);
                }
                (
                    Node::Inner {
                        keys: lk,
                        children: lc,
                    },
                    Node::Inner {
                        keys: ck,
                        children: cc,
                    },
                ) => {
                    lk.push(sep);
                    lk.extend(ck);
                    lc.extend(cc);
                }
                _ => unreachable!("siblings are at the same level"),
            }
        } else if i + 1 < children.len() {
            let absorbed = *children.remove(i + 1);
            let sep = keys.remove(i);
            match (&mut *children[i], absorbed) {
                (Node::Leaf { records: child }, Node::Leaf { records: right }) => {
                    child.extend(right);
                }
                (
                    Node::Inner {
                        keys: ck,
                        children: cc,
                    },
                    Node::Inner {
                        keys: rk,
                        children: rc,
                    },
                ) => {
                    ck.push(sep);
                    ck.extend(rk);
                    cc.extend(rc);
                }
                _ => unreachable!("siblings are at the same level"),
            }
        }
        // an only child has no sibling: delete() collapses the root case
    }

    /// Scans `[lo, hi)`, counting records whose kind equals `kind`.
    pub fn scan_count(&self, lo: u64, hi: u64, kind: u8, t: &mut dyn Tracer) -> usize {
        fn walk(node: &Node, lo: u64, hi: u64, kind: u8, t: &mut dyn Tracer, acc: &mut usize) {
            match node {
                Node::Leaf { records } => {
                    let mut i = 0usize;
                    while br!(t, S_SCAN_LOOP, i < records.len()) {
                        let r = records[i];
                        i += 1;
                        if br!(t, S_SCAN_IN_RANGE, r.key >= lo && r.key < hi)
                            && br!(t, S_KIND_CHECK, r.kind == kind)
                        {
                            *acc += 1;
                        }
                    }
                }
                Node::Inner { keys, children } => {
                    for (ci, child) in children.iter().enumerate() {
                        // prune subtrees outside the range
                        let lower_ok = ci == 0 || keys[ci - 1] < hi;
                        let upper_ok = ci == keys.len() || keys[ci] >= lo;
                        if lower_ok && upper_ok {
                            walk(child, lo, hi, kind, t, acc);
                        }
                    }
                }
            }
        }
        let mut acc = 0usize;
        walk(&self.root, lo, hi, kind, t, &mut acc);
        acc
    }

    /// Verifies structural invariants (sorted keys, separator semantics,
    /// uniform depth, and leaf minimum fill except at the root). Panics with
    /// a description on violation; for tests and debugging.
    pub fn check_invariants(&self) {
        fn walk(
            node: &Node,
            lo: u64,
            hi: u64,
            is_root: bool,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) {
            match node {
                Node::Leaf { records } => {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at uneven depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    assert!(records.len() <= ORDER + 1, "leaf overflow");
                    if !is_root {
                        assert!(
                            records.len() >= ORDER / 4,
                            "non-root leaf underfull: {}",
                            records.len()
                        );
                    }
                    for w in records.windows(2) {
                        assert!(w[0].key < w[1].key, "leaf keys out of order");
                    }
                    for r in records {
                        assert!(r.key >= lo && r.key < hi, "leaf key outside subtree range");
                    }
                }
                Node::Inner { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "inner arity mismatch");
                    assert!(!keys.is_empty() || is_root, "empty inner node");
                    for w in keys.windows(2) {
                        assert!(w[0] < w[1], "inner keys out of order");
                    }
                    for (ci, child) in children.iter().enumerate() {
                        let child_lo = if ci == 0 { lo } else { keys[ci - 1] };
                        let child_hi = if ci == keys.len() { hi } else { keys[ci] };
                        walk(child, child_lo, child_hi, false, depth + 1, leaf_depth);
                    }
                }
            }
        }
        let mut leaf_depth = None;
        walk(&self.root, 0, u64::MAX, true, 0, &mut leaf_depth);
    }

    /// Tree depth (for structural tests).
    pub fn depth(&self) -> usize {
        let mut d = 1usize;
        let mut node = &*self.root;
        while let Node::Inner { children, .. } = node {
            node = &children[0];
            d += 1;
        }
        d
    }
}

/// Key-distribution flavours of the transaction generators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum KeyDist {
    Sequential,
    Random,
    Skewed,
}

fn gen_key(dist: KeyDist, counter: &mut u64, rng: &mut Xoshiro256) -> u64 {
    match dist {
        KeyDist::Sequential => {
            *counter += 7;
            *counter
        }
        KeyDist::Random => rng.below(1 << 40),
        KeyDist::Skewed => {
            // 80% of accesses in a hot 1/64 of the space
            if rng.chance(80) {
                rng.below(1 << 34)
            } else {
                rng.below(1 << 40)
            }
        }
    }
}

/// The vortex-analogue workload.
#[derive(Clone, Copy, Debug)]
pub struct VortexWorkload {
    scale: Scale,
}

impl VortexWorkload {
    /// Creates the workload at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self { scale }
    }
}

impl Workload for VortexWorkload {
    fn name(&self) -> &'static str {
        "vortex"
    }

    fn description(&self) -> &'static str {
        "B-tree object database under transaction mixes"
    }

    fn sites(&self) -> &'static [SiteDecl] {
        SITES
    }

    fn input_sets(&self) -> Vec<InputSet> {
        // size = transactions; level = lookup share (%);
        // variant = key distribution (0 seq, 1 random, 2 skewed)
        let table: [(&'static str, &'static str, u64, u64, i64, u32); 4] = [
            (
                "train",
                "lendian.raw: random keys, lookup-heavy",
                1001,
                90_000,
                68,
                1,
            ),
            (
                "ref",
                "lendian1.raw: random keys, mixed ops",
                1002,
                230_000,
                52,
                1,
            ),
            ("ext-1", "skewed keys, delete-heavy", 1003, 110_000, 30, 2),
            ("ext-2", "sequential load, scan-heavy", 1004, 100_000, 55, 0),
        ];
        table
            .iter()
            .map(
                |&(name, description, seed, size, level, variant)| InputSet {
                    name,
                    description,
                    seed,
                    size: self.scale.apply(size),
                    level,
                    variant,
                },
            )
            .collect()
    }

    fn run(&self, input: &InputSet, t: &mut dyn Tracer) {
        let mut rng = Xoshiro256::seed_from_u64(input.seed);
        let dist = match input.variant {
            0 => KeyDist::Sequential,
            1 => KeyDist::Random,
            _ => KeyDist::Skewed,
        };
        let lookup_pct = input.level as u64;
        let mut tree = BTree::new();
        let mut counter = 0u64;
        let mut found = 0u64;
        let mut txn = 0u64;
        // recently inserted keys, so lookups and deletes hit live records
        // (vortex transactions operate on existing objects most of the time)
        let mut live: Vec<u64> = Vec::new();
        while br!(t, S_TXN_LOOP, txn < input.size) {
            txn += 1;
            let roll = rng.below(100);
            let is_query = roll < lookup_pct;
            br!(t, S_OP_IS_QUERY, is_query);
            if is_query {
                let key = if !live.is_empty() && rng.chance(60) {
                    *rng.pick(&live)
                } else {
                    gen_key(dist, &mut counter, &mut rng)
                };
                if let Some(rec) = tree.lookup(key, t) {
                    found += 1;
                    // object integrity check, as vortex validates each
                    // fetched object
                    br!(
                        t,
                        S_PAYLOAD_OK,
                        rec.payload == rec.key.wrapping_mul(0x9E3779B9)
                    );
                }
            } else if roll < lookup_pct + 20 {
                let key = gen_key(dist, &mut counter, &mut rng);
                if live.len() < 4096 {
                    live.push(key);
                }
                tree.insert(
                    Record {
                        key,
                        kind: (key % 5) as u8,
                        payload: key.wrapping_mul(0x9E3779B9),
                    },
                    t,
                );
            } else if roll < lookup_pct + 28 {
                let key = if !live.is_empty() && rng.chance(70) {
                    let i = rng.below(live.len() as u64) as usize;
                    live.swap_remove(i)
                } else {
                    gen_key(dist, &mut counter, &mut rng)
                };
                tree.delete(key, t);
            } else {
                let lo = gen_key(dist, &mut counter, &mut rng);
                let span = 1 + rng.below(1 << 30);
                found += tree.scan_count(lo, lo.saturating_add(span), 2, t) as u64;
            }
        }
        std::hint::black_box((found, tree.len()));
    }

    fn instructions_per_branch(&self) -> f64 {
        7.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btrace::NullTracer;

    fn rec(key: u64) -> Record {
        Record {
            key,
            kind: (key % 5) as u8,
            payload: key * 3,
        }
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        for k in (0..500u64).map(|i| i * 13 % 501) {
            assert!(tree.insert(rec(k), t));
        }
        assert_eq!(tree.len(), 500);
        for k in (0..500u64).map(|i| i * 13 % 501) {
            assert_eq!(tree.lookup(k, t), Some(rec(k)), "key {k}");
        }
        assert_eq!(tree.lookup(999_999, t), None);
    }

    #[test]
    fn overwrite_does_not_grow() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        assert!(tree.insert(rec(5), t));
        let updated = Record {
            key: 5,
            kind: 9,
            payload: 1,
        };
        assert!(!tree.insert(updated, t));
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.lookup(5, t).unwrap().kind, 9);
    }

    #[test]
    fn tree_grows_in_depth_logarithmically() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        for k in 0..5_000u64 {
            tree.insert(rec(k), t);
        }
        let d = tree.depth();
        assert!((2..=5).contains(&d), "depth {d} for 5000 keys at order 16");
    }

    #[test]
    fn keys_remain_sorted_in_leaves() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        let mut rng = Xoshiro256::seed_from_u64(8);
        for _ in 0..2_000 {
            tree.insert(rec(rng.below(1 << 32)), t);
        }
        // a full-range ascending scan visits every record exactly once
        let total = tree.scan_count(0, u64::MAX, 0, t)
            + tree.scan_count(0, u64::MAX, 1, t)
            + tree.scan_count(0, u64::MAX, 2, t)
            + tree.scan_count(0, u64::MAX, 3, t)
            + tree.scan_count(0, u64::MAX, 4, t);
        assert_eq!(total, tree.len());
    }

    #[test]
    fn delete_removes_and_tolerates_missing() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        for k in 0..100u64 {
            tree.insert(rec(k), t);
        }
        assert_eq!(tree.delete(40, t), Some(rec(40)));
        assert_eq!(tree.lookup(40, t), None);
        assert_eq!(tree.delete(40, t), None);
        assert_eq!(tree.len(), 99);
    }

    #[test]
    fn range_scan_counts_by_kind() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        for k in 0..50u64 {
            tree.insert(rec(k), t);
        }
        // kinds cycle 0..5; in [0, 50) each kind appears 10 times
        for kind in 0..5u8 {
            assert_eq!(tree.scan_count(0, 50, kind, t), 10);
        }
        assert_eq!(tree.scan_count(10, 20, 0, t), 2); // keys 10 and 15
    }

    #[test]
    fn delete_rebalances_and_tree_stays_valid() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        for k in 0..3_000u64 {
            tree.insert(rec(k * 2), t);
        }
        tree.check_invariants();
        // delete everything in an order that exercises borrows and merges
        let mut keys: Vec<u64> = (0..3_000u64).map(|k| k * 2).collect();
        let mut rng = Xoshiro256::seed_from_u64(12);
        rng.shuffle(&mut keys);
        for (n, k) in keys.iter().enumerate() {
            assert!(tree.delete(*k, t).is_some(), "key {k}");
            if n % 97 == 0 {
                tree.check_invariants();
            }
        }
        tree.check_invariants();
        assert!(tree.is_empty());
        assert_eq!(tree.depth(), 1, "root must collapse back to a single leaf");
    }

    #[test]
    fn interleaved_inserts_and_deletes_maintain_invariants() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        let mut rng = Xoshiro256::seed_from_u64(77);
        for step in 0..8_000u32 {
            let k = rng.below(600);
            if rng.chance(55) {
                tree.insert(rec(k), t);
            } else {
                tree.delete(k, t);
            }
            if step % 211 == 0 {
                tree.check_invariants();
            }
        }
        tree.check_invariants();
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = &mut NullTracer;
        let mut tree = BTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.lookup(1, t), None);
        assert_eq!(tree.delete(1, t), None);
        assert_eq!(tree.scan_count(0, u64::MAX, 0, t), 0);
        assert_eq!(tree.depth(), 1);
    }
}
