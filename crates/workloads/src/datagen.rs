//! Synthetic input-data generators shared by the compression and text
//! workloads.
//!
//! The paper's input sets differ in *kind* (source code, English text, logs,
//! graphics, video, random data) as well as size; these generators produce
//! deterministic byte streams with the statistical structure of each kind so
//! that, e.g., the gzip analogue's hash-chain branches behave differently on
//! `input.random` than on `input.source`, as they do in the paper.

use crate::rng::Xoshiro256;

/// Flavour of generated input data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// English-like prose built from a word list (SPEC `input.source`-ish).
    Text,
    /// C-like program source (SPEC `*.i` / `input.program`).
    Source,
    /// Server-log lines with timestamps and repeated fields (`input.log`).
    Log,
    /// Smooth 2-D gradient with dithering, like an uncompressed image
    /// (`input.graphic`).
    Graphic,
    /// Frame-correlated bytes, like raw video (bzip2's video input).
    Video,
    /// Incompressible uniform bytes (`input.random`, `input.compressed`).
    Random,
}

impl DataKind {
    /// Maps a workload `variant` knob to a data kind (stable mapping used by
    /// the compression workloads' input tables).
    pub fn from_variant(variant: u32) -> Self {
        match variant % 6 {
            0 => DataKind::Text,
            1 => DataKind::Source,
            2 => DataKind::Log,
            3 => DataKind::Graphic,
            4 => DataKind::Video,
            _ => DataKind::Random,
        }
    }
}

const WORDS: &[&str] = &[
    "the",
    "of",
    "profile",
    "branch",
    "input",
    "data",
    "set",
    "compiler",
    "static",
    "dynamic",
    "prediction",
    "accuracy",
    "time",
    "slice",
    "program",
    "behavior",
    "run",
    "and",
    "with",
    "optimization",
    "execution",
    "dependent",
    "machine",
    "mechanism",
    "predicated",
    "code",
    "performance",
    "benchmark",
    "result",
    "significant",
    "across",
    "change",
    "identify",
];

const IDENTS: &[&str] = &[
    "count", "buf", "ptr", "len", "idx", "tmp", "node", "head", "tail", "val", "acc", "flag",
    "state", "next", "prev", "size", "mask", "cfg", "ctx", "depth",
];

/// Generates `len` bytes of the given kind, deterministically from `seed`.
pub fn generate(kind: DataKind, len: usize, seed: u64) -> Vec<u8> {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xDA7A_6E2E);
    let mut out = Vec::with_capacity(len);
    match kind {
        DataKind::Text => {
            while out.len() < len {
                let w = rng.pick(WORDS);
                out.extend_from_slice(w.as_bytes());
                if rng.chance(8) {
                    out.push(b'.');
                    out.push(if rng.chance(30) { b'\n' } else { b' ' });
                } else {
                    out.push(b' ');
                }
            }
        }
        DataKind::Source => {
            while out.len() < len {
                let indent = rng.below(4) as usize;
                out.extend(std::iter::repeat_n(b' ', indent * 4));
                match rng.below(5) {
                    0 => {
                        out.extend_from_slice(b"int ");
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b" = ");
                        let n = rng.below(10_000);
                        out.extend_from_slice(n.to_string().as_bytes());
                        out.extend_from_slice(b";\n");
                    }
                    1 => {
                        out.extend_from_slice(b"if (");
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b" > ");
                        out.extend_from_slice(rng.below(100).to_string().as_bytes());
                        out.extend_from_slice(b") {\n");
                    }
                    2 => {
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b" += ");
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b";\n");
                    }
                    3 => out.extend_from_slice(b"}\n"),
                    _ => {
                        out.extend_from_slice(b"while (");
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b"--) ");
                        out.extend_from_slice(rng.pick(IDENTS).as_bytes());
                        out.extend_from_slice(b"++;\n");
                    }
                }
            }
        }
        DataKind::Log => {
            let mut ts = 1_000_000u64;
            while out.len() < len {
                ts += rng.below(50);
                out.extend_from_slice(ts.to_string().as_bytes());
                out.extend_from_slice(match rng.below(4) {
                    0 => b" GET /index " as &[u8],
                    1 => b" GET /api/v1 ",
                    2 => b" POST /submit ",
                    _ => b" ERROR timeout ",
                });
                out.extend_from_slice((200 + 100 * rng.below(4)).to_string().as_bytes());
                out.push(b'\n');
            }
        }
        DataKind::Graphic => {
            // Smooth row-major gradient with per-pixel dither: long byte
            // runs with small deltas, very compressible.
            let width = 512usize;
            let mut y = 0usize;
            while out.len() < len {
                for x in 0..width {
                    if out.len() >= len {
                        break;
                    }
                    let base = ((x / 8 + y / 8) % 256) as u8;
                    let dither = (rng.below(3) as u8).wrapping_sub(1);
                    out.push(base.wrapping_add(dither));
                }
                y += 1;
            }
        }
        DataKind::Video => {
            // "Frames" that repeat the previous frame with sparse deltas.
            let frame = 2048usize.min(len.max(1));
            let mut prev: Vec<u8> = (0..frame).map(|_| rng.next_u32() as u8).collect();
            while out.len() < len {
                for byte in prev.iter_mut() {
                    if rng.chance(5) {
                        *byte = byte.wrapping_add(rng.next_u32() as u8 & 0x0F);
                    }
                }
                let take = frame.min(len - out.len());
                out.extend_from_slice(&prev[..take]);
            }
        }
        DataKind::Random => {
            while out.len() < len {
                out.push(rng.next_u32() as u8);
            }
        }
    }
    out.truncate(len);
    out
}

/// Shannon entropy of a byte slice in bits per byte (diagnostic used by
/// tests to check the generators produce distinct data classes).
pub fn entropy_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        for kind in [
            DataKind::Text,
            DataKind::Source,
            DataKind::Log,
            DataKind::Graphic,
            DataKind::Video,
            DataKind::Random,
        ] {
            let a = generate(kind, 10_000, 99);
            let b = generate(kind, 10_000, 99);
            assert_eq!(a, b, "{kind:?} must be deterministic");
            assert_eq!(a.len(), 10_000);
            let c = generate(kind, 10_000, 100);
            assert_ne!(a, c, "{kind:?} must vary with seed");
        }
    }

    #[test]
    fn entropy_separates_data_classes() {
        let rand = entropy_bits_per_byte(&generate(DataKind::Random, 65_536, 1));
        let text = entropy_bits_per_byte(&generate(DataKind::Text, 65_536, 1));
        let graphic = entropy_bits_per_byte(&generate(DataKind::Graphic, 65_536, 1));
        assert!(rand > 7.9, "random data near 8 bits/byte, got {rand}");
        assert!(text < 5.0, "text well below random, got {text}");
        assert!(
            graphic < rand - 1.0,
            "graphic clearly more structured than random, got {graphic} vs {rand}"
        );
    }

    #[test]
    fn text_is_ascii_words() {
        let t = generate(DataKind::Text, 4_096, 3);
        assert!(t.iter().all(|&b| b.is_ascii()));
        assert!(t.windows(4).any(|w| w == b"the "));
    }

    #[test]
    fn source_has_structure() {
        let s = generate(DataKind::Source, 8_192, 5);
        let text = String::from_utf8(s).unwrap();
        assert!(text.contains("if ("));
        assert!(text.contains(";\n"));
    }

    #[test]
    fn video_frames_repeat() {
        // Consecutive frames share most bytes.
        let v = generate(DataKind::Video, 8_192, 7);
        let (f1, f2) = (&v[0..2048], &v[2048..4096]);
        let same = f1.iter().zip(f2).filter(|(a, b)| a == b).count();
        assert!(same > 1_500, "frames should be highly correlated: {same}");
    }

    #[test]
    fn from_variant_is_total() {
        for v in 0..12 {
            let _ = DataKind::from_variant(v);
        }
        assert_eq!(DataKind::from_variant(0), DataKind::Text);
        assert_eq!(DataKind::from_variant(5), DataKind::Random);
        assert_eq!(DataKind::from_variant(6), DataKind::Text);
    }

    #[test]
    fn entropy_of_empty_and_constant() {
        assert_eq!(entropy_bits_per_byte(&[]), 0.0);
        assert_eq!(entropy_bits_per_byte(&[7u8; 100]), 0.0);
    }
}
