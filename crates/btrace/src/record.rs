//! Trace recording and replay.
//!
//! Experiments run each (workload, input set) pair once, record the branch
//! stream, and replay it through many predictors and profilers. Events are
//! packed as `site << 1 | taken` in a `Vec<u32>`, so a 10M-branch run costs
//! 40 MB and replays at memory speed.

use crate::{SiteId, Tracer};

/// One dynamic branch event: which static branch executed and its direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static branch that executed.
    pub site: SiteId,
    /// Resolved direction.
    pub taken: bool,
}

/// A recorded conditional-branch trace.
///
/// Construct with [`RecordingTracer`] or collect from an iterator of
/// [`TraceEvent`]s. Replay through any [`Tracer`] with [`Trace::replay`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    packed: Vec<u32>,
    num_sites: usize,
}

impl Trace {
    /// Creates an empty trace for a workload with `num_sites` static branches.
    pub fn new(num_sites: usize) -> Self {
        Self {
            packed: Vec::new(),
            num_sites,
        }
    }

    /// Creates an empty trace with pre-allocated capacity for `events` events.
    pub fn with_capacity(num_sites: usize, events: usize) -> Self {
        Self {
            packed: Vec::with_capacity(events),
            num_sites,
        }
    }

    /// Number of dynamic branch events in the trace.
    pub fn len(&self) -> usize {
        self.packed.len()
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty()
    }

    /// Number of static branch sites in the traced workload (the size of the
    /// site table, not the number of distinct sites that appear).
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Appends one event.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this trace's site table.
    pub fn push(&mut self, site: SiteId, taken: bool) {
        assert!(
            site.index() < self.num_sites,
            "site {site} out of range (table has {} sites)",
            self.num_sites
        );
        self.packed.push(site.0 << 1 | taken as u32);
    }

    /// The `i`-th event, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<TraceEvent> {
        self.packed.get(i).map(|&p| TraceEvent {
            site: SiteId(p >> 1),
            taken: p & 1 == 1,
        })
    }

    /// Iterates over events in program order.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            inner: self.packed.iter(),
        }
    }

    /// Feeds every event, in order, into `tracer`.
    pub fn replay<T: Tracer + ?Sized>(&self, tracer: &mut T) {
        for &p in &self.packed {
            tracer.branch(SiteId(p >> 1), p & 1 == 1);
        }
    }

    /// Computes summary statistics for the trace.
    pub fn stats(&self) -> TraceStats {
        let mut exec = vec![0u64; self.num_sites];
        let mut taken_events = 0u64;
        for &p in &self.packed {
            exec[(p >> 1) as usize] += 1;
            taken_events += (p & 1) as u64;
        }
        let executed_sites = exec.iter().filter(|&&e| e > 0).count();
        TraceStats {
            events: self.packed.len() as u64,
            taken_events,
            executed_sites,
            declared_sites: self.num_sites,
            per_site_exec: exec,
        }
    }

    /// Approximate heap memory used by the trace, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.packed.capacity() * std::mem::size_of::<u32>()
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut max_site = 0u32;
        let packed: Vec<u32> = iter
            .into_iter()
            .map(|e| {
                max_site = max_site.max(e.site.0);
                e.site.0 << 1 | e.taken as u32
            })
            .collect();
        let num_sites = if packed.is_empty() {
            0
        } else {
            max_site as usize + 1
        };
        Self { packed, num_sites }
    }
}

impl Extend<TraceEvent> for Trace {
    fn extend<I: IntoIterator<Item = TraceEvent>>(&mut self, iter: I) {
        for e in iter {
            self.push(e.site, e.taken);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = TraceEvent;
    type IntoIter = TraceIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the events of a [`Trace`].
#[derive(Clone, Debug)]
pub struct TraceIter<'a> {
    inner: std::slice::Iter<'a, u32>,
}

impl Iterator for TraceIter<'_> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        self.inner.next().map(|&p| TraceEvent {
            site: SiteId(p >> 1),
            taken: p & 1 == 1,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for TraceIter<'_> {}

/// Summary statistics of a recorded trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceStats {
    /// Total dynamic branch events.
    pub events: u64,
    /// Dynamic events that resolved taken.
    pub taken_events: u64,
    /// Number of static sites that executed at least once.
    pub executed_sites: usize,
    /// Number of static sites declared by the workload.
    pub declared_sites: usize,
    /// Dynamic execution count per declared site.
    pub per_site_exec: Vec<u64>,
}

/// A [`Tracer`] that records the event stream into a [`Trace`].
#[derive(Clone, Debug)]
pub struct RecordingTracer {
    trace: Trace,
}

impl RecordingTracer {
    /// Creates a recorder for a workload with `num_sites` static branches.
    pub fn new(num_sites: usize) -> Self {
        Self {
            trace: Trace::new(num_sites),
        }
    }

    /// Creates a recorder with pre-allocated capacity for `events` events.
    pub fn with_capacity(num_sites: usize, events: usize) -> Self {
        Self {
            trace: Trace::with_capacity(num_sites, events),
        }
    }

    /// Consumes the recorder and returns the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Borrows the trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Tracer for RecordingTracer {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.trace.packed.push(site.0 << 1 | taken as u32);
        debug_assert!(site.index() < self.trace.num_sites, "site out of range");
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CountingTracer;

    fn sample_trace() -> Trace {
        let mut t = Trace::new(3);
        t.push(SiteId(0), true);
        t.push(SiteId(1), false);
        t.push(SiteId(2), true);
        t.push(SiteId(0), false);
        t
    }

    #[test]
    fn push_get_roundtrip() {
        let t = sample_trace();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(
            t.get(0),
            Some(TraceEvent {
                site: SiteId(0),
                taken: true
            })
        );
        assert_eq!(
            t.get(3),
            Some(TraceEvent {
                site: SiteId(0),
                taken: false
            })
        );
        assert_eq!(t.get(4), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_site() {
        let mut t = Trace::new(1);
        t.push(SiteId(1), true);
    }

    #[test]
    fn iter_matches_get() {
        let t = sample_trace();
        let via_iter: Vec<_> = t.iter().collect();
        let via_get: Vec<_> = (0..t.len()).map(|i| t.get(i).unwrap()).collect();
        assert_eq!(via_iter, via_get);
        assert_eq!(t.iter().len(), 4);
    }

    #[test]
    fn replay_preserves_order_and_count() {
        let t = sample_trace();
        let mut c = CountingTracer::new();
        t.replay(&mut c);
        assert_eq!(c.count(), 4);

        let mut rec = RecordingTracer::new(3);
        t.replay(&mut rec);
        assert_eq!(rec.into_trace(), t);
    }

    #[test]
    fn stats_counts() {
        let t = sample_trace();
        let s = t.stats();
        assert_eq!(s.events, 4);
        assert_eq!(s.taken_events, 2);
        assert_eq!(s.executed_sites, 3);
        assert_eq!(s.declared_sites, 3);
        assert_eq!(s.per_site_exec, vec![2, 1, 1]);
    }

    #[test]
    fn from_iterator_infers_site_count() {
        let events = [
            TraceEvent {
                site: SiteId(5),
                taken: true,
            },
            TraceEvent {
                site: SiteId(2),
                taken: false,
            },
        ];
        let t: Trace = events.into_iter().collect();
        assert_eq!(t.num_sites(), 6);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample_trace();
        t.extend([TraceEvent {
            site: SiteId(1),
            taken: true,
        }]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.get(4).unwrap().site, SiteId(1));
    }

    #[test]
    fn recorder_via_trait_object() {
        let mut rec = RecordingTracer::with_capacity(2, 16);
        {
            let t: &mut dyn Tracer = &mut rec;
            t.branch(SiteId(0), true);
            t.branch(SiteId(1), true);
        }
        assert_eq!(rec.dynamic_count(), Some(2));
        assert_eq!(rec.trace().stats().taken_events, 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new(4);
        assert!(t.is_empty());
        let s = t.stats();
        assert_eq!(s.events, 0);
        assert_eq!(s.executed_sites, 0);
        assert_eq!(s.declared_sites, 4);
    }
}
