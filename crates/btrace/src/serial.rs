//! Compact binary serialization of branch traces.
//!
//! Traces are written as a small header plus one varint-packed event per
//! dynamic branch, delta-encoding nothing but exploiting that most events
//! revisit a small set of hot sites: each event is `site << 1 | taken` as a
//! LEB128 varint, so hot low-numbered sites cost one byte.
//!
//! Format:
//!
//! ```text
//! magic  "2DPT"            4 bytes
//! version u8               currently 1
//! num_sites u32 LE
//! num_events u64 LE
//! events: LEB128(site << 1 | taken) ...
//! ```

use crate::{SiteId, Trace};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"2DPT";
const VERSION: u8 = 1;

/// Errors from reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing/incorrect magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// An event referenced a site outside the declared table.
    SiteOutOfRange {
        /// The offending site index.
        site: u32,
        /// The declared table size.
        num_sites: u32,
    },
    /// The stream ended before `num_events` events were read.
    Truncated,
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => f.write_str("not a 2DPT trace (bad magic)"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::SiteOutOfRange { site, num_sites } => {
                write!(f, "event site {site} outside table of {num_sites}")
            }
            ReadTraceError::Truncated => f.write_str("trace stream ended early"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            ReadTraceError::Truncated
        } else {
            ReadTraceError::Io(e)
        }
    }
}

/// Writes `v` as a LEB128 varint — the primitive the 2DPT trace format and
/// the sweep engine's result cache share.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads a LEB128 varint written by [`write_varint`].
///
/// # Errors
///
/// Returns an `InvalidData` error on an over-long encoding, and propagates
/// I/O errors (including `UnexpectedEof` on truncation).
pub fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut buf = [0u8; 1];
        r.read_exact(&mut buf)?;
        v |= ((buf[0] & 0x7F) as u64) << shift;
        if buf[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint too long",
            ));
        }
    }
}

/// Default ceiling on the payload length of a single wire frame (4 MiB).
///
/// Shared by every framed protocol in the workspace (notably the
/// `twodprof-serve` ingestion daemon) so both sides agree on the bound a
/// reader enforces before allocating.
pub const MAX_FRAME_LEN: usize = 1 << 22;

/// Writes one length-prefixed frame: `varint(payload.len())` followed by the
/// raw payload bytes.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    write_varint(w, payload.len() as u64)?;
    w.write_all(payload)
}

/// Reads one frame written by [`write_frame`], rejecting any frame whose
/// declared length exceeds `max_len` *before* allocating for it.
///
/// # Errors
///
/// Returns `InvalidData` on an oversized length declaration and propagates
/// I/O errors (including `UnexpectedEof` when the stream ends mid-frame).
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> io::Result<Vec<u8>> {
    let len = read_varint(r)?;
    if len > max_len as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds limit {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes `trace` to `w` in the 2DPT format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_trace<W: Write>(trace: &Trace, w: &mut W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&(trace.num_sites() as u32).to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for ev in trace.iter() {
        write_varint(w, ((ev.site.0 as u64) << 1) | ev.taken as u64)?;
    }
    Ok(())
}

/// Reads a trace in the 2DPT format from `r`.
///
/// # Errors
///
/// Returns a [`ReadTraceError`] on malformed input or I/O failure.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, ReadTraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(ReadTraceError::BadVersion(version[0]));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let num_sites = u32::from_le_bytes(buf4);
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let num_events = u64::from_le_bytes(buf8);
    let mut trace = Trace::with_capacity(num_sites as usize, num_events as usize);
    for _ in 0..num_events {
        let packed = read_varint(r)?;
        let site = (packed >> 1) as u32;
        if site >= num_sites {
            return Err(ReadTraceError::SiteOutOfRange { site, num_sites });
        }
        trace.push(SiteId(site), packed & 1 == 1);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(300);
        for i in 0..5_000u32 {
            t.push(SiteId(i % 300), i % 3 == 0);
        }
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::new(5);
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.num_sites(), 5);
    }

    #[test]
    fn hot_low_sites_cost_one_byte_each() {
        let mut t = Trace::new(4);
        for i in 0..1_000u32 {
            t.push(SiteId(i % 4), i % 2 == 0);
        }
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        // header is 17 bytes; each event must be exactly 1 byte
        assert_eq!(buf.len(), 17 + 1_000);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        match read_trace(&mut buf.as_slice()) {
            Err(ReadTraceError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(ReadTraceError::BadVersion(99))
        ));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(ReadTraceError::Truncated)
        ));
    }

    #[test]
    fn out_of_range_site_detected() {
        // handcraft: 1 site declared, event referencing site 3
        let mut buf = Vec::new();
        buf.extend_from_slice(b"2DPT");
        buf.push(1);
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u64.to_le_bytes());
        buf.push((3 << 1) as u8);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(ReadTraceError::SiteOutOfRange { site: 3, .. })
        ));
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 300]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), b"first");
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), b"");
        assert_eq!(read_frame(&mut r, MAX_FRAME_LEN).unwrap(), vec![0xAB; 300]);
        assert!(r.is_empty());
    }

    #[test]
    fn oversized_frame_length_rejected_before_allocation() {
        let mut buf = Vec::new();
        // declare a frame far larger than the limit, with no payload behind it
        write_varint(&mut buf, (MAX_FRAME_LEN as u64) + 1).unwrap();
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_detected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 64]).unwrap();
        buf.truncate(buf.len() - 1);
        let err = read_frame(&mut buf.as_slice(), MAX_FRAME_LEN).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn error_messages_render() {
        assert!(ReadTraceError::BadMagic.to_string().contains("magic"));
        assert!(ReadTraceError::Truncated.to_string().contains("early"));
        assert!(ReadTraceError::BadVersion(7).to_string().contains('7'));
    }
}
