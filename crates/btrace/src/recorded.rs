//! Columnar recorded traces: record a branch stream once, replay it many
//! times.
//!
//! [`RecordedTrace`] is the record-once/simulate-many buffer behind the
//! sweep engine's trace cache. Unlike the row-format [`Trace`] (one packed
//! `u32` per event), it stores the stream in two columns:
//!
//! * **site ids**, delta-encoded against the previous event's site and
//!   written as zigzag LEB128 varints — consecutive events usually revisit
//!   nearby sites, so most deltas fit in one byte;
//! * **directions**, packed one bit per event into `u64` words.
//!
//! A 10M-event run therefore costs ~11 MB instead of the row format's
//! 40 MB, and [`replay_into`](RecordedTrace::replay_into) decodes with a
//! tight monomorphized loop — no boxed closure, no per-event allocation.
//!
//! # Serialized format (`2DPR`, version 1)
//!
//! ```text
//! magic      "2DPR"              4 bytes
//! version    u8                  currently 1
//! num_sites  u32 LE
//! num_events u64 LE
//! checksum   u64 LE              FNV-1a over num_sites ‖ num_events ‖ body
//! body:
//!   delta_len varint             byte length of the delta column
//!   deltas    zigzag-LEB128*     one varint per event
//!   taken     u64 LE * ceil(num_events / 64)
//! ```
//!
//! [`from_bytes`](RecordedTrace::from_bytes) validates everything up front
//! — magic, version, checksum, every delta's site bounds, and exact byte
//! consumption — so a trace that decodes successfully can always be
//! replayed without panicking.

use crate::{read_varint, write_varint, SiteId, Trace, Tracer};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"2DPR";
const VERSION: u8 = 1;

/// A recorded conditional-branch stream in columnar form.
///
/// Implements [`Tracer`], so a workload can record straight into it:
///
/// ```
/// use btrace::{RecordedTrace, SiteId, Tracer, CountingTracer};
///
/// let mut trace = RecordedTrace::new(2);
/// trace.branch(SiteId(0), true);
/// trace.branch(SiteId(1), false);
/// let mut counter = CountingTracer::new();
/// trace.replay_into(&mut counter);
/// assert_eq!(counter.count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    num_sites: u32,
    num_events: u64,
    /// Site of the most recent event (delta-encoding state).
    last_site: u32,
    /// Zigzag-LEB128 deltas of each event's site against the previous one.
    site_deltas: Vec<u8>,
    /// Direction bitset: bit `i % 64` of word `i / 64` is event `i`.
    taken: Vec<u64>,
}

impl RecordedTrace {
    /// Creates an empty trace for a workload with `num_sites` static
    /// branches.
    pub fn new(num_sites: usize) -> Self {
        Self {
            num_sites: num_sites as u32,
            ..Self::default()
        }
    }

    /// Number of dynamic branch events recorded.
    pub fn events(&self) -> u64 {
        self.num_events
    }

    /// Whether the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.num_events == 0
    }

    /// Size of the traced workload's static site table.
    pub fn num_sites(&self) -> usize {
        self.num_sites as usize
    }

    /// Approximate heap memory held by the trace, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.site_deltas.capacity() + self.taken.capacity() * 8
    }

    /// Appends one event.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this trace's site table.
    pub fn push(&mut self, site: SiteId, taken: bool) {
        assert!(
            site.0 < self.num_sites,
            "site {site} out of range (table has {} sites)",
            self.num_sites
        );
        let delta = site.0 as i64 - self.last_site as i64;
        let mut z = ((delta << 1) ^ (delta >> 63)) as u64;
        if z < 0x80 {
            // common case: a near-by site, one delta byte, no loop
            self.site_deltas.push(z as u8);
        } else {
            loop {
                let byte = (z & 0x7F) as u8;
                z >>= 7;
                if z == 0 {
                    self.site_deltas.push(byte);
                    break;
                }
                self.site_deltas.push(byte | 0x80);
            }
        }
        let bit = self.num_events & 63;
        if bit == 0 {
            self.taken.push(0);
        }
        if taken {
            *self.taken.last_mut().expect("word pushed") |= 1 << bit;
        }
        self.last_site = site.0;
        self.num_events += 1;
    }

    /// Feeds every event, in order, into `tracer`.
    ///
    /// The loop is monomorphized per concrete tracer; pass `&mut dyn Tracer`
    /// to get the dynamic-dispatch version (one virtual call per event, no
    /// per-event decoding allocation either way).
    pub fn replay_into<T: Tracer + ?Sized>(&self, tracer: &mut T) {
        let mut site = 0i64;
        let mut deltas = self.site_deltas.as_slice();
        let mut remaining = self.num_events;
        // one direction word per 64 events, shifted instead of re-indexed;
        // single-byte deltas (the overwhelmingly common case) skip the
        // generic varint loop
        for &word in &self.taken {
            let n = remaining.min(64);
            let mut bits = word;
            for _ in 0..n {
                let z = match deltas.split_first() {
                    Some((&b, rest)) if b < 0x80 => {
                        deltas = rest;
                        b as u64
                    }
                    _ => decode_varint(&mut deltas).expect("validated delta column"),
                };
                site += ((z >> 1) as i64) ^ -((z & 1) as i64);
                tracer.branch(SiteId(site as u32), bits & 1 == 1);
                bits >>= 1;
            }
            remaining -= n;
        }
    }

    /// Serializes the trace to the header described in the module docs.
    ///
    /// # Errors
    ///
    /// Propagates any I/O error from `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut body = Vec::with_capacity(self.site_deltas.len() + self.taken.len() * 8 + 10);
        write_varint(&mut body, self.site_deltas.len() as u64)?;
        body.extend_from_slice(&self.site_deltas);
        for word in &self.taken {
            body.extend_from_slice(&word.to_le_bytes());
        }
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&self.num_sites.to_le_bytes())?;
        w.write_all(&self.num_events.to_le_bytes())?;
        // the checksum covers the length fields too, so a header bit flip
        // can never pass as a (differently shaped) valid trace
        let mut h = Fnv1a::default();
        h.update(&self.num_sites.to_le_bytes());
        h.update(&self.num_events.to_le_bytes());
        h.update(&body);
        w.write_all(&h.finish().to_le_bytes())?;
        w.write_all(&body)
    }

    /// Serializes the trace to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf).expect("vec write");
        buf
    }

    /// Deserializes a trace written by [`write_to`](Self::write_to),
    /// validating the checksum, every event's site bounds, and exact byte
    /// consumption. A trace this returns is always safe to replay.
    ///
    /// # Errors
    ///
    /// `InvalidData` on any corruption (bad magic/version, checksum
    /// mismatch, out-of-range site, truncated or oversized columns);
    /// `UnexpectedEof` on truncation inside a fixed-width field.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("not a 2DPR recorded trace"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(invalid("unsupported recorded-trace version"));
        }
        let mut sites = [0u8; 4];
        r.read_exact(&mut sites)?;
        let num_sites = u32::from_le_bytes(sites);
        let mut events = [0u8; 8];
        r.read_exact(&mut events)?;
        let num_events = u64::from_le_bytes(events);
        let mut checksum = [0u8; 8];
        r.read_exact(&mut checksum)?;
        let mut body = Vec::new();
        r.read_to_end(&mut body)?;
        let mut h = Fnv1a::default();
        h.update(&sites);
        h.update(&events);
        h.update(&body);
        if h.finish() != u64::from_le_bytes(checksum) {
            return Err(invalid("recorded-trace checksum mismatch"));
        }
        let mut b = body.as_slice();
        let delta_len = read_varint(&mut b)? as usize;
        // a delta varint is at most 10 bytes, and there is one per event
        if delta_len as u64 > num_events.saturating_mul(10) {
            return Err(invalid("delta column longer than the event count allows"));
        }
        if b.len() < delta_len {
            return Err(invalid("delta column truncated"));
        }
        let (deltas, rest) = b.split_at(delta_len);
        let expected_words = num_events.div_ceil(64) as usize;
        if rest.len() != expected_words * 8 {
            return Err(invalid("taken bitset has the wrong length"));
        }
        let taken: Vec<u64> = rest
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        // decode the whole delta column once, proving every site is in
        // bounds and the column holds exactly num_events varints, so replay
        // can never panic
        let mut site = 0i64;
        let mut last_site = 0u32;
        let mut cursor = deltas;
        for _ in 0..num_events {
            let z = decode_varint(&mut cursor)
                .ok_or_else(|| invalid("delta column holds fewer varints than events"))?;
            site += ((z >> 1) as i64) ^ -((z & 1) as i64);
            if site < 0 || site >= num_sites as i64 {
                return Err(invalid("event site outside the declared table"));
            }
            last_site = site as u32;
        }
        if !cursor.is_empty() {
            return Err(invalid("trailing bytes in the delta column"));
        }
        // bits past num_events in the last word must be zero (canonical form)
        if let Some(&last) = taken.last() {
            let used = num_events - (expected_words as u64 - 1) * 64;
            if used < 64 && last >> used != 0 {
                return Err(invalid("nonzero padding bits in the taken bitset"));
            }
        }
        Ok(Self {
            num_sites,
            num_events,
            last_site,
            site_deltas: deltas.to_vec(),
            taken,
        })
    }

    /// Deserializes a trace from a byte slice, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// As [`read_from`](Self::read_from).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let mut r = bytes;
        let trace = Self::read_from(&mut r)?;
        // read_from consumes to EOF, so nothing can trail it
        Ok(trace)
    }

    /// Converts to the row-format [`Trace`] (one `u32` per event).
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::with_capacity(self.num_sites(), self.num_events as usize);
        self.replay_into(&mut trace);
        trace
    }

    /// Iterates over the packed direction words as `(word, valid_bits)`.
    ///
    /// Bit `i` of each word is the direction of event `word_index * 64 + i`;
    /// only the low `valid_bits` bits of a word carry events (every word is
    /// full except possibly the last). Padding bits above `valid_bits` are
    /// always zero — the canonical form `from_bytes` enforces and `push`
    /// maintains.
    pub fn direction_words(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        let mut remaining = self.num_events;
        self.taken.iter().map(move |&word| {
            let valid = remaining.min(64) as u32;
            remaining -= valid as u64;
            (word, valid)
        })
    }

    /// Iterates over the stream as same-site runs of up to 64 events each.
    ///
    /// Consecutive events at the same site are grouped into one [`SiteRun`]
    /// carrying the site, the run length, and the packed directions, so a
    /// consumer can hash the site once per run instead of once per event.
    /// Streaks longer than 64 events are emitted as multiple runs;
    /// concatenating all runs in order reproduces the stream exactly.
    pub fn site_runs(&self) -> SiteRuns<'_> {
        SiteRuns {
            deltas: self.site_deltas.as_slice(),
            taken: &self.taken,
            site: 0,
            event: 0,
            num_events: self.num_events,
        }
    }
}

/// A streak of consecutive events at one site, at most 64 events long.
///
/// Produced by [`RecordedTrace::site_runs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteRun {
    /// The static branch all events in the run execute.
    pub site: SiteId,
    /// Number of events in the run, `1..=64`.
    pub len: u32,
    /// Directions of the run's events in the low `len` bits (bit 0 is the
    /// earliest event); bits at and above `len` are zero.
    pub bits: u64,
}

/// Iterator over a trace's same-site runs; see [`RecordedTrace::site_runs`].
pub struct SiteRuns<'a> {
    deltas: &'a [u8],
    taken: &'a [u64],
    site: i64,
    event: u64,
    num_events: u64,
}

impl Iterator for SiteRuns<'_> {
    type Item = SiteRun;

    fn next(&mut self) -> Option<SiteRun> {
        if self.event == self.num_events {
            return None;
        }
        // decode the run's first event, single-byte fast path as in replay
        let z = match self.deltas.split_first() {
            Some((&b, rest)) if b < 0x80 => {
                self.deltas = rest;
                b as u64
            }
            _ => decode_varint(&mut self.deltas).expect("validated delta column"),
        };
        self.site += ((z >> 1) as i64) ^ -((z & 1) as i64);
        // extend while the next event repeats the site: zigzag delta 0 is
        // the single byte 0x00, so the streak scan is a plain byte compare.
        // the delta column holds exactly one varint per event, so an empty
        // slice is exactly the end of the stream.
        let start = self.event;
        let mut len = 1u32;
        while len < 64 && self.deltas.first() == Some(&0) {
            self.deltas = &self.deltas[1..];
            len += 1;
        }
        self.event = start + len as u64;
        // gather the run's direction bits, which may straddle a word boundary
        let w = (start >> 6) as usize;
        let sh = (start & 63) as u32;
        let mut bits = self.taken[w] >> sh;
        if sh != 0 && len > 64 - sh {
            bits |= self.taken[w + 1] << (64 - sh);
        }
        if len < 64 {
            bits &= (1u64 << len) - 1;
        }
        Some(SiteRun {
            site: SiteId(self.site as u32),
            len,
            bits,
        })
    }
}

impl Tracer for RecordedTrace {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.push(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.num_events)
    }
}

impl Tracer for Trace {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.push(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.len() as u64)
    }
}

impl From<&Trace> for RecordedTrace {
    fn from(trace: &Trace) -> Self {
        let mut recorded = RecordedTrace::new(trace.num_sites());
        trace.replay(&mut recorded);
        recorded
    }
}

/// LEB128 varint decode over a slice cursor; `None` on truncation or an
/// over-long encoding. A slice-specialized twin of [`read_varint`] that the
/// per-event replay loop can afford.
#[inline]
fn decode_varint(cursor: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let (&byte, rest) = cursor.split_first()?;
        *cursor = rest;
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

/// Streaming FNV-1a — the same non-cryptographic integrity hash the
/// engine's result cache uses.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecordingTracer;

    fn sample() -> RecordedTrace {
        let mut t = RecordedTrace::new(5);
        for i in 0..200u32 {
            t.push(SiteId(i % 5), i % 3 == 0);
        }
        t
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let t = sample();
        assert_eq!(t.events(), 200);
        let mut rec = RecordingTracer::new(5);
        t.replay_into(&mut rec);
        let row = rec.into_trace();
        assert_eq!(row.len(), 200);
        for i in 0..200usize {
            let e = row.get(i).unwrap();
            assert_eq!(e.site, SiteId((i % 5) as u32));
            assert_eq!(e.taken, i % 3 == 0);
        }
    }

    #[test]
    fn serialization_roundtrips() {
        let t = sample();
        let bytes = t.to_bytes();
        let back = RecordedTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        // empty trace too
        let empty = RecordedTrace::new(3);
        let back = RecordedTrace::from_bytes(&empty.to_bytes()).unwrap();
        assert_eq!(back, empty);
        assert!(back.is_empty());
    }

    #[test]
    fn columnar_beats_row_format_on_hot_sites() {
        let t = sample();
        // 200 events: one delta byte each vs 4 bytes each in row format
        assert!(t.memory_bytes() < 200 * 4 / 2);
    }

    #[test]
    fn row_trace_conversions_roundtrip() {
        let t = sample();
        let row = t.to_trace();
        assert_eq!(RecordedTrace::from(&row), t);
        assert_eq!(row.num_sites(), t.num_sites());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range_site() {
        let mut t = RecordedTrace::new(2);
        t.push(SiteId(2), true);
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = sample().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                RecordedTrace::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_checksummed() {
        let t = sample();
        let clean = t.to_bytes();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut flipped = clean.clone();
                flipped[byte] ^= 1 << bit;
                // decoding either fails or — never — yields the same trace
                if let Ok(decoded) = RecordedTrace::from_bytes(&flipped) {
                    panic!(
                        "bit {bit} of byte {byte} decoded silently ({} events)",
                        decoded.events()
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_count_tracks_events() {
        let mut t = RecordedTrace::new(1);
        assert_eq!(t.dynamic_count(), Some(0));
        t.branch(SiteId(0), true);
        assert_eq!(t.dynamic_count(), Some(1));
    }

    /// Expands a trace's runs back into a flat event list.
    fn flatten_runs(t: &RecordedTrace) -> Vec<(SiteId, bool)> {
        let mut events = Vec::new();
        for run in t.site_runs() {
            assert!((1..=64).contains(&run.len), "run length {}", run.len);
            if run.len < 64 {
                assert_eq!(run.bits >> run.len, 0, "bits above len must be zero");
            }
            for i in 0..run.len {
                events.push((run.site, run.bits >> i & 1 == 1));
            }
        }
        events
    }

    fn recorded_events(t: &RecordedTrace) -> Vec<(SiteId, bool)> {
        let row = t.to_trace();
        (0..row.len())
            .map(|i| {
                let e = row.get(i).unwrap();
                (e.site, e.taken)
            })
            .collect()
    }

    #[test]
    fn site_runs_reproduce_the_stream() {
        let t = sample();
        assert_eq!(flatten_runs(&t), recorded_events(&t));
        // hot-site sample alternates sites, so every run is one event
        assert!(t.site_runs().all(|r| r.len == 1));
    }

    #[test]
    fn site_runs_group_streaks_and_split_at_64() {
        // a 200-event streak at one site must come out as 64+64+64+8
        let mut t = RecordedTrace::new(2);
        for i in 0..200u32 {
            t.push(SiteId(1), i % 3 == 0);
        }
        let runs: Vec<_> = t.site_runs().collect();
        assert_eq!(
            runs.iter().map(|r| r.len).collect::<Vec<_>>(),
            [64, 64, 64, 8]
        );
        assert!(runs.iter().all(|r| r.site == SiteId(1)));
        assert_eq!(flatten_runs(&t), recorded_events(&t));
    }

    #[test]
    fn site_runs_handle_word_straddling_streaks() {
        // leading single events misalign the streak against the 64-bit
        // direction words, so each 64-long run straddles two words
        for lead in 1..5u32 {
            let mut t = RecordedTrace::new(3);
            for i in 0..lead {
                t.push(SiteId(i % 2), true);
            }
            for i in 0..150u32 {
                t.push(SiteId(2), i % 2 == 0);
            }
            assert_eq!(flatten_runs(&t), recorded_events(&t), "lead {lead}");
        }
    }

    #[test]
    fn site_runs_handle_chunk_spanning_streaks_and_partial_final_word() {
        // one streak far longer than the engine's 2048-event fan-out chunk,
        // ending mid-word (4100 % 64 != 0)
        let mut t = RecordedTrace::new(1);
        for i in 0..4100u32 {
            t.push(SiteId(0), i % 5 < 2);
        }
        assert_eq!(t.events() % 64, 4100 % 64);
        let runs: Vec<_> = t.site_runs().collect();
        assert_eq!(runs.len(), 4100usize.div_ceil(64));
        assert_eq!(runs.last().unwrap().len, 4100 % 64);
        assert_eq!(flatten_runs(&t), recorded_events(&t));
        // round-tripping through bytes preserves the view
        let back = RecordedTrace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(flatten_runs(&back), recorded_events(&t));
    }

    #[test]
    fn site_runs_handle_single_event_and_empty_traces() {
        let empty = RecordedTrace::new(4);
        assert_eq!(empty.site_runs().count(), 0);
        let mut one = RecordedTrace::new(4);
        one.push(SiteId(3), true);
        let runs: Vec<_> = one.site_runs().collect();
        assert_eq!(
            runs,
            vec![SiteRun {
                site: SiteId(3),
                len: 1,
                bits: 1
            }]
        );
    }

    #[test]
    fn site_runs_mixed_lengths_fuzz() {
        // deterministic pseudo-random mix of short and long streaks
        let mut t = RecordedTrace::new(7);
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut event = 0u64;
        while event < 10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let site = SiteId((x % 7) as u32);
            let streak = 1 + (x >> 32) % 130;
            for i in 0..streak {
                t.push(site, (x >> (i % 23)) & 1 == 1);
            }
            event += streak;
        }
        assert_eq!(flatten_runs(&t), recorded_events(&t));
    }

    #[test]
    fn direction_words_expose_the_bitset() {
        let mut t = RecordedTrace::new(1);
        for i in 0..130u32 {
            t.push(SiteId(0), i % 3 == 0);
        }
        let words: Vec<_> = t.direction_words().collect();
        assert_eq!(words.len(), 3);
        assert_eq!(words[0].1, 64);
        assert_eq!(words[1].1, 64);
        assert_eq!(words[2].1, 2, "final word is partially filled");
        // padding above valid_bits is zero; bits agree with replay
        assert_eq!(words[2].0 >> words[2].1, 0);
        let flat: Vec<bool> = recorded_events(&t).iter().map(|&(_, b)| b).collect();
        for (w, (word, valid)) in words.iter().enumerate() {
            for b in 0..*valid {
                assert_eq!(word >> b & 1 == 1, flat[w * 64 + b as usize]);
            }
        }
        assert!(RecordedTrace::new(1).direction_words().next().is_none());
    }
}
