//! `btrace` — branch instrumentation runtime for the `twodprof` workspace.
//!
//! This crate plays the role that the Pin binary-instrumentation tool plays in
//! the CGO 2006 paper *"2D-Profiling: Detecting Input-Dependent Branches with
//! a Single Input Data Set"*: it delivers the dynamic stream of conditional
//! branch outcomes, tagged with *static branch identities*, to pluggable
//! profiling observers.
//!
//! Workloads declare their static conditional branches as [`SiteDecl`]s and
//! report every dynamic branch through the [`Tracer`] trait. Observers —
//! edge profilers, branch-predictor simulators, the 2D-profiler itself —
//! implement [`Tracer`] and are composed with [`Tee`].
//!
//! # Example
//!
//! ```
//! use btrace::{SiteId, Tracer, EdgeProfiler, SiteDecl, BranchKind};
//!
//! const SITES: &[SiteDecl] = &[SiteDecl::new("loop_exit", BranchKind::Loop)];
//! let mut prof = EdgeProfiler::new(SITES.len());
//! for i in 0..10u32 {
//!     // the instrumented program reports each conditional branch outcome
//!     prof.branch(SiteId(0), i < 9);
//! }
//! assert_eq!(prof.edge(SiteId(0)).taken, 9);
//! assert_eq!(prof.edge(SiteId(0)).total(), 10);
//! ```

mod edge;
mod record;
mod recorded;
mod serial;
mod site;
mod tee;

pub use edge::{EdgeCount, EdgeProfiler};
pub use record::{RecordingTracer, Trace, TraceEvent, TraceIter, TraceStats};
pub use recorded::{RecordedTrace, SiteRun, SiteRuns};
pub use serial::{
    read_frame, read_trace, read_varint, write_frame, write_trace, write_varint, ReadTraceError,
    MAX_FRAME_LEN,
};
pub use site::{validate_sites, BranchKind, SiteDecl, SiteId};
pub use tee::Tee;

/// Observer of a dynamic conditional-branch stream.
///
/// The instrumented program calls [`Tracer::branch`] once per executed
/// conditional branch, in program order, passing the branch's static identity
/// and its resolved direction. This is the entire interface between the
/// "binary instrumentation" layer and every profiler in the workspace, which
/// mirrors how the paper's profilers consume Pin's instrumentation callbacks.
pub trait Tracer {
    /// Record one dynamic execution of the static branch `site` that resolved
    /// in direction `taken`.
    fn branch(&mut self, site: SiteId, taken: bool);

    /// Returns the total number of dynamic branch events observed so far, if
    /// the tracer counts them. The default implementation returns `None`.
    fn dynamic_count(&self) -> Option<u64> {
        None
    }
}

/// A tracer that ignores every event.
///
/// Stands in for the paper's *Binary* configuration (Figure 16): the program
/// runs with the instrumentation calls compiled in but no observer work.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn branch(&mut self, _site: SiteId, _taken: bool) {}
}

/// A tracer that only counts dynamic branches.
///
/// Stands in for the paper's *Pin-base* configuration (Figure 16):
/// instrumentation is active but performs no user analysis beyond the
/// per-event dispatch itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountingTracer {
    count: u64,
}

impl CountingTracer {
    /// Creates a counting tracer with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of dynamic branch events seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Tracer for CountingTracer {
    #[inline]
    fn branch(&mut self, _site: SiteId, _taken: bool) {
        self.count += 1;
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.count)
    }
}

impl<T: Tracer + ?Sized> Tracer for &mut T {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        (**self).branch(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        (**self).dynamic_count()
    }
}

impl<T: Tracer + ?Sized> Tracer for Box<T> {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        (**self).branch(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        (**self).dynamic_count()
    }
}

/// Traces a conditional branch and returns its condition, so instrumented
/// workload code can keep using the condition inline:
///
/// ```
/// use btrace::{trace_branch, CountingTracer, SiteId};
/// let mut t = CountingTracer::new();
/// let x = 3;
/// if trace_branch(&mut t, SiteId(0), x > 2) {
///     // taken path
/// }
/// assert_eq!(t.count(), 1);
/// ```
#[inline]
pub fn trace_branch<T: Tracer + ?Sized>(tracer: &mut T, site: SiteId, cond: bool) -> bool {
    tracer.branch(site, cond);
    cond
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_ignores_events() {
        let mut t = NullTracer;
        t.branch(SiteId(0), true);
        t.branch(SiteId(1), false);
        assert_eq!(t.dynamic_count(), None);
    }

    #[test]
    fn counting_tracer_counts() {
        let mut t = CountingTracer::new();
        for i in 0..100 {
            t.branch(SiteId(i % 3), i % 2 == 0);
        }
        assert_eq!(t.count(), 100);
        assert_eq!(t.dynamic_count(), Some(100));
    }

    #[test]
    fn trace_branch_returns_condition() {
        let mut t = CountingTracer::new();
        assert!(trace_branch(&mut t, SiteId(0), true));
        assert!(!trace_branch(&mut t, SiteId(0), false));
        assert_eq!(t.count(), 2);
    }

    #[test]
    fn mut_ref_impl_forwards() {
        let mut t = CountingTracer::new();
        {
            let r: &mut dyn Tracer = &mut t;
            r.branch(SiteId(5), true);
            assert_eq!(r.dynamic_count(), Some(1));
        }
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn boxed_impl_forwards() {
        let mut t: Box<dyn Tracer> = Box::new(CountingTracer::new());
        t.branch(SiteId(0), false);
        assert_eq!(t.dynamic_count(), Some(1));
    }
}
