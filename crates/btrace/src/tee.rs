//! Composition of tracers.

use crate::{SiteId, Tracer};

/// A tracer that forwards every event to two child tracers, in order.
///
/// `Tee` nests, so any number of observers can watch one profiling run:
///
/// ```
/// use btrace::{Tee, CountingTracer, EdgeProfiler, Tracer, SiteId};
/// let mut t = Tee::new(CountingTracer::new(), EdgeProfiler::new(1));
/// t.branch(SiteId(0), true);
/// assert_eq!(t.first().count(), 1);
/// assert_eq!(t.second().edge(SiteId(0)).taken, 1);
/// ```
///
/// The [`branch`](Tracer::branch) fast path is two static calls — no
/// boxing, no cloning of the event — so live capture can fan one run out to
/// several observers (say a remote ingestion client, a local 2D-profiler,
/// and an edge profiler) and get each child back afterwards with
/// [`into_inner`](Tee::into_inner):
///
/// ```
/// use btrace::{Tee, CountingTracer, EdgeProfiler, RecordingTracer, Tracer, SiteId};
///
/// // three-way nesting: remote-ish recorder + (edge profiler + counter)
/// let mut t = Tee::new(
///     RecordingTracer::new(2),
///     Tee::new(EdgeProfiler::new(2), CountingTracer::new()),
/// );
/// for i in 0..10u32 {
///     t.branch(SiteId(i % 2), i % 3 == 0);
/// }
/// // every child saw the identical stream, in program order
/// let (recorder, rest) = t.into_inner();
/// let (edges, counter) = rest.into_inner();
/// assert_eq!(recorder.trace().len(), 10);
/// assert_eq!(edges.edge(SiteId(0)).total() + edges.edge(SiteId(1)).total(), 10);
/// assert_eq!(counter.count(), 10);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Tee<A, B> {
    first: A,
    second: B,
}

impl<A: Tracer, B: Tracer> Tee<A, B> {
    /// Combines two tracers. Events reach `first` before `second`.
    pub fn new(first: A, second: B) -> Self {
        Self { first, second }
    }

    /// The first child tracer.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// Mutable access to the first child tracer.
    pub fn first_mut(&mut self) -> &mut A {
        &mut self.first
    }

    /// The second child tracer.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Mutable access to the second child tracer.
    pub fn second_mut(&mut self) -> &mut B {
        &mut self.second
    }

    /// Splits the tee back into its children.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Tracer, B: Tracer> Tracer for Tee<A, B> {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.first.branch(site, taken);
        self.second.branch(site, taken);
    }

    fn dynamic_count(&self) -> Option<u64> {
        self.first.dynamic_count().or(self.second.dynamic_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CountingTracer, EdgeProfiler, NullTracer};

    #[test]
    fn both_children_see_events() {
        let mut tee = Tee::new(CountingTracer::new(), EdgeProfiler::new(2));
        tee.branch(SiteId(0), true);
        tee.branch(SiteId(1), false);
        assert_eq!(tee.first().count(), 2);
        assert_eq!(tee.second().edge(SiteId(1)).not_taken, 1);
        let (a, b) = tee.into_inner();
        assert_eq!(a.count(), 2);
        assert_eq!(b.edge(SiteId(0)).taken, 1);
    }

    #[test]
    fn nested_tee() {
        let mut tee = Tee::new(
            CountingTracer::new(),
            Tee::new(CountingTracer::new(), CountingTracer::new()),
        );
        for _ in 0..5 {
            tee.branch(SiteId(0), true);
        }
        assert_eq!(tee.first().count(), 5);
        assert_eq!(tee.second().first().count(), 5);
        assert_eq!(tee.second().second().count(), 5);
    }

    #[test]
    fn dynamic_count_prefers_first_counting_child() {
        let mut tee = Tee::new(NullTracer, CountingTracer::new());
        tee.branch(SiteId(0), true);
        assert_eq!(tee.dynamic_count(), Some(1));
    }

    #[test]
    fn mut_accessors() {
        let mut tee = Tee::new(CountingTracer::new(), NullTracer);
        tee.first_mut().branch(SiteId(0), true);
        assert_eq!(tee.first().count(), 1);
        tee.second_mut().branch(SiteId(0), true);
    }
}
