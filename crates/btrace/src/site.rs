//! Static branch identities.
//!
//! A *static branch* in the paper is one conditional-branch instruction in the
//! program binary; its dynamic instances are the individual executions. Here a
//! static branch is one instrumented branch site in a workload's source,
//! declared once as a [`SiteDecl`] and referred to by a dense [`SiteId`].

use std::fmt;

/// Dense identifier of a static branch site within one workload.
///
/// `SiteId(i)` indexes the workload's site-declaration table; profilers size
/// their per-branch state arrays by the table length so the hot path performs
/// no hashing, mirroring how Pin-based profilers key state by instruction
/// address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The site's index into its workload's declaration table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(raw: u32) -> Self {
        SiteId(raw)
    }
}

/// Source-level flavour of a conditional branch.
///
/// The paper's §2.3 discusses two recurring code structures that produce
/// input-dependent branches — data-type checks (gap, Figure 6) and loop exits
/// whose trip count is input-derived (gzip, Figure 7). Tagging sites with
/// their flavour lets experiments slice results the same way.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BranchKind {
    /// Loop back-edge or loop-exit test.
    Loop,
    /// Plain if/else on data values.
    IfElse,
    /// Branch that dispatches on the dynamic type/tag of a value.
    TypeCheck,
    /// Early-out/validity guard (bounds, null, error paths).
    Guard,
    /// Comparison inside a search/sort/pruning routine.
    Search,
    /// Anything else.
    Other,
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Loop => "loop",
            BranchKind::IfElse => "if-else",
            BranchKind::TypeCheck => "type-check",
            BranchKind::Guard => "guard",
            BranchKind::Search => "search",
            BranchKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// Declaration of one static branch site.
///
/// Workloads expose a `const` table of these; the table position of a
/// declaration is the site's [`SiteId`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteDecl {
    /// Human-readable name, unique within the workload (e.g. `"hash_chain_exit"`).
    pub name: &'static str,
    /// Source-level flavour of the branch.
    pub kind: BranchKind,
}

impl SiteDecl {
    /// Declares a branch site. Usable in `const` tables.
    pub const fn new(name: &'static str, kind: BranchKind) -> Self {
        Self { name, kind }
    }
}

impl fmt::Display for SiteDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)
    }
}

/// Checks that a site table is well-formed: non-empty names, unique names.
///
/// Returns the index pair of the first duplicate if any.
pub(crate) fn check_site_table(sites: &[SiteDecl]) -> Result<(), (usize, usize)> {
    for (i, a) in sites.iter().enumerate() {
        for (j, b) in sites.iter().enumerate().skip(i + 1) {
            if a.name == b.name {
                return Err((i, j));
            }
        }
    }
    Ok(())
}

/// Validates a workload's site table, panicking with a descriptive message on
/// duplicate names.
///
/// # Panics
///
/// Panics if two declarations share a name.
pub fn validate_sites(workload: &str, sites: &[SiteDecl]) {
    if let Err((i, j)) = check_site_table(sites) {
        panic!(
            "workload {workload}: duplicate branch site name {:?} at indices {i} and {j}",
            sites[i].name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_roundtrip() {
        let id = SiteId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "b7");
    }

    #[test]
    fn site_decl_display() {
        let d = SiteDecl::new("hd_is_int", BranchKind::TypeCheck);
        assert_eq!(d.to_string(), "hd_is_int (type-check)");
    }

    #[test]
    fn duplicate_detection() {
        let ok = [
            SiteDecl::new("a", BranchKind::Loop),
            SiteDecl::new("b", BranchKind::Guard),
        ];
        assert_eq!(check_site_table(&ok), Ok(()));
        let bad = [
            SiteDecl::new("a", BranchKind::Loop),
            SiteDecl::new("b", BranchKind::Guard),
            SiteDecl::new("a", BranchKind::Search),
        ];
        assert_eq!(check_site_table(&bad), Err((0, 2)));
    }

    #[test]
    #[should_panic(expected = "duplicate branch site name")]
    fn validate_panics_on_duplicates() {
        let bad = [
            SiteDecl::new("x", BranchKind::Loop),
            SiteDecl::new("x", BranchKind::Loop),
        ];
        validate_sites("demo", &bad);
    }

    #[test]
    fn kind_display_all_variants() {
        let kinds = [
            BranchKind::Loop,
            BranchKind::IfElse,
            BranchKind::TypeCheck,
            BranchKind::Guard,
            BranchKind::Search,
            BranchKind::Other,
        ];
        let strings: Vec<String> = kinds.iter().map(|k| k.to_string()).collect();
        let mut dedup = strings.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len(), "kind names must be distinct");
    }
}
