//! Classical edge (taken/not-taken) profiling.
//!
//! This is the baseline profiling mode the paper compares against: it records
//! only *aggregate* per-branch bias over the whole run, i.e. the
//! one-dimensional profile that 2D-profiling extends with a time axis.

use crate::{SiteId, Tracer};

/// Taken/not-taken counts for one static branch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EdgeCount {
    /// Dynamic executions that resolved taken.
    pub taken: u64,
    /// Dynamic executions that resolved not-taken.
    pub not_taken: u64,
}

impl EdgeCount {
    /// Total dynamic executions of the branch.
    pub fn total(&self) -> u64 {
        self.taken + self.not_taken
    }

    /// Taken rate in `[0, 1]`, or `None` if the branch never executed.
    pub fn taken_rate(&self) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.taken as f64 / total as f64)
    }

    /// Bias of the branch: the frequency of its *majority* direction, in
    /// `[0.5, 1]`. `None` if the branch never executed.
    ///
    /// A perfectly biased branch (always taken or never taken) has bias 1.
    pub fn bias(&self) -> Option<f64> {
        self.taken_rate().map(|r| r.max(1.0 - r))
    }

    /// The direction a static profile-guided predictor would choose for this
    /// branch (ties predict taken). `None` if the branch never executed.
    pub fn majority_direction(&self) -> Option<bool> {
        (self.total() > 0).then_some(self.taken >= self.not_taken)
    }
}

/// Aggregate edge profiler over all static branches of one workload.
///
/// Stands in for the paper's *Edge* instrumentation configuration (Figure 16)
/// and supplies the bias data used by the edge-profiling variant of
/// 2D-profiling.
#[derive(Clone, Debug)]
pub struct EdgeProfiler {
    counts: Vec<EdgeCount>,
    events: u64,
}

impl EdgeProfiler {
    /// Creates an edge profiler for a workload with `num_sites` static
    /// branches.
    pub fn new(num_sites: usize) -> Self {
        Self {
            counts: vec![EdgeCount::default(); num_sites],
            events: 0,
        }
    }

    /// Number of static branch sites this profiler tracks.
    pub fn num_sites(&self) -> usize {
        self.counts.len()
    }

    /// The taken/not-taken counts for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for this profiler.
    pub fn edge(&self, site: SiteId) -> EdgeCount {
        self.counts[site.index()]
    }

    /// Iterates over `(site, counts)` for every site, including never-executed
    /// ones.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, EdgeCount)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (SiteId(i as u32), c))
    }

    /// Fraction of all dynamic branches that were taken, or `None` before any
    /// event.
    pub fn overall_taken_rate(&self) -> Option<f64> {
        let taken: u64 = self.counts.iter().map(|c| c.taken).sum();
        (self.events > 0).then(|| taken as f64 / self.events as f64)
    }
}

impl Tracer for EdgeProfiler {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        let c = &mut self.counts[site.index()];
        if taken {
            c.taken += 1;
        } else {
            c.not_taken += 1;
        }
        self.events += 1;
    }

    fn dynamic_count(&self) -> Option<u64> {
        Some(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let mut p = EdgeProfiler::new(2);
        for i in 0..10 {
            p.branch(SiteId(0), i < 7);
        }
        p.branch(SiteId(1), false);
        let e0 = p.edge(SiteId(0));
        assert_eq!(e0.taken, 7);
        assert_eq!(e0.not_taken, 3);
        assert_eq!(e0.total(), 10);
        assert!((e0.taken_rate().unwrap() - 0.7).abs() < 1e-12);
        assert!((e0.bias().unwrap() - 0.7).abs() < 1e-12);
        assert_eq!(e0.majority_direction(), Some(true));
        assert_eq!(p.edge(SiteId(1)).majority_direction(), Some(false));
        assert_eq!(p.dynamic_count(), Some(11));
        assert!((p.overall_taken_rate().unwrap() - 7.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn unexecuted_branch_has_no_rate() {
        let p = EdgeProfiler::new(1);
        let e = p.edge(SiteId(0));
        assert_eq!(e.total(), 0);
        assert_eq!(e.taken_rate(), None);
        assert_eq!(e.bias(), None);
        assert_eq!(e.majority_direction(), None);
        assert_eq!(p.overall_taken_rate(), None);
    }

    #[test]
    fn bias_is_majority_frequency() {
        let mostly_not_taken = EdgeCount {
            taken: 1,
            not_taken: 9,
        };
        assert!((mostly_not_taken.bias().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(mostly_not_taken.majority_direction(), Some(false));
    }

    #[test]
    fn tie_predicts_taken() {
        let tie = EdgeCount {
            taken: 5,
            not_taken: 5,
        };
        assert_eq!(tie.majority_direction(), Some(true));
        assert!((tie.bias().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn iter_covers_all_sites() {
        let mut p = EdgeProfiler::new(3);
        p.branch(SiteId(2), true);
        let v: Vec<_> = p.iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v[2].1.taken, 1);
        assert_eq!(v[0].1.total(), 0);
    }
}
