//! Property tests for [`RecordedTrace`]: the columnar encoding must
//! round-trip every branch stream bit-exactly (record → serialize → decode
//! → replay), and corrupted bytes — truncation or a single flipped bit —
//! must be rejected rather than silently mis-decoded.

use btrace::{RecordedTrace, SiteId, Tracer};
use proptest::prelude::*;

/// Collects a replayed stream back into a vector for comparison.
#[derive(Default)]
struct Collector(Vec<(u32, bool)>);

impl Tracer for Collector {
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.0.push((site.0, taken));
    }
}

fn record(num_sites: u32, events: &[(u32, bool)]) -> RecordedTrace {
    let mut trace = RecordedTrace::new(num_sites as usize);
    for &(site, taken) in events {
        trace.push(SiteId(site % num_sites), taken);
    }
    trace
}

proptest! {
    #[test]
    fn record_serialize_decode_replay_is_identity(
        num_sites in 1u32..200,
        events in prop::collection::vec((any::<u32>(), any::<bool>()), 0..2000),
    ) {
        let trace = record(num_sites, &events);
        let bytes = trace.to_bytes();
        let decoded = RecordedTrace::from_bytes(&bytes).expect("decode own bytes");
        prop_assert_eq!(&decoded, &trace);
        let mut original = Collector::default();
        trace.replay_into(&mut original);
        let mut replayed = Collector::default();
        decoded.replay_into(&mut replayed);
        prop_assert_eq!(replayed.0, original.0);
        prop_assert_eq!(decoded.events(), events.len() as u64);
        prop_assert_eq!(decoded.num_sites(), num_sites as usize);
    }

    #[test]
    fn serialization_is_canonical(
        num_sites in 1u32..64,
        events in prop::collection::vec((any::<u32>(), any::<bool>()), 0..500),
    ) {
        // decode(encode(x)) must re-encode to the same bytes: no two byte
        // strings decode to the same trace along the happy path
        let bytes = record(num_sites, &events).to_bytes();
        let reencoded = RecordedTrace::from_bytes(&bytes).expect("decode").to_bytes();
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn truncation_is_rejected(
        num_sites in 1u32..64,
        events in prop::collection::vec((any::<u32>(), any::<bool>()), 1..300),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = record(num_sites, &events).to_bytes();
        // every strict prefix must fail to decode
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(RecordedTrace::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn single_bit_flip_is_rejected(
        num_sites in 1u32..64,
        events in prop::collection::vec((any::<u32>(), any::<bool>()), 1..300),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let bytes = record(num_sites, &events).to_bytes();
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        prop_assert!(pos < bytes.len());
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;
        prop_assert!(
            RecordedTrace::from_bytes(&corrupt).is_err(),
            "flipping bit {} of byte {} went undetected", bit, pos
        );
    }
}
