//! A self-contained, deterministic stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! [proptest](https://crates.io/crates/proptest) API, but this repository
//! builds in hermetic environments with no registry access. This shim
//! implements the subset of the API those tests use — `proptest!`,
//! `prop_assert*`, `Strategy`, numeric-range and collection strategies, and
//! simple character-class string patterns — on top of a splitmix64 generator
//! seeded from the test name, so every run of every test is reproducible.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the values that broke it
//!   (via the standard `assert!` machinery); there is no minimization pass.
//! - **Deterministic seeding.** Cases are derived from a hash of the test
//!   name, not OS entropy, so CI failures always reproduce locally.
//! - **String strategies** support only `[class]{lo,hi}` patterns (character
//!   classes with ranges and `\`-escapes, plus a brace repetition count),
//!   which is the only shape the workspace uses.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Seeds a generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(h)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // modulo bias is irrelevant at property-test sample sizes
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case values (the shim's version of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `any::<T>()` — the full-range strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Produces an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize);

// signed ranges: compute the span through the same-width unsigned type so
// the wrapping difference doesn't sign-extend (e.g. -128i8..127 spans 255)
macro_rules! signed_range_strategies {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
signed_range_strategies!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// String pattern strategy: `[class]{lo,hi}` with `a-z` ranges and
/// `\`-escapes inside the class.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_pattern(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

/// Parses the supported pattern grammar; panics on anything else so an
/// unsupported test fails loudly rather than silently testing nothing.
fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let rest = pat
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("shim supports only [class]{{lo,hi}} patterns, got {pat:?}"));
    let mut chars: Vec<char> = Vec::new();
    let mut it = rest.chars().peekable();
    loop {
        match it.next() {
            None => panic!("unterminated character class in {pat:?}"),
            Some(']') => break,
            Some('\\') => {
                let c = it
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pat:?}"));
                chars.push(c);
            }
            Some(c) => {
                if it.peek() == Some(&'-') {
                    let mut probe = it.clone();
                    probe.next(); // consume '-'
                    match probe.peek() {
                        Some(&end) if end != ']' => {
                            it = probe;
                            let end = it.next().expect("peeked");
                            assert!(c <= end, "inverted range {c}-{end} in {pat:?}");
                            for v in c as u32..=end as u32 {
                                chars.push(char::from_u32(v).expect("valid range"));
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                chars.push(c);
            }
        }
    }
    let reps: String = it.collect();
    let reps = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("missing {{lo,hi}} repetition in {pat:?}"));
    let (lo, hi) = reps
        .split_once(',')
        .unwrap_or_else(|| panic!("repetition must be {{lo,hi}} in {pat:?}"));
    let lo: usize = lo.trim().parse().expect("numeric lower repetition bound");
    let hi: usize = hi.trim().parse().expect("numeric upper repetition bound");
    assert!(lo <= hi && !chars.is_empty(), "degenerate pattern {pat:?}");
    (chars, lo, hi)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// A `Vec` strategy with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, lo..hi)` — a vector of `lo..hi` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop` namespace mirror (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Per-`proptest!` configuration. Only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Declares property tests. Mirrors `proptest::proptest!` for the
/// `#[test] fn name(arg in strategy, ...) { .. }` form, with an optional
/// leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    let _ = __case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` (no shrinking to roll back).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(
            va,
            (0..10)
                .map(|_| TestRng::from_name("y").next_u64())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1usize..=9).generate(&mut rng);
            assert!((1..=9).contains(&w));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn signed_ranges_respect_bounds() {
        let mut rng = TestRng::new(17);
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = (-50i64..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            saw_negative |= v < 0;
            let w = (i8::MIN..=i8::MAX).generate(&mut rng);
            assert!((i8::MIN..=i8::MAX).contains(&w));
            let x = (-3i32..=3).generate(&mut rng);
            assert!((-3..=3).contains(&x));
        }
        assert!(saw_negative, "negative half of the range must be reachable");
    }

    #[test]
    fn vec_strategy_respects_size_and_elements() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = collection::vec((0u32..8, any::<bool>()), 1..600).generate(&mut rng);
            assert!((1..600).contains(&v.len()));
            assert!(v.iter().all(|&(s, _)| s < 8));
        }
    }

    #[test]
    fn pattern_strategy_draws_from_the_class() {
        let mut rng = TestRng::new(13);
        for _ in 0..500 {
            let s = "[a-c?*\\[\\]]{0,8}".generate(&mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| "abc?*[]".contains(c)), "{s:?}");
        }
        let lens: Vec<usize> = (0..100)
            .map(|_| "[a-cA-C]{0,8}".generate(&mut rng).len())
            .collect();
        assert!(lens.contains(&0) && lens.iter().any(|&l| l > 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn the_macro_itself_runs(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip as u64 <= 1, true);
        }
    }
}
