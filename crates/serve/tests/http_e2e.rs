//! End-to-end exposition-plane tests: a real `twodprofd` with its HTTP
//! listener on an ephemeral loopback port, scraped with hand-written
//! HTTP/1.0 requests (no HTTP client dependency, matching the daemon's
//! no-dependency server).
//!
//! Covers the three endpoints (`/metrics` well-formedness, `/healthz`
//! readiness flipping to 503 under forced shed and recovering, `/vars`
//! JSON shape), the error paths (404/405), and the flight recorder's two
//! export paths (the sessionless `Blackbox` wire frame and the checksummed
//! on-disk dump).

use bpred::PredictorKind;
use btrace::SiteId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};
use twodprof_core::SliceConfig;
use twodprof_serve::wire::AdmissionTier;
use twodprof_serve::{
    fetch_blackbox, ClientError, ConnectOptions, RemoteSession, Server, ServerConfig, ServerHandle,
    ServerStats,
};

struct Daemon {
    addr: SocketAddr,
    http: SocketAddr,
    handle: ServerHandle,
    join: Option<thread::JoinHandle<ServerStats>>,
}

impl Daemon {
    fn start(config: ServerConfig) -> Self {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let http = server
            .http_addr()
            .expect("http addr")
            .expect("http listener configured");
        let handle = server.handle();
        let join = thread::spawn(move || server.run().expect("server run"));
        Self {
            addr,
            http,
            handle,
            join: Some(join),
        }
    }

    fn config() -> twodprof_serve::ServerConfigBuilder {
        let mut builder = ServerConfig::builder();
        builder = builder.quiet(true).http_addr("127.0.0.1:0");
        builder
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// One raw HTTP/1.0 exchange: returns (status line, headers, body).
fn http_request(addr: SocketAddr, request: &str) -> (String, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read reply");
    let (head, body) = reply
        .split_once("\r\n\r\n")
        .expect("reply has a header block");
    let (status, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (status.to_owned(), headers.to_owned(), body.to_owned())
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String, String) {
    http_request(
        addr,
        &format!("GET {path} HTTP/1.0\r\nHost: twodprofd\r\nUser-Agent: http_e2e\r\n\r\n"),
    )
}

fn connect(daemon: &Daemon, num_sites: usize) -> Result<RemoteSession, ClientError> {
    ConnectOptions::new(
        num_sites,
        PredictorKind::Gshare4Kb,
        SliceConfig::new(512, 32),
    )
    .connect(daemon.addr)
}

/// Deterministic branch stream, salted so sessions differ.
fn synthetic_stream(salt: u64, len: usize, num_sites: u32) -> Vec<(SiteId, bool)> {
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (SiteId((x % num_sites as u64) as u32), x & 2 == 2)
        })
        .collect()
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn metrics_endpoint_serves_well_formed_prometheus_text() {
    let daemon = Daemon::start(Daemon::config().build().expect("config"));
    // some traffic so the exposition carries real serve-side series
    let mut session = connect(&daemon, 8).expect("connect");
    session
        .send_events(&synthetic_stream(1, 2_000, 8))
        .expect("send");
    session.flush().expect("flush");

    let (status, headers, body) = http_get(daemon.http, "/metrics");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "got headers {headers:?}"
    );
    assert!(headers.contains(&format!("Content-Length: {}", body.len())));

    // Prometheus text well-formedness: every line is a comment or
    // `name value`, every sample name has a preceding # TYPE, and the
    // serve-side series are present
    let mut typed: Vec<&str> = Vec::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.push(rest.split_whitespace().next().expect("type line names"));
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("sample name");
        let value = parts.next().expect("sample value");
        assert!(parts.next().is_none(), "extra fields in {line:?}");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        // histogram samples are `{name}_bucket{{le=...}}`/`_sum`/`_count`
        let bare = name.split('{').next().expect("split is nonempty");
        let family = bare
            .strip_suffix("_bucket")
            .or_else(|| bare.strip_suffix("_sum"))
            .or_else(|| bare.strip_suffix("_count"))
            .filter(|f| typed.contains(f))
            .unwrap_or(bare);
        assert!(
            typed.contains(&family),
            "sample {name} has no preceding # TYPE"
        );
    }
    assert!(body.contains("serve_events_total"), "got:\n{body}");
    assert!(body.contains("serve_shard0_sessions"));
    session.finish().expect("finish");
}

#[test]
fn healthz_serves_503_under_shed_and_recovers() {
    // one shard, a 64 KiB recording budget, and a spill dir that cannot
    // exist (its parent is a device node): spilling fails, so a heavy
    // session parks resident bytes above the budget, the shard sheds, and
    // the probe must say so — then recover once the session is gone
    let daemon = Daemon::start(
        Daemon::config()
            .shards(1)
            .shard_memory_budget(64 << 10)
            .spill_threshold(32 << 10)
            .spill_dir("/dev/null/twodprof-nope")
            .build()
            .expect("config"),
    );

    let (status, _headers, body) = http_get(daemon.http, "/healthz");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(body.starts_with("status: ok\n"), "got {body:?}");
    assert!(body.contains("shard 0: accept"), "got {body:?}");

    let mut heavy = connect(&daemon, 8).expect("connect");
    heavy
        .send_events(&synthetic_stream(2, 120_000, 8))
        .expect("send");
    heavy.flush().expect("flush");

    // shed is observable both at admission and on the probe
    match connect(&daemon, 8) {
        Err(ClientError::Refused { tier, .. }) => assert_eq!(tier, AdmissionTier::Shed),
        Err(other) => panic!("expected Refused under shed, got {other:?}"),
        Ok(_) => panic!("expected Refused under shed, got a session"),
    }
    let (status, _headers, body) = http_get(daemon.http, "/healthz");
    assert_eq!(status, "HTTP/1.0 503 Service Unavailable");
    assert!(body.starts_with("status: shedding\n"), "got {body:?}");
    assert!(body.contains("shard 0: shed"), "got {body:?}");
    assert!(body.contains("byte(s) resident"), "got {body:?}");

    // draining the heavy session releases the residency; the probe recovers
    heavy.finish().expect("finish");
    wait_until("healthz recovery", || {
        http_get(daemon.http, "/healthz").0 == "HTTP/1.0 200 OK"
    });

    // ...and the shed decision made it into the flight recorder, fetchable
    // over the sessionless wire frame
    let events = fetch_blackbox(daemon.addr).expect("fetch blackbox");
    assert!(
        events
            .iter()
            .any(|e| e.to_string().contains("budget exhausted")),
        "no shed event in {events:?}"
    );
}

#[test]
fn vars_serves_the_json_snapshot() {
    let daemon = Daemon::start(
        Daemon::config()
            .timeline_interval(Duration::from_millis(20))
            .build()
            .expect("config"),
    );
    let mut session = connect(&daemon, 8).expect("connect");
    session
        .send_events(&synthetic_stream(3, 1_000, 8))
        .expect("send");
    session.flush().expect("flush");
    // let the timeline thread record at least one post-baseline interval
    thread::sleep(Duration::from_millis(80));

    let (status, headers, body) = http_get(daemon.http, "/vars");
    assert_eq!(status, "HTTP/1.0 200 OK");
    assert!(headers.contains("Content-Type: application/json"));
    for key in [
        "\"uptime_millis\":",
        "\"live_sessions\":",
        "\"sessions\":{\"opened\":",
        "\"shards\":[{\"index\":0,\"tier\":\"accept\",\"tier_code\":0,",
        "\"counters\":{",
        "\"gauges\":{",
        "\"events_per_sec\":",
        "\"timeline\":[",
    ] {
        assert!(body.contains(key), "missing {key} in:\n{body}");
    }
    assert!(body.contains("\"serve_events_total\":"), "got:\n{body}");
    session.finish().expect("finish");
}

#[test]
fn unknown_paths_and_methods_get_clean_errors() {
    let daemon = Daemon::start(Daemon::config().build().expect("config"));
    let (status, _headers, body) = http_get(daemon.http, "/nope");
    assert_eq!(status, "HTTP/1.0 404 Not Found");
    assert!(body.contains("/metrics"), "got {body:?}");
    let (status, _headers, _body) = http_request(
        daemon.http,
        "POST /metrics HTTP/1.0\r\nHost: x\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(status, "HTTP/1.0 405 Method Not Allowed");
}

#[test]
fn blackbox_dump_roundtrips_through_the_checksummed_decoder() {
    let dir = std::env::temp_dir().join(format!("twodprof-http-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dump = dir.join("blackbox.bin");
    let daemon = Daemon::start(
        Daemon::config()
            .blackbox_path(&dump)
            .build()
            .expect("config"),
    );
    // an aborted session leaves a SessionAbort event in the ring
    let session = connect(&daemon, 8).expect("connect");
    drop(session);
    wait_until("abort recorded", || {
        fetch_blackbox(daemon.addr)
            .map(|events| !events.is_empty())
            .unwrap_or(false)
    });

    let live = fetch_blackbox(daemon.addr).expect("fetch blackbox");
    let path = daemon.handle.dump_blackbox().expect("dump");
    assert_eq!(path, dump);
    let bytes = std::fs::read(&dump).expect("read dump");
    let decoded = twodprof_serve::flight::decode(&bytes).expect("decode dump");
    assert_eq!(
        decoded.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        live.iter().map(|e| e.to_string()).collect::<Vec<_>>(),
        "the dump and the wire fetch must carry the same ring"
    );
    // a flipped byte must be rejected by the checksum trailer
    let mut torn = bytes.clone();
    let mid = torn.len() / 2;
    torn[mid] ^= 0xFF;
    assert!(
        twodprof_serve::flight::decode(&torn).is_err(),
        "torn dump must not decode"
    );
    std::fs::remove_dir_all(&dir).ok();
}
