//! End-to-end tests: a real `twodprofd` on an ephemeral loopback port, real
//! client sessions over TCP.
//!
//! The centerpiece is the equivalence test — a workload's branch stream
//! fanned out (via [`btrace::Tee`]) to the daemon and an in-process
//! [`TwoDProfiler`] must produce **bit-identical** serialized reports.

use bpred::PredictorKind;
use btrace::{SiteId, Tracer};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_serve::wire::{
    codes, AdmissionTier, ClientFrame, Hello, ServerFrame, PROTOCOL_VERSION,
};
use twodprof_serve::{
    fetch_stats, replay_workload, ClientError, ConnectOptions, RemoteSession, RemoteTracer,
    ReplaySpec, Server, ServerConfig, ServerHandle, ServerStats,
};
use workloads::Scale;

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    join: Option<thread::JoinHandle<ServerStats>>,
}

impl Daemon {
    fn start(config: ServerConfig) -> Self {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let join = thread::spawn(move || server.run().expect("server run"));
        Self {
            addr,
            handle,
            join: Some(join),
        }
    }

    fn quiet_config() -> ServerConfig {
        ServerConfig::builder().quiet(true).build().expect("config")
    }

    fn stop(mut self) -> ServerStats {
        self.handle.shutdown();
        self.join
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(10));
    }
}

/// A deterministic synthetic branch stream, parameterized so concurrent
/// sessions each get a distinct one.
fn synthetic_stream(salt: u64, len: usize, num_sites: u32) -> Vec<(SiteId, bool)> {
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (SiteId((x % num_sites as u64) as u32), x & 2 == 2)
        })
        .collect()
}

/// Opens a session through the builder API (shorthand for the default
/// options every test here wants).
fn connect(
    addr: SocketAddr,
    num_sites: usize,
    predictor: PredictorKind,
    slice: SliceConfig,
) -> Result<RemoteSession, ClientError> {
    ConnectOptions::new(num_sites, predictor, slice).connect(addr)
}

/// Profiles `stream` in-process with the same configuration a remote
/// session would use, returning the serialized report.
fn local_report_bytes(
    stream: &[(SiteId, bool)],
    num_sites: usize,
    predictor: PredictorKind,
    slice: SliceConfig,
) -> Vec<u8> {
    let mut prof = TwoDProfiler::new(num_sites, predictor.build(), slice);
    for &(site, taken) in stream {
        prof.branch(site, taken);
    }
    prof.finish(Thresholds::paper()).to_bytes()
}

#[test]
fn replay_verify_is_bit_identical() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let spec = ReplaySpec {
        workload: "gzip".to_owned(),
        input: "train".to_owned(),
        scale: Scale::Tiny,
        predictor: PredictorKind::Gshare4Kb,
        batch: 1024,
        slice: None,
        verify: true,
        trace: false,
        program: String::new(),
    };
    let summary = replay_workload(daemon.addr, &spec).expect("replay");
    assert!(summary.events > 0, "workload must emit branch events");
    assert_eq!(
        summary.matches(),
        Some(true),
        "remote report must be bit-identical to the in-process run"
    );
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
    assert_eq!(stats.sessions_aborted, 0);
    assert_eq!(stats.events_ingested, summary.events);
}

#[test]
fn concurrent_sessions_are_independent() {
    const SESSIONS: usize = 6;
    const NUM_SITES: usize = 16;
    let daemon = Daemon::start(Daemon::quiet_config());
    let addr = daemon.addr;
    let slice = SliceConfig::new(512, 32);
    let workers: Vec<_> = (0..SESSIONS)
        .map(|i| {
            thread::spawn(move || {
                let stream = synthetic_stream(i as u64 + 1, 40_000, NUM_SITES as u32);
                let mut remote = RemoteTracer::with_batch_size(
                    connect(addr, NUM_SITES, PredictorKind::Gshare4Kb, slice).expect("connect"),
                    // deliberately small batches so sessions interleave
                    257 + i,
                );
                for &(site, taken) in &stream {
                    remote.branch(site, taken);
                }
                let remote = remote.finish().expect("finish").bytes().to_vec();
                let local = local_report_bytes(&stream, NUM_SITES, PredictorKind::Gshare4Kb, slice);
                assert_eq!(remote, local, "session {i} diverged from its local run");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished as usize, SESSIONS);
    assert_eq!(stats.sessions_aborted, 0);
}

#[test]
fn mid_session_disconnect_is_reaped_and_siblings_survive() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let slice = SliceConfig::new(256, 16);

    // sibling A: a long-lived healthy session
    let stream_a = synthetic_stream(7, 20_000, 8);
    let mut sib = RemoteTracer::with_batch_size(
        connect(daemon.addr, 8, PredictorKind::Gshare4Kb, slice).expect("connect"),
        128,
    );
    for &(site, taken) in &stream_a[..10_000] {
        sib.branch(site, taken);
    }

    // session B: streams a bit, then vanishes mid-session
    {
        let mut doomed = connect(daemon.addr, 8, PredictorKind::Gshare4Kb, slice).expect("connect");
        doomed
            .send_events(&synthetic_stream(8, 100, 8))
            .expect("send");
        assert_eq!(doomed.flush().expect("flush"), 100);
    } // dropped here: TCP close with the session still open

    let handle = daemon.handle.clone();
    wait_until("dropped session to be reaped", || {
        handle.stats().sessions_aborted == 1
    });
    assert_eq!(handle.live_sessions(), 1, "only the sibling should remain");

    // the sibling is unaffected: stream the rest and verify equivalence
    for &(site, taken) in &stream_a[10_000..] {
        sib.branch(site, taken);
    }
    let remote = sib.finish().expect("sibling finish").bytes().to_vec();
    assert_eq!(
        remote,
        local_report_bytes(&stream_a, 8, PredictorKind::Gshare4Kb, slice)
    );
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
    assert_eq!(stats.sessions_aborted, 1);
}

#[test]
fn idle_session_is_garbage_collected() {
    let daemon = Daemon::start(
        ServerConfig::builder()
            .idle_timeout(Duration::from_millis(120))
            .quiet(true)
            .build()
            .expect("config"),
    );
    let mut session = connect(
        daemon.addr,
        4,
        PredictorKind::Gshare4Kb,
        SliceConfig::new(64, 4),
    )
    .expect("connect");
    session.send_events(&[(SiteId(0), true)]).expect("send");
    let handle = daemon.handle.clone();
    // go quiet: the GC thread must shut the connection down
    wait_until("idle session to be reaped", || {
        handle.stats().sessions_aborted == 1
    });
    wait_until("connection teardown", || handle.active_connections() == 0);
    assert_eq!(handle.live_sessions(), 0);
    assert!(
        session.flush().is_err(),
        "socket must be dead after the reap"
    );
}

#[test]
fn hello_beyond_session_table_gets_busy() {
    let daemon = Daemon::start(
        ServerConfig::builder()
            .max_sessions(1)
            .quiet(true)
            .build()
            .expect("config"),
    );
    let slice = SliceConfig::new(64, 4);
    let first = connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice).expect("connect");
    match connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice) {
        Err(ClientError::Refused { tier, msg, .. }) => {
            assert_eq!(tier, AdmissionTier::Shed);
            assert!(msg.contains("full"), "got {msg:?}");
        }
        Err(other) => panic!("expected Refused, got {other:?}"),
        Ok(_) => panic!("expected Refused, got a session"),
    }
    // finishing the first session frees the slot
    first.finish().expect("finish");
    connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice)
        .expect("slot must be free again")
        .finish()
        .expect("finish");
}

#[test]
fn event_limit_is_enforced_as_busy_backpressure() {
    let daemon = Daemon::start(
        ServerConfig::builder()
            .max_events_per_session(100)
            .quiet(true)
            .build()
            .expect("config"),
    );
    let mut session = connect(
        daemon.addr,
        8,
        PredictorKind::Gshare4Kb,
        SliceConfig::new(64, 4),
    )
    .expect("connect");
    session
        .send_events(&synthetic_stream(1, 90, 8))
        .expect("within limit");
    // the overflowing batch is refused in whole; seen at the next sync point
    session.send_events(&synthetic_stream(2, 20, 8)).ok();
    match session.flush() {
        Err(ClientError::Refused { msg, .. }) => assert!(msg.contains("limit"), "got {msg:?}"),
        other => panic!("expected Refused, got {other:?}"),
    }
    let handle = daemon.handle.clone();
    wait_until("over-limit session to be dropped", || {
        handle.stats().sessions_aborted == 1
    });
}

#[test]
fn out_of_range_site_is_a_protocol_error() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let mut session = connect(
        daemon.addr,
        4,
        PredictorKind::Gshare4Kb,
        SliceConfig::new(64, 4),
    )
    .expect("connect");
    session.send_events(&[(SiteId(9), true)]).ok();
    match session.flush() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::SITE_RANGE),
        other => panic!("expected SITE_RANGE error, got {other:?}"),
    }
}

#[test]
fn protocol_version_mismatch_is_rejected() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    ClientFrame::Hello(Hello {
        protocol: PROTOCOL_VERSION + 1,
        num_sites: 4,
        predictor: PredictorKind::Gshare4Kb,
        slice_len: 64,
        exec_threshold: 4,
        program: String::new(),
    })
    .write_to(&mut stream)
    .expect("write hello");
    match ServerFrame::read_from(&mut stream).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, codes::PROTOCOL),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn events_before_hello_is_rejected() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    ClientFrame::Events(vec![(0, true)])
        .write_to(&mut stream)
        .expect("write events");
    match ServerFrame::read_from(&mut stream).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, codes::BAD_STATE),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn resim_reports_match_in_process_runs_for_every_predictor() {
    const NUM_SITES: usize = 12;
    let daemon = Daemon::start(Daemon::quiet_config());
    let slice = SliceConfig::new(512, 32);
    let stream = synthetic_stream(11, 30_000, NUM_SITES as u32);
    let mut session =
        connect(daemon.addr, NUM_SITES, PredictorKind::Gshare4Kb, slice).expect("connect");
    session.send_events(&stream[..20_000]).expect("send");
    assert_eq!(session.flush().expect("flush"), 20_000);
    // one streamed session, every predictor re-simulated server-side — each
    // report must be bit-identical to an in-process run over the same prefix
    for &kind in &PredictorKind::EXTENDED {
        let remote = session.resimulate(kind).expect("resim");
        assert_eq!(
            remote.bytes(),
            &local_report_bytes(&stream[..20_000], NUM_SITES, kind, slice)[..],
            "resim under {kind} diverged from the in-process run"
        );
    }
    // the session must still accept events after a resim, and a later resim
    // must cover them
    session.send_events(&stream[20_000..]).expect("send more");
    let remote = session
        .resimulate(PredictorKind::Tage8Kb)
        .expect("resim after more events");
    assert_eq!(
        remote.bytes(),
        &local_report_bytes(&stream, NUM_SITES, PredictorKind::Tage8Kb, slice)[..]
    );
    // Finish still produces the session predictor's own report
    let final_report = session.finish().expect("finish");
    assert_eq!(
        final_report.bytes(),
        &local_report_bytes(&stream, NUM_SITES, PredictorKind::Gshare4Kb, slice)[..]
    );
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
    assert_eq!(stats.sessions_aborted, 0);
    assert_eq!(stats.events_ingested, stream.len() as u64);
}

#[test]
fn resim_without_recording_is_a_state_error() {
    let daemon = Daemon::start(
        ServerConfig::builder()
            .record_sessions(false)
            .quiet(true)
            .build()
            .expect("config"),
    );
    let mut session = connect(
        daemon.addr,
        4,
        PredictorKind::Gshare4Kb,
        SliceConfig::new(64, 4),
    )
    .expect("connect");
    session.send_events(&[(SiteId(0), true)]).expect("send");
    match session.resimulate(PredictorKind::Perceptron16Kb) {
        Err(ClientError::Server { code, msg }) => {
            assert_eq!(code, codes::BAD_STATE);
            assert!(msg.contains("recording"), "got {msg:?}");
        }
        other => panic!("expected BAD_STATE, got {other:?}"),
    }
}

#[test]
fn resim_with_unknown_predictor_id_gets_a_clean_error_frame() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    ClientFrame::Hello(Hello {
        protocol: PROTOCOL_VERSION,
        num_sites: 4,
        predictor: PredictorKind::Gshare4Kb,
        slice_len: 64,
        exec_threshold: 4,
        program: String::new(),
    })
    .write_to(&mut stream)
    .expect("write hello");
    match ServerFrame::read_from(&mut stream).expect("hello reply") {
        ServerFrame::HelloOk { .. } => {}
        other => panic!("expected HelloOk, got {other:?}"),
    }
    // hand-encode a Resim frame naming a predictor this build doesn't have;
    // the typed ClientFrame API can't produce one
    let mut payload = vec![0x06];
    let id = b"not-a-predictor";
    payload.push(id.len() as u8); // single-byte LEB128 length
    payload.extend_from_slice(id);
    btrace::write_frame(&mut stream, &payload).expect("write raw resim");
    // the daemon must answer with an error frame — not hang, and not just
    // drop the connection without a word
    match ServerFrame::read_from(&mut stream).expect("error reply") {
        ServerFrame::Error { code, msg } => {
            assert_eq!(code, codes::BAD_FRAME);
            assert!(msg.contains("predictor"), "got {msg:?}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn resim_on_a_still_open_session_replies_without_closing_it() {
    // a Resim before any events (and long before Finish) must be answered
    // in place, leaving the session open and fully usable afterwards
    let daemon = Daemon::start(Daemon::quiet_config());
    let slice = SliceConfig::new(64, 4);
    let mut session = connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice).expect("connect");
    let empty = session
        .resimulate(PredictorKind::Perceptron16Kb)
        .expect("resim on an empty still-open session");
    assert_eq!(
        empty.bytes(),
        &local_report_bytes(&[], 4, PredictorKind::Perceptron16Kb, slice)[..]
    );
    // the session survived: stream events and finish normally
    let stream = synthetic_stream(21, 5_000, 4);
    session.send_events(&stream).expect("send after resim");
    let report = session.finish().expect("finish after resim");
    assert_eq!(
        report.bytes(),
        &local_report_bytes(&stream, 4, PredictorKind::Gshare4Kb, slice)[..]
    );
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
    assert_eq!(stats.sessions_aborted, 0);
}

#[test]
fn resim_before_hello_is_a_state_error() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let mut stream = TcpStream::connect(daemon.addr).expect("connect");
    ClientFrame::Resim(PredictorKind::Gshare4Kb)
        .write_to(&mut stream)
        .expect("write resim");
    match ServerFrame::read_from(&mut stream).expect("reply") {
        ServerFrame::Error { code, .. } => assert_eq!(code, codes::BAD_STATE),
        other => panic!("expected Error, got {other:?}"),
    }
}

#[test]
fn graceful_shutdown_finishes_in_flight_sessions() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let slice = SliceConfig::new(256, 16);
    let stream = synthetic_stream(3, 10_000, 8);
    let mut remote = RemoteTracer::with_batch_size(
        connect(daemon.addr, 8, PredictorKind::Gshare4Kb, slice).expect("connect"),
        512,
    );
    for &(site, taken) in &stream[..5_000] {
        remote.branch(site, taken);
    }
    // request shutdown mid-stream; the in-flight session must still be able
    // to run to Finish and get its report during the drain window
    daemon.handle.shutdown();
    thread::sleep(Duration::from_millis(50));
    for &(site, taken) in &stream[5_000..] {
        remote.branch(site, taken);
    }
    let remote = remote.finish().expect("drain must let the session finish");
    assert_eq!(
        remote.bytes(),
        &local_report_bytes(&stream, 8, PredictorKind::Gshare4Kb, slice)[..]
    );
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
    assert_eq!(stats.sessions_aborted, 0);
}

#[test]
fn new_sessions_are_refused_while_draining() {
    // shutdown with one session still open keeps run() in its drain loop;
    // admission must answer Busy rather than open fresh sessions
    let daemon = Daemon::start(
        ServerConfig::builder()
            .drain_timeout(Duration::from_secs(30))
            .quiet(true)
            .build()
            .expect("config"),
    );
    let slice = SliceConfig::new(64, 4);
    let held = connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice).expect("connect");
    daemon.handle.shutdown();
    thread::sleep(Duration::from_millis(50));
    // the kernel may still complete the TCP handshake (listen backlog), but
    // no new session may be admitted once shutdown has been requested: the
    // Hello either gets a Busy reply or no reply at all — never HelloOk
    if let Ok(mut stream) = TcpStream::connect(daemon.addr) {
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("read timeout");
        ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites: 4,
            predictor: PredictorKind::Gshare4Kb,
            slice_len: 64,
            exec_threshold: 4,
            program: String::new(),
        })
        .write_to(&mut stream)
        .expect("write hello");
        if let Ok(ServerFrame::HelloOk { .. }) = ServerFrame::read_from(&mut stream) {
            panic!("daemon admitted a session while draining");
        }
    }
    held.finish().expect("held session finishes during drain");
    let stats = daemon.stop();
    assert_eq!(stats.sessions_finished, 1);
}

#[test]
fn busy_refusal_carries_tier_and_retry_after() {
    let daemon = Daemon::start(
        ServerConfig::builder()
            .max_sessions(1)
            .retry_after(Duration::from_millis(250))
            .quiet(true)
            .build()
            .expect("config"),
    );
    let slice = SliceConfig::new(64, 4);
    let first = connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice).expect("connect");
    match connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice) {
        Err(ClientError::Refused {
            tier,
            msg,
            retry_after,
        }) => {
            assert_eq!(tier, AdmissionTier::Shed);
            assert!(msg.contains("full"), "got {msg:?}");
            assert_eq!(retry_after, Duration::from_millis(250));
        }
        Err(other) => panic!("expected Refused with retry-after, got {other:?}"),
        Ok(_) => panic!("expected Refused with retry-after, got a session"),
    }
    first.finish().expect("finish");
}

#[test]
fn memory_pressure_degrades_admission_and_disables_recording() {
    // one shard with a 64 KiB recording budget and spilling disabled up to
    // that budget: a heavy session pushes resident bytes past budget/2
    // (20k events record at ~1.1 bytes each, landing between budget/2 and
    // the spill threshold), so the next Hello is admitted degraded
    // (streaming works, Resim doesn't)
    let daemon = Daemon::start(
        ServerConfig::builder()
            .shards(1)
            .shard_memory_budget(64 << 10)
            .spill_threshold(64 << 10)
            .quiet(true)
            .build()
            .expect("config"),
    );
    let slice = SliceConfig::new(512, 32);
    let stream = synthetic_stream(5, 20_000, 8);
    let mut heavy = connect(daemon.addr, 8, PredictorKind::Gshare4Kb, slice).expect("connect");
    assert_eq!(heavy.admission_tier(), AdmissionTier::Accept);
    heavy.send_events(&stream).expect("send");
    assert_eq!(heavy.flush().expect("flush"), stream.len() as u64);

    let mut degraded = connect(daemon.addr, 8, PredictorKind::Gshare4Kb, slice)
        .expect("degraded sessions are still admitted");
    assert_eq!(degraded.admission_tier(), AdmissionTier::Degrade);
    degraded
        .send_events(&synthetic_stream(6, 500, 8))
        .expect("degraded sessions still stream");
    match degraded.resimulate(PredictorKind::Tage8Kb) {
        Err(ClientError::Server { code, msg }) => {
            assert_eq!(code, codes::BAD_STATE);
            assert!(msg.contains("degraded"), "got {msg:?}");
        }
        other => panic!("expected BAD_STATE, got {other:?}"),
    }
    drop(degraded);

    // the heavy session is untouched: its verdicts stay bit-identical
    let report = heavy.finish().expect("finish");
    assert_eq!(
        report.bytes(),
        &local_report_bytes(&stream, 8, PredictorKind::Gshare4Kb, slice)[..]
    );
}

#[test]
fn spilled_recording_resims_bit_identical() {
    const NUM_SITES: usize = 8;
    let daemon = Daemon::start(
        ServerConfig::builder()
            .shards(1)
            .spill_threshold(4 << 10)
            .quiet(true)
            .build()
            .expect("config"),
    );
    let slice = SliceConfig::new(512, 32);
    let stream = synthetic_stream(9, 60_000, NUM_SITES as u32);
    let mut session =
        connect(daemon.addr, NUM_SITES, PredictorKind::Gshare4Kb, slice).expect("connect");
    session.send_events(&stream).expect("send");
    // a 4 KiB threshold forces the recording through multiple on-disk
    // segments; replaying them must reproduce the exact event order
    let remote = session
        .resimulate(PredictorKind::Tage8Kb)
        .expect("resim over spilled segments");
    assert_eq!(
        remote.bytes(),
        &local_report_bytes(&stream, NUM_SITES, PredictorKind::Tage8Kb, slice)[..],
        "resim over spilled segments diverged from the in-process run"
    );
    let snap = fetch_stats(daemon.addr).expect("stats");
    let spilled = snap
        .counters
        .iter()
        .find(|(name, _, _)| name == "serve_spill_segments_total")
        .map(|(_, _, v)| *v)
        .unwrap_or(0);
    assert!(
        spilled > 0,
        "tiny threshold must have produced spill segments"
    );
    let report = session.finish().expect("finish");
    assert_eq!(
        report.bytes(),
        &local_report_bytes(&stream, NUM_SITES, PredictorKind::Gshare4Kb, slice)[..]
    );
}

#[test]
#[allow(deprecated)]
fn deprecated_connect_shims_still_work() {
    let daemon = Daemon::start(Daemon::quiet_config());
    let slice = SliceConfig::new(64, 4);
    RemoteSession::connect(daemon.addr, 4, PredictorKind::Gshare4Kb, slice)
        .expect("legacy connect")
        .finish()
        .expect("finish");
    RemoteSession::connect_with_program(daemon.addr, 4, PredictorKind::Gshare4Kb, slice, "legacy")
        .expect("legacy connect_with_program")
        .finish()
        .expect("finish");
}
