//! End-to-end metrics: replay a workload against a live daemon, fetch the
//! `Stats` snapshot over the wire, and check the counters against an
//! independently computed event count.
//!
//! Lives in its own test binary (not `e2e.rs`) because the metrics registry
//! is process-global: other daemons running in the same process would fold
//! their traffic into the counters this test asserts on.

use bpred::PredictorKind;
use btrace::CountingTracer;
use std::net::SocketAddr;
use std::thread;
use twodprof_serve::{
    fetch_stats, replay_workload, ReplaySpec, Server, ServerConfig, ServerHandle, ServerStats,
};
use workloads::Scale;

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    join: Option<thread::JoinHandle<ServerStats>>,
}

impl Daemon {
    fn start() -> Self {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig::builder().quiet(true).build().expect("config"),
        )
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let join = thread::spawn(move || server.run().expect("server run"));
        Self {
            addr,
            handle,
            join: Some(join),
        }
    }

    fn stop(mut self) -> ServerStats {
        self.handle.shutdown();
        self.join
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// The workload's true dynamic branch count, computed without any daemon.
fn independent_event_count(name: &str, input: &str) -> u64 {
    let workload = workloads::by_name(name, Scale::Tiny).expect("workload");
    let input = workload.input_set(input).expect("input");
    let mut counter = CountingTracer::new();
    workload.run(&input, &mut counter);
    counter.count()
}

#[test]
fn stats_counters_match_replayed_event_count() {
    let daemon = Daemon::start();

    // a pre-traffic snapshot must already answer (Stats needs no session)
    let before = fetch_stats(daemon.addr).expect("stats before traffic");
    assert_eq!(before.counter("serve_events_total").unwrap_or(0), 0);

    let expected_events = independent_event_count("gzip", "train");
    assert!(expected_events > 0);

    let spec = ReplaySpec {
        workload: "gzip".to_owned(),
        input: "train".to_owned(),
        scale: Scale::Tiny,
        predictor: PredictorKind::Gshare4Kb,
        batch: 1024,
        slice: None,
        verify: false,
        trace: false,
        program: String::new(),
    };
    let summary = replay_workload(daemon.addr, &spec).expect("replay");
    assert_eq!(summary.events, expected_events);

    let snap = fetch_stats(daemon.addr).expect("stats after traffic");
    assert_eq!(
        snap.counter("serve_events_total"),
        Some(expected_events),
        "daemon-side ingest counter must match the independent count"
    );
    assert_eq!(snap.counter("serve_sessions_opened_total"), Some(1));
    assert_eq!(snap.counter("serve_sessions_finished_total"), Some(1));
    assert_eq!(
        snap.counter("serve_sessions_busy_rejected_total")
            .unwrap_or(0),
        0
    );
    // the daemon's profiler layer also saw every event: its per-slice
    // accounting (events counted at slice boundaries, partial fold included)
    // must agree with the wire-level ingest counter
    assert_eq!(
        snap.counter("profiler_events_total"),
        Some(expected_events),
        "profiler slice-boundary accounting must cover every event"
    );
    // exposition text carries the same value
    let text = snap.to_text();
    assert!(text.contains(&format!("serve_events_total {expected_events}")));

    let stats = daemon.stop();
    assert_eq!(stats.events_ingested, expected_events);
    assert_eq!(stats.sessions_finished, 1);
}
