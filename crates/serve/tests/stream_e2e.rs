//! End-to-end streaming tests: two concurrent sessions drive a
//! phase-changing synthetic workload into one program's shared
//! [`StreamingProfiler`] while a live `watch` subscription collects the
//! drift events the verdict flips raise.

use bpred::PredictorKind;
use btrace::SiteId;
use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::thread;
use twodprof_core::{SliceConfig, Thresholds};
use twodprof_serve::wire::codes;
use twodprof_serve::{
    fetch_stats, fetch_verdicts, ClientError, ConnectOptions, Server, ServerConfig, ServerHandle,
    ServerStats, WatchClient,
};
use twodprof_stream::StreamConfig;

struct Daemon {
    addr: SocketAddr,
    handle: ServerHandle,
    join: Option<thread::JoinHandle<ServerStats>>,
}

impl Daemon {
    fn start(config: ServerConfig) -> Self {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let join = thread::spawn(move || server.run().expect("server run"));
        Self {
            addr,
            handle,
            join: Some(join),
        }
    }

    fn stop(mut self) -> ServerStats {
        self.handle.shutdown();
        self.join
            .take()
            .expect("not yet stopped")
            .join()
            .expect("server thread")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

/// Fast-folding stream geometry: 500-event epochs, a 4-slice window,
/// hysteresis 1 so every confirmed flip surfaces immediately.
fn streaming_config() -> ServerConfig {
    ServerConfig::builder()
        .quiet(true)
        .stream(StreamConfig {
            slice: SliceConfig::new(500, 16),
            window: 4,
            hysteresis: 1,
            thresholds: Thresholds::paper(),
            max_lag: 1000,
        })
        .build()
        .expect("config")
}

const NUM_SITES: usize = 4;
const EVENTS_PER_SESSION: u64 = 20_000;
const FLIP_EVERY: u64 = 5_000;

/// Streams the drifting workload: site 0 alternates between an always-taken
/// phase (near-perfect gshare accuracy) and a pseudo-random phase (~50%),
/// the rest stay steadily alternating. `salt` decorrelates the two
/// sessions' random phases. The session connects (registering `program`
/// with the daemon), then parks at `ready` before streaming — sessions are
/// fast enough on loopback to finish before a concurrent subscriber
/// registers, and events published pre-subscription are never replayed.
fn drive_session(addr: SocketAddr, program: &str, salt: u64, ready: &Barrier) {
    let slice = SliceConfig::new(8192, 16);
    let mut session = ConnectOptions::new(NUM_SITES, PredictorKind::Gshare4Kb, slice)
        .program(program)
        .connect(addr)
        .expect("connect with program");
    ready.wait();
    let mut rng = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut batch = Vec::with_capacity(1024);
    for i in 0..EVENTS_PER_SESSION {
        let site = (i % NUM_SITES as u64) as u32;
        let taken = if site == 0 {
            if (i / FLIP_EVERY).is_multiple_of(2) {
                true
            } else {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng & 1 == 1
            }
        } else {
            (i / NUM_SITES as u64).is_multiple_of(2)
        };
        batch.push((SiteId(site), taken));
        if batch.len() == 1024 {
            session.send_events(&batch).expect("send events");
            batch.clear();
            session.flush().expect("flush");
        }
    }
    if !batch.is_empty() {
        session.send_events(&batch).expect("send tail");
    }
    session.finish().expect("finish");
}

#[test]
fn watch_collects_drift_from_concurrent_sessions() {
    let daemon = Daemon::start(streaming_config());
    let addr = daemon.addr;

    // Sessions must exist before a subscription: the program registry entry
    // is created by the first `Hello` naming it. Both sessions park at the
    // barrier after connecting and only stream once the watch below is
    // subscribed, so every drift event is published to a live subscriber.
    let ready = Arc::new(Barrier::new(3));
    let a = {
        let ready = Arc::clone(&ready);
        thread::spawn(move || drive_session(addr, "soak", 1, &ready))
    };
    let b = {
        let ready = Arc::clone(&ready);
        thread::spawn(move || drive_session(addr, "soak", 2, &ready))
    };

    // The subscription may race the first Hello; retry until the program
    // registers.
    let mut watch = loop {
        match WatchClient::connect(addr, "soak") {
            Ok(w) => break w,
            Err(ClientError::Server { code, .. }) if code == codes::BAD_STATE => {
                thread::sleep(std::time::Duration::from_millis(5));
            }
            Err(e) => panic!("watch connect failed: {e}"),
        }
    };
    assert_eq!(watch.snapshot().sites.len(), NUM_SITES);
    assert_eq!(watch.snapshot().slice_len, 500);
    assert_eq!(watch.snapshot().window, 4);
    ready.wait();

    a.join().expect("session a");
    b.join().expect("session b");

    // Sessions are done, so the program's epochs are all folded: the
    // sessionless snapshot must reflect the final state.
    let snap = fetch_verdicts(addr, "soak").expect("verdict snapshot");
    assert_eq!(snap.sites.len(), NUM_SITES);
    assert!(snap.epoch > 0, "epochs must have folded");
    assert!(
        snap.program_accuracy.is_some(),
        "global accuracy must be populated"
    );

    let stats = fetch_stats(addr).expect("stats");
    assert!(
        stats.counter("stream_windows_folded_total").unwrap_or(0) > 0,
        "windows must have folded"
    );
    assert_eq!(
        stats
            .counter("serve_frame_decode_errors_total")
            .unwrap_or(0),
        0,
        "no frame may have failed to decode"
    );
    assert!(
        stats.counter("stream_drift_events_total").unwrap_or(0) > 0,
        "the phase flips must have raised drift events"
    );

    // Shut the daemon down in the background; the watch stream drains and
    // closes, handing us everything published so far.
    let stopper = thread::spawn(move || daemon.stop());
    let mut events = Vec::new();
    while let Some(ev) = watch.next_event().expect("drift frame") {
        events.push(ev);
    }
    stopper.join().expect("daemon stop");

    assert!(
        !events.is_empty(),
        "watch must observe at least one drift event"
    );
    // The steady sites may flip once while gshare warms up; sustained
    // drift can only come from the phase-flipping site.
    assert!(
        events.iter().any(|e| e.site == 0),
        "the phase-flipping site must drift: {events:?}"
    );
    assert!(
        events.iter().all(|e| e.site == 0 || e.epoch < 8),
        "steady sites may only flip during predictor warmup: {events:?}"
    );
    assert!(
        events.iter().all(|e| e.from != e.to),
        "drift events must describe real flips: {events:?}"
    );
}

#[test]
fn subscribe_to_unknown_program_is_rejected() {
    let daemon = Daemon::start(streaming_config());
    match fetch_verdicts(daemon.addr, "nobody") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::BAD_STATE),
        other => panic!("expected BAD_STATE, got {other:?}"),
    }
    match WatchClient::connect(daemon.addr, "nobody") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, codes::BAD_STATE),
        other => panic!("expected BAD_STATE, got {:?}", other.err()),
    }
}

#[test]
fn program_registry_survives_session_end() {
    let daemon = Daemon::start(streaming_config());
    drive_session(daemon.addr, "once", 7, &Barrier::new(1));
    // No live session remains, but the program's final verdicts stay
    // queryable until the daemon exits.
    let snap = fetch_verdicts(daemon.addr, "once").expect("snapshot after end");
    assert!(snap.epoch > 0);
    assert!(snap.sites.iter().any(|s| s.slices > 0));
}
