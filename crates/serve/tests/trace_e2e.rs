//! Subprocess end-to-end test for span tracing: a real `twodprofd` process,
//! a real `twodprof-client replay --trace-out` run against it, and
//! assertions over the stitched Chrome trace the client writes.
//!
//! This is the acceptance path for trace propagation: the exported file
//! must hold client-side spans (pid 1) and daemon-side spans (pid 2) under
//! one shared trace id, with every daemon span inside the client's
//! `client.replay` request window.

use std::fs;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use twodprof_serve::{TRACE_PID_CLIENT, TRACE_PID_DAEMON};

struct DaemonProc {
    child: Child,
    addr: String,
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("twodprof-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn spawn_daemon(dir: &std::path::Path) -> DaemonProc {
    let addr_file = dir.join("addr");
    let child = Command::new(env!("CARGO_BIN_EXE_twodprofd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn twodprofd");
    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(s) = fs::read_to_string(&addr_file) {
            if !s.trim().is_empty() {
                break s.trim().to_owned();
            }
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for twodprofd to write its address"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    DaemonProc { child, addr }
}

#[test]
fn replay_trace_out_stitches_client_and_daemon_spans() {
    let dir = scratch_dir("trace-e2e");
    let daemon = spawn_daemon(&dir);
    let trace_path = dir.join("trace.json");

    let output = Command::new(env!("CARGO_BIN_EXE_twodprof-client"))
        .args([
            "replay",
            "gzip",
            "train",
            "--scale",
            "tiny",
            "--addr",
            &daemon.addr,
            "--trace-out",
            trace_path.to_str().expect("utf-8 path"),
        ])
        // explicit, so an environment override can't turn tracing off
        .env("TWODPROF_TRACE", "on")
        .output()
        .expect("run twodprof-client");
    assert!(
        output.status.success(),
        "client failed: stdout={} stderr={}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let doc = fs::read_to_string(&trace_path).expect("trace.json written");
    // parse_events validates the document shape: a traceEvents array of
    // complete events with monotone timestamps per (pid, tid) lane
    let events = twodprof_obs::chrome::parse_events(&doc).expect("valid Chrome trace JSON");
    assert!(!events.is_empty(), "trace must contain events");

    let client: Vec<_> = events
        .iter()
        .filter(|e| e.pid == TRACE_PID_CLIENT)
        .collect();
    let server: Vec<_> = events
        .iter()
        .filter(|e| e.pid == TRACE_PID_DAEMON)
        .collect();
    assert!(!client.is_empty(), "expected client-side spans (pid 1)");
    assert!(!server.is_empty(), "expected daemon-side spans (pid 2)");

    // one trace id spans both processes
    let trace_id = &client[0].trace;
    assert!(
        events.iter().all(|e| &e.trace == trace_id),
        "all spans must share the propagated trace id"
    );

    // every daemon span sits inside the client's request window
    let root = client
        .iter()
        .find(|e| e.name == "client.replay")
        .expect("client.replay root span");
    let window = root.ts..=root.ts + root.dur;
    for span in &server {
        assert!(
            window.contains(&span.ts) && window.contains(&(span.ts + span.dur)),
            "daemon span {:?} [{}..{}] outside client window [{}..{}]",
            span.name,
            span.ts,
            span.ts + span.dur,
            root.ts,
            root.ts + root.dur
        );
    }

    // the daemon side covered the session lifecycle, not just one frame
    assert!(
        server.iter().any(|e| e.name.starts_with("serve.frame.")),
        "expected per-frame daemon spans, got {:?}",
        server.iter().map(|e| &e.name).collect::<Vec<_>>()
    );

    drop(daemon);
    let _ = fs::remove_dir_all(&dir);
}
