//! Property tests for the daemon wire protocol: every frame kind must
//! round-trip bit-exactly, and malformed inputs (truncation, oversized
//! length prefixes) must be rejected rather than mis-parsed or
//! over-allocated.

use bpred::PredictorKind;
use btrace::{SiteId, Tracer};
use proptest::prelude::*;
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_serve::wire::{ClientFrame, Hello, ServerFrame, PROTOCOL_VERSION};

fn predictor_from(seed: u8) -> PredictorKind {
    let all = PredictorKind::ALL;
    all[seed as usize % all.len()]
}

proptest! {
    #[test]
    fn hello_roundtrips(
        num_sites in 1u32..=1 << 20,
        pred_seed in any::<u8>(),
        slice_len in 1u64..1 << 40,
        thr_frac in 0.0f64..1.0,
        program in "[a-z0-9./-]{0,32}",
    ) {
        let frame = ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites,
            predictor: predictor_from(pred_seed),
            slice_len,
            exec_threshold: ((slice_len as f64 - 1.0) * thr_frac) as u64,
            program,
        });
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn subscribe_roundtrips(program in "[a-z0-9./-]{0,32}", watch in any::<bool>()) {
        let frame = ClientFrame::Subscribe { program, watch };
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn events_roundtrip(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 0..600),
    ) {
        let frame = ClientFrame::Events(events);
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn server_frames_roundtrip(
        session_id in any::<u64>(),
        events_total in any::<u64>(),
        msg in "[ a-z0-9]{0,40}",
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        for frame in [
            ServerFrame::HelloOk { session_id },
            ServerFrame::Ack { events_total },
            ServerFrame::Busy { msg: msg.clone() },
            ServerFrame::Report(body),
            ServerFrame::Error { code: session_id % 250, msg },
        ] {
            let bytes = frame.encode();
            prop_assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_client_frames_rejected(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = ClientFrame::Events(events).encode();
        // cut at least one byte off the end: every strict prefix must fail
        let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ClientFrame::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected(extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = ClientFrame::Flush.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ClientFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::Ack { events_total: 7 }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Regression guard for the report wire format itself: a report built
    // from a random event stream must survive `to_bytes -> from_bytes` and
    // re-encode to the identical byte string (the property the daemon's
    // bit-identical `--verify` mode rests on).
    #[test]
    fn profile_report_bytes_roundtrip(
        events in prop::collection::vec((0u32..8, any::<bool>()), 1..4000),
        pred_seed in any::<u8>(),
    ) {
        let mut prof = TwoDProfiler::new(
            8,
            predictor_from(pred_seed).build(),
            SliceConfig::new(64, 8),
        );
        for &(site, taken) in &events {
            prof.branch(SiteId(site), taken);
        }
        let report = prof.finish(Thresholds::paper());
        let bytes = report.to_bytes();
        let decoded = twodprof_core::ProfileReport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }
}

/// An oversized length prefix must be rejected *before* any allocation is
/// attempted — a hostile peer must not be able to make the daemon reserve
/// gigabytes with a five-byte frame header.
#[test]
fn oversized_length_prefix_rejected() {
    let mut bytes = Vec::new();
    btrace::write_varint(&mut bytes, u64::MAX).unwrap();
    bytes.extend_from_slice(&[0u8; 16]);
    let mut r = &bytes[..];
    let err = btrace::read_frame(&mut r, btrace::MAX_FRAME_LEN).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
