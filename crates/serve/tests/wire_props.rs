//! Property tests for the daemon wire protocol: every frame kind must
//! round-trip bit-exactly, and malformed inputs (truncation, oversized
//! length prefixes) must be rejected rather than mis-parsed or
//! over-allocated.

use bpred::PredictorKind;
use btrace::{SiteId, Tracer};
use proptest::prelude::*;
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_engine::JobSpec;
use twodprof_serve::wire::{
    ClientFrame, Hello, JobOutcome, JobPayload, ServerFrame, PROTOCOL_VERSION,
};
use workloads::Scale;

fn predictor_from(seed: u8) -> PredictorKind {
    let all = PredictorKind::ALL;
    all[seed as usize % all.len()]
}

fn scale_from(seed: u8) -> Scale {
    match seed % 3 {
        0 => Scale::Tiny,
        1 => Scale::Small,
        _ => Scale::Full,
    }
}

/// A [`JobSpec`] covering all four job kinds, every scale, and arbitrary
/// (wire-legal) workload/input names.
fn spec_from(workload: &str, input: &str, scale_seed: u8, kind_seed: u8, pred_seed: u8) -> JobSpec {
    let scale = scale_from(scale_seed);
    match kind_seed % 4 {
        0 => JobSpec::count(workload, input, scale),
        1 => JobSpec::accuracy(workload, input, scale, predictor_from(pred_seed)),
        2 => JobSpec::two_d(workload, input, scale, predictor_from(pred_seed)),
        _ => JobSpec::trace(workload, input, scale),
    }
}

proptest! {
    #[test]
    fn hello_roundtrips(
        num_sites in 1u32..=1 << 20,
        pred_seed in any::<u8>(),
        slice_len in 1u64..1 << 40,
        thr_frac in 0.0f64..1.0,
        program in "[a-z0-9./-]{0,32}",
    ) {
        let frame = ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites,
            predictor: predictor_from(pred_seed),
            slice_len,
            exec_threshold: ((slice_len as f64 - 1.0) * thr_frac) as u64,
            program,
        });
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn subscribe_roundtrips(program in "[a-z0-9./-]{0,32}", watch in any::<bool>()) {
        let frame = ClientFrame::Subscribe { program, watch };
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn events_roundtrip(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 0..600),
    ) {
        let frame = ClientFrame::Events(events);
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn server_frames_roundtrip(
        session_id in any::<u64>(),
        events_total in any::<u64>(),
        msg in "[ a-z0-9]{0,40}",
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        for frame in [
            ServerFrame::HelloOk { session_id },
            ServerFrame::Ack { events_total },
            ServerFrame::Busy { msg: msg.clone() },
            ServerFrame::Report(body),
            ServerFrame::Error { code: session_id % 250, msg },
        ] {
            let bytes = frame.encode();
            prop_assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_client_frames_rejected(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = ClientFrame::Events(events).encode();
        // cut at least one byte off the end: every strict prefix must fail
        let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ClientFrame::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected(extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = ClientFrame::Flush.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ClientFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::Ack { events_total: 7 }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
    }

    // --- fabric frames (SubmitJob 0x0A / CacheQuery 0x0B and replies) ---

    #[test]
    fn fabric_client_frames_roundtrip(
        job_id in any::<u64>(),
        workload in "[a-z0-9./-]{1,32}",
        input in "[a-z0-9./-]{0,32}",
        scale_seed in any::<u8>(),
        kind_seed in any::<u8>(),
        pred_seed in any::<u8>(),
        submit in any::<bool>(),
    ) {
        let spec = spec_from(&workload, &input, scale_seed, kind_seed, pred_seed);
        let frame = if submit {
            ClientFrame::SubmitJob { job_id, spec }
        } else {
            ClientFrame::CacheQuery { job_id, spec }
        };
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn fabric_server_frames_roundtrip(
        job_id in any::<u64>(),
        spec_hash in any::<u64>(),
        checksum in any::<u64>(),
        body in prop::collection::vec(any::<u8>(), 0..300),
        cached in any::<bool>(),
        msg in "[ a-z0-9]{0,40}",
    ) {
        let payload = |cached| JobPayload {
            cached,
            spec_hash,
            bytes: body.clone(),
            checksum,
        };
        for frame in [
            ServerFrame::JobResult { job_id, outcome: JobOutcome::Done(payload(cached)) },
            ServerFrame::JobResult { job_id, outcome: JobOutcome::TooLarge },
            ServerFrame::JobResult { job_id, outcome: JobOutcome::Failed(msg) },
            ServerFrame::CacheReply { job_id, result: None },
            // the wire carries no cached flag for cache replies — a hit is
            // cached by definition, so the decoder always sets it
            ServerFrame::CacheReply { job_id, result: Some(payload(true)) },
        ] {
            let bytes = frame.encode();
            prop_assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_fabric_frames_rejected(
        job_id in any::<u64>(),
        workload in "[a-z0-9./-]{1,32}",
        body in prop::collection::vec(any::<u8>(), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let spec = JobSpec::count(&workload, "train", Scale::Tiny);
        let client = ClientFrame::SubmitJob { job_id, spec }.encode();
        let cut = 1 + ((client.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ClientFrame::decode(&client[..client.len() - cut]).is_err());

        let server = ServerFrame::JobResult {
            job_id,
            outcome: JobOutcome::Done(JobPayload {
                cached: false,
                spec_hash: job_id,
                bytes: body,
                checksum: 7,
            }),
        }
        .encode();
        let cut = 1 + ((server.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ServerFrame::decode(&server[..server.len() - cut]).is_err());
    }

    #[test]
    fn fabric_trailing_garbage_rejected(
        job_id in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let spec = JobSpec::trace("gzip", "train", Scale::Tiny);
        let mut bytes = ClientFrame::CacheQuery { job_id, spec }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ClientFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::CacheReply { job_id, result: None }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::JobResult { job_id, outcome: JobOutcome::TooLarge }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Regression guard for the report wire format itself: a report built
    // from a random event stream must survive `to_bytes -> from_bytes` and
    // re-encode to the identical byte string (the property the daemon's
    // bit-identical `--verify` mode rests on).
    #[test]
    fn profile_report_bytes_roundtrip(
        events in prop::collection::vec((0u32..8, any::<bool>()), 1..4000),
        pred_seed in any::<u8>(),
    ) {
        let mut prof = TwoDProfiler::new(
            8,
            predictor_from(pred_seed).build(),
            SliceConfig::new(64, 8),
        );
        for &(site, taken) in &events {
            prof.branch(SiteId(site), taken);
        }
        let report = prof.finish(Thresholds::paper());
        let bytes = report.to_bytes();
        let decoded = twodprof_core::ProfileReport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }
}

/// An oversized length prefix must be rejected *before* any allocation is
/// attempted — a hostile peer must not be able to make the daemon reserve
/// gigabytes with a five-byte frame header.
#[test]
fn oversized_length_prefix_rejected() {
    let mut bytes = Vec::new();
    btrace::write_varint(&mut bytes, u64::MAX).unwrap();
    bytes.extend_from_slice(&[0u8; 16]);
    let mut r = &bytes[..];
    let err = btrace::read_frame(&mut r, btrace::MAX_FRAME_LEN).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
