//! Property tests for the daemon wire protocol: every frame kind must
//! round-trip bit-exactly, and malformed inputs (truncation, oversized
//! length prefixes) must be rejected rather than mis-parsed or
//! over-allocated.

use bpred::PredictorKind;
use btrace::{SiteId, Tracer};
use proptest::prelude::*;
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_engine::JobSpec;
use twodprof_serve::wire::{
    AdmissionTier, ClientFrame, FrameDecoder, Hello, JobOutcome, JobPayload, ServerFrame,
    PROTOCOL_VERSION,
};
use workloads::Scale;

fn predictor_from(seed: u8) -> PredictorKind {
    let all = PredictorKind::ALL;
    all[seed as usize % all.len()]
}

fn scale_from(seed: u8) -> Scale {
    match seed % 3 {
        0 => Scale::Tiny,
        1 => Scale::Small,
        _ => Scale::Full,
    }
}

/// A [`JobSpec`] covering all four job kinds, every scale, and arbitrary
/// (wire-legal) workload/input names.
fn spec_from(workload: &str, input: &str, scale_seed: u8, kind_seed: u8, pred_seed: u8) -> JobSpec {
    let scale = scale_from(scale_seed);
    match kind_seed % 4 {
        0 => JobSpec::count(workload, input, scale),
        1 => JobSpec::accuracy(workload, input, scale, predictor_from(pred_seed)),
        2 => JobSpec::two_d(workload, input, scale, predictor_from(pred_seed)),
        _ => JobSpec::trace(workload, input, scale),
    }
}

proptest! {
    #[test]
    fn hello_roundtrips(
        num_sites in 1u32..=1 << 20,
        pred_seed in any::<u8>(),
        slice_len in 1u64..1 << 40,
        thr_frac in 0.0f64..1.0,
        program in "[a-z0-9./-]{0,32}",
    ) {
        let frame = ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites,
            predictor: predictor_from(pred_seed),
            slice_len,
            exec_threshold: ((slice_len as f64 - 1.0) * thr_frac) as u64,
            program,
        });
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn subscribe_roundtrips(program in "[a-z0-9./-]{0,32}", watch in any::<bool>()) {
        let frame = ClientFrame::Subscribe { program, watch };
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn events_roundtrip(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 0..600),
    ) {
        let frame = ClientFrame::Events(events);
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn server_frames_roundtrip(
        session_id in any::<u64>(),
        events_total in any::<u64>(),
        msg in "[ a-z0-9]{0,40}",
        body in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        for frame in [
            ServerFrame::HelloOk { session_id, tier: AdmissionTier::Accept },
            ServerFrame::HelloOk { session_id, tier: AdmissionTier::Degrade },
            ServerFrame::Ack { events_total },
            ServerFrame::Busy {
                msg: msg.clone(),
                tier: AdmissionTier::Shed,
                retry_after_ms: events_total,
            },
            ServerFrame::Report(body),
            ServerFrame::Error { code: session_id % 250, msg },
        ] {
            let bytes = frame.encode();
            prop_assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_client_frames_rejected(
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = ClientFrame::Events(events).encode();
        // cut at least one byte off the end: every strict prefix must fail
        let cut = 1 + ((bytes.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ClientFrame::decode(&bytes[..bytes.len() - cut]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected(extra in prop::collection::vec(any::<u8>(), 1..16)) {
        let mut bytes = ClientFrame::Flush.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ClientFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::Ack { events_total: 7 }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
    }

    // --- fabric frames (SubmitJob 0x0A / CacheQuery 0x0B and replies) ---

    #[test]
    fn fabric_client_frames_roundtrip(
        job_id in any::<u64>(),
        workload in "[a-z0-9./-]{1,32}",
        input in "[a-z0-9./-]{0,32}",
        scale_seed in any::<u8>(),
        kind_seed in any::<u8>(),
        pred_seed in any::<u8>(),
        submit in any::<bool>(),
    ) {
        let spec = spec_from(&workload, &input, scale_seed, kind_seed, pred_seed);
        let frame = if submit {
            ClientFrame::SubmitJob { job_id, spec }
        } else {
            ClientFrame::CacheQuery { job_id, spec }
        };
        let bytes = frame.encode();
        prop_assert_eq!(ClientFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn fabric_server_frames_roundtrip(
        job_id in any::<u64>(),
        spec_hash in any::<u64>(),
        checksum in any::<u64>(),
        body in prop::collection::vec(any::<u8>(), 0..300),
        cached in any::<bool>(),
        msg in "[ a-z0-9]{0,40}",
    ) {
        let payload = |cached| JobPayload {
            cached,
            spec_hash,
            bytes: body.clone(),
            checksum,
        };
        for frame in [
            ServerFrame::JobResult { job_id, outcome: JobOutcome::Done(payload(cached)) },
            ServerFrame::JobResult { job_id, outcome: JobOutcome::TooLarge },
            ServerFrame::JobResult { job_id, outcome: JobOutcome::Failed(msg) },
            ServerFrame::CacheReply { job_id, result: None },
            // the wire carries no cached flag for cache replies — a hit is
            // cached by definition, so the decoder always sets it
            ServerFrame::CacheReply { job_id, result: Some(payload(true)) },
        ] {
            let bytes = frame.encode();
            prop_assert_eq!(ServerFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn truncated_fabric_frames_rejected(
        job_id in any::<u64>(),
        workload in "[a-z0-9./-]{1,32}",
        body in prop::collection::vec(any::<u8>(), 1..200),
        cut_frac in 0.0f64..1.0,
    ) {
        let spec = JobSpec::count(&workload, "train", Scale::Tiny);
        let client = ClientFrame::SubmitJob { job_id, spec }.encode();
        let cut = 1 + ((client.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ClientFrame::decode(&client[..client.len() - cut]).is_err());

        let server = ServerFrame::JobResult {
            job_id,
            outcome: JobOutcome::Done(JobPayload {
                cached: false,
                spec_hash: job_id,
                bytes: body,
                checksum: 7,
            }),
        }
        .encode();
        let cut = 1 + ((server.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ServerFrame::decode(&server[..server.len() - cut]).is_err());
    }

    #[test]
    fn fabric_trailing_garbage_rejected(
        job_id in any::<u64>(),
        extra in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let spec = JobSpec::trace("gzip", "train", Scale::Tiny);
        let mut bytes = ClientFrame::CacheQuery { job_id, spec }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ClientFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::CacheReply { job_id, result: None }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
        let mut bytes = ServerFrame::JobResult { job_id, outcome: JobOutcome::TooLarge }.encode();
        bytes.extend_from_slice(&extra);
        prop_assert!(ServerFrame::decode(&bytes).is_err());
    }
}

/// One length-prefixed wire image of `frames`, exactly what a client's
/// socket would carry.
fn wire_bytes(frames: &[ClientFrame]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for frame in frames {
        btrace::write_frame(&mut bytes, &frame.encode()).unwrap();
    }
    bytes
}

/// Decodes `bytes` with the blocking reader the pre-shard daemon used —
/// the reference the incremental decoder must be byte-identical to.
fn blocking_decode(mut bytes: &[u8]) -> Vec<ClientFrame> {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        let payload = btrace::read_frame(&mut bytes, btrace::MAX_FRAME_LEN).unwrap();
        frames.push(ClientFrame::decode(&payload).unwrap());
    }
    frames
}

fn drain(decoder: &mut FrameDecoder) -> Vec<ClientFrame> {
    let mut frames = Vec::new();
    while let Some(frame) = decoder.next_client().unwrap() {
        frames.push(frame);
    }
    frames
}

/// A mixed bag of client frame kinds keyed by a seed byte.
fn client_frame_from(kind: u8, events: &[(u32, bool)], name: &str, pred_seed: u8) -> ClientFrame {
    match kind % 6 {
        0 => ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites: 8,
            predictor: predictor_from(pred_seed),
            slice_len: 64,
            exec_threshold: 4,
            program: name.to_owned(),
        }),
        1 => ClientFrame::Events(events.to_vec()),
        2 => ClientFrame::Flush,
        3 => ClientFrame::Finish,
        4 => ClientFrame::Subscribe {
            program: name.to_owned(),
            watch: kind & 0x40 != 0,
        },
        _ => ClientFrame::Resim(predictor_from(pred_seed)),
    }
}

proptest! {
    // The shard loop sees arbitrary read boundaries; every split of the
    // same byte stream must decode to the same frames the blocking reader
    // produces. One byte at a time is the worst case.
    #[test]
    fn incremental_decoder_survives_one_byte_reads(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 0..200),
        name in "[a-z0-9./-]{0,24}",
        pred_seed in any::<u8>(),
    ) {
        let frames: Vec<ClientFrame> = kinds
            .iter()
            .map(|&k| client_frame_from(k, &events, &name, pred_seed))
            .collect();
        let bytes = wire_bytes(&frames);
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for &b in &bytes {
            decoder.push(&[b]);
            decoded.extend(drain(&mut decoder));
        }
        prop_assert_eq!(decoder.buffered(), 0, "no bytes may be left behind");
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(decoded, blocking_decode(&bytes));
    }

    #[test]
    fn incremental_decoder_survives_random_splits(
        kinds in prop::collection::vec(any::<u8>(), 1..8),
        events in prop::collection::vec((0u32..1 << 20, any::<bool>()), 0..200),
        name in "[a-z0-9./-]{0,24}",
        pred_seed in any::<u8>(),
        splits in prop::collection::vec(any::<u16>(), 0..32),
    ) {
        let frames: Vec<ClientFrame> = kinds
            .iter()
            .map(|&k| client_frame_from(k, &events, &name, pred_seed))
            .collect();
        let bytes = wire_bytes(&frames);
        let mut cuts: Vec<usize> = splits
            .iter()
            .map(|&s| s as usize % (bytes.len() + 1))
            .collect();
        cuts.push(0);
        cuts.push(bytes.len());
        cuts.sort_unstable();
        let mut decoder = FrameDecoder::new();
        let mut decoded = Vec::new();
        for pair in cuts.windows(2) {
            decoder.push(&bytes[pair[0]..pair[1]]);
            decoded.extend(drain(&mut decoder));
        }
        prop_assert_eq!(decoder.buffered(), 0, "no bytes may be left behind");
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(decoded, blocking_decode(&bytes));
    }
}

/// Regression: a `Hello` split mid-frame (the handshake race a slow client
/// hits first) must stay pending, then decode whole — not error, not
/// produce a partial frame.
#[test]
fn hello_split_mid_frame_decodes_whole() {
    let hello = ClientFrame::Hello(Hello {
        protocol: PROTOCOL_VERSION,
        num_sites: 128,
        predictor: PredictorKind::Gshare4Kb,
        slice_len: 10_000,
        exec_threshold: 16,
        program: "split-regression/program".to_owned(),
    });
    let bytes = wire_bytes(std::slice::from_ref(&hello));
    assert!(bytes.len() > 4, "hello must span multiple reads");
    let mut decoder = FrameDecoder::new();
    decoder.push(&bytes[..3]);
    assert_eq!(
        decoder.next_client().unwrap(),
        None,
        "prefix must stay pending"
    );
    decoder.push(&bytes[3..bytes.len() - 1]);
    assert_eq!(
        decoder.next_client().unwrap(),
        None,
        "one byte short must stay pending"
    );
    decoder.push(&bytes[bytes.len() - 1..]);
    assert_eq!(decoder.next_client().unwrap(), Some(hello));
    assert_eq!(decoder.buffered(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Regression guard for the report wire format itself: a report built
    // from a random event stream must survive `to_bytes -> from_bytes` and
    // re-encode to the identical byte string (the property the daemon's
    // bit-identical `--verify` mode rests on).
    #[test]
    fn profile_report_bytes_roundtrip(
        events in prop::collection::vec((0u32..8, any::<bool>()), 1..4000),
        pred_seed in any::<u8>(),
    ) {
        let mut prof = TwoDProfiler::new(
            8,
            predictor_from(pred_seed).build(),
            SliceConfig::new(64, 8),
        );
        for &(site, taken) in &events {
            prof.branch(SiteId(site), taken);
        }
        let report = prof.finish(Thresholds::paper());
        let bytes = report.to_bytes();
        let decoded = twodprof_core::ProfileReport::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }
}

/// An oversized length prefix must be rejected *before* any allocation is
/// attempted — a hostile peer must not be able to make the daemon reserve
/// gigabytes with a five-byte frame header.
#[test]
fn oversized_length_prefix_rejected() {
    let mut bytes = Vec::new();
    btrace::write_varint(&mut bytes, u64::MAX).unwrap();
    bytes.extend_from_slice(&[0u8; 16]);
    let mut r = &bytes[..];
    let err = btrace::read_frame(&mut r, btrace::MAX_FRAME_LEN).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}
