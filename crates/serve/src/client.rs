//! Client side of the `twodprofd` protocol: a blocking session wrapper and
//! a batching [`Tracer`] so existing workloads can stream to a remote
//! daemon unchanged.

use crate::flight::FlightEvent;
use crate::wire::{AdmissionTier, ClientFrame, Hello, ServerFrame, PROTOCOL_VERSION};
use bpred::PredictorKind;
use btrace::{SiteId, Tracer};
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use twodprof_core::{ProfileReport, SliceConfig};
use twodprof_obs::trace::{self, ExportSpan, TraceContext};
use twodprof_obs::Snapshot;
use twodprof_stream::{DriftEvent, VerdictSnapshot};

/// Default events buffered per [`RemoteTracer`] `Events` frame.
pub const DEFAULT_BATCH_EVENTS: usize = 8192;

/// Errors a remote session can surface.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The daemon refused or evicted the session for capacity reasons
    /// (a wire `Busy` frame): the admission tier that shed it, the
    /// daemon's message, and its retry-after hint (zero when the daemon
    /// sent none — old daemons, or conditions retrying won't fix).
    Refused {
        /// Which admission decision produced the refusal.
        tier: AdmissionTier,
        /// Daemon-side detail.
        msg: String,
        /// How long the daemon suggests waiting before reconnecting.
        retry_after: Duration,
    },
    /// The daemon reported a protocol error.
    Server {
        /// One of [`crate::wire::codes`].
        code: u64,
        /// Daemon-side detail.
        msg: String,
    },
    /// The daemon answered with a frame the protocol does not allow here.
    Protocol(String),
}

impl ClientError {
    fn refused(msg: String, tier: AdmissionTier, retry_after_ms: u64) -> Self {
        ClientError::Refused {
            tier,
            msg,
            retry_after: Duration::from_millis(retry_after_ms),
        }
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error talking to twodprofd: {e}"),
            ClientError::Refused {
                tier,
                msg,
                retry_after,
            } => {
                write!(f, "daemon refused ({tier}): {msg}")?;
                if !retry_after.is_zero() {
                    write!(f, " (retry in {}ms)", retry_after.as_millis())?;
                }
                Ok(())
            }
            ClientError::Server { code, msg } => write!(f, "daemon error {code}: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A profile report received from the daemon: the raw wire bytes plus the
/// decoded [`ProfileReport`].
///
/// The bytes are kept verbatim so callers can check bit-identity against an
/// in-process run ([`ProfileReport::to_bytes`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteReport {
    bytes: Vec<u8>,
    report: ProfileReport,
}

impl RemoteReport {
    fn parse(bytes: Vec<u8>) -> Result<Self, ClientError> {
        let report = ProfileReport::from_bytes(&bytes)
            .map_err(|e| ClientError::Protocol(format!("undecodable report: {e}")))?;
        Ok(Self { bytes, report })
    }

    /// The decoded report.
    pub fn report(&self) -> &ProfileReport {
        &self.report
    }

    /// The exact bytes the daemon sent.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the wrapper, keeping only the decoded report.
    pub fn into_report(self) -> ProfileReport {
        self.report
    }
}

/// Everything a session connect can carry, in one builder: the mandatory
/// profile geometry plus the optional program id, trace propagation, and
/// socket timeouts that used to be spread over three `connect_*`
/// constructors.
///
/// ```no_run
/// use bpred::PredictorKind;
/// use twodprof_core::SliceConfig;
/// use twodprof_serve::ConnectOptions;
///
/// let session = ConnectOptions::new(64, PredictorKind::Gshare4Kb, SliceConfig::new(10_000, 16))
///     .program("bzip2")
///     .connect("127.0.0.1:4272")?;
/// # Ok::<(), twodprof_serve::ClientError>(())
/// ```
#[derive(Clone, Debug)]
pub struct ConnectOptions {
    num_sites: usize,
    predictor: PredictorKind,
    slice: SliceConfig,
    program: String,
    trace: Option<TraceContext>,
    connect_timeout: Option<Duration>,
    io_timeout: Option<Duration>,
}

impl ConnectOptions {
    /// Options for a workload with `num_sites` static branches, profiled
    /// by `predictor` under `slice`.
    pub fn new(num_sites: usize, predictor: PredictorKind, slice: SliceConfig) -> Self {
        Self {
            num_sites,
            predictor,
            slice,
            program: String::new(),
            trace: None,
            connect_timeout: None,
            io_timeout: None,
        }
    }

    /// Announces a program id: the daemon merges every session sharing a
    /// non-empty program into that program's streaming profiler,
    /// observable via `Subscribe`/`watch`.
    #[must_use]
    pub fn program(mut self, program: &str) -> Self {
        self.program = program.to_owned();
        self
    }

    /// Propagates `ctx` (the client's trace id and a parent span id) with
    /// a `TraceCtx` frame before the `Hello`, so the daemon's session and
    /// frame spans join the client's trace. The resulting
    /// [`RemoteSession::trace_link`] carries the daemon's trace-clock
    /// anchor plus the round trip's send/receive timestamps — everything
    /// needed to map server span times onto the client clock.
    #[must_use]
    pub fn traced(mut self, ctx: TraceContext) -> Self {
        self.trace = Some(ctx);
        self
    }

    /// Bounds the TCP connect itself (default: the OS's).
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Bounds every read and write on the session socket (default: block
    /// forever). A timed-out operation surfaces as [`ClientError::Io`].
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Connects and performs the handshake (optional `TraceCtx`, then
    /// `Hello`).
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] if the daemon sheds the session (its
    /// `retry_after` says when to try again), plus transport and protocol
    /// errors.
    pub fn connect(&self, addr: impl ToSocketAddrs) -> Result<RemoteSession, ClientError> {
        let stream = match self.connect_timeout {
            Some(timeout) => {
                let mut last: Option<io::Error> = None;
                let mut connected = None;
                for a in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&a, timeout) {
                        Ok(s) => {
                            connected = Some(s);
                            break;
                        }
                        Err(e) => last = Some(e),
                    }
                }
                connected.ok_or_else(|| {
                    last.unwrap_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
                    })
                })?
            }
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        let mut session = RemoteSession {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            session_id: 0,
            events_sent: 0,
            tier: AdmissionTier::Accept,
            link: None,
        };
        if let Some(ctx) = self.trace {
            let send_us = trace::now_micros();
            ClientFrame::TraceCtx {
                trace: ctx.trace,
                parent: ctx.parent,
            }
            .write_to(&mut session.writer)?;
            session.writer.flush()?;
            match session.read_reply()? {
                ServerFrame::TraceAck { anchor_us } => {
                    session.link = Some(TraceLink {
                        trace: ctx.trace,
                        anchor_us,
                        send_us,
                        recv_us: trace::now_micros(),
                    });
                }
                other => return Err(unexpected("TraceAck", &other)),
            }
        }
        ClientFrame::Hello(Hello {
            protocol: PROTOCOL_VERSION,
            num_sites: self.num_sites as u32,
            predictor: self.predictor,
            slice_len: self.slice.slice_len(),
            exec_threshold: self.slice.exec_threshold(),
            program: self.program.clone(),
        })
        .write_to(&mut session.writer)?;
        session.writer.flush()?;
        match session.read_reply()? {
            ServerFrame::HelloOk { session_id, tier } => {
                session.session_id = session_id;
                session.tier = tier;
                Ok(session)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }
}

/// A blocking protocol session: `Hello` on connect, explicit
/// [`send_events`](Self::send_events) / [`flush`](Self::flush) /
/// [`finish`](Self::finish). Open one with [`ConnectOptions`]; prefer
/// [`RemoteTracer`] when driving it from a workload's branch stream.
pub struct RemoteSession {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    session_id: u64,
    events_sent: u64,
    tier: AdmissionTier,
    link: Option<TraceLink>,
}

impl RemoteSession {
    /// Connects to a daemon and opens a session for a workload with
    /// `num_sites` static branches, profiled by `predictor` under `slice`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] if the daemon sheds the session, plus
    /// transport and protocol errors.
    #[deprecated(note = "use ConnectOptions::new(..).connect(addr)")]
    pub fn connect(
        addr: impl ToSocketAddrs,
        num_sites: usize,
        predictor: PredictorKind,
        slice: SliceConfig,
    ) -> Result<Self, ClientError> {
        ConnectOptions::new(num_sites, predictor, slice).connect(addr)
    }

    /// Like `connect`, but announces a program id.
    ///
    /// # Errors
    ///
    /// As [`ConnectOptions::connect`].
    #[deprecated(note = "use ConnectOptions::new(..).program(..).connect(addr)")]
    pub fn connect_with_program(
        addr: impl ToSocketAddrs,
        num_sites: usize,
        predictor: PredictorKind,
        slice: SliceConfig,
        program: &str,
    ) -> Result<Self, ClientError> {
        ConnectOptions::new(num_sites, predictor, slice)
            .program(program)
            .connect(addr)
    }

    /// Like `connect`, but first propagates `ctx` with a `TraceCtx` frame
    /// and returns the clock-alignment [`TraceLink`].
    ///
    /// # Errors
    ///
    /// As [`ConnectOptions::connect`].
    #[deprecated(note = "use ConnectOptions::new(..).traced(ctx).connect(addr)")]
    pub fn connect_traced(
        addr: impl ToSocketAddrs,
        num_sites: usize,
        predictor: PredictorKind,
        slice: SliceConfig,
        ctx: TraceContext,
        program: &str,
    ) -> Result<(Self, TraceLink), ClientError> {
        let session = ConnectOptions::new(num_sites, predictor, slice)
            .program(program)
            .traced(ctx)
            .connect(addr)?;
        let link = session
            .trace_link()
            .expect("trace link present when ctx was sent");
        Ok((session, link))
    }

    /// The daemon-assigned session id.
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The admission tier the daemon granted. [`AdmissionTier::Degrade`]
    /// means the session streams and aggregates normally but the daemon is
    /// not recording it — `Resim` will fail with `BAD_STATE`.
    pub fn admission_tier(&self) -> AdmissionTier {
        self.tier
    }

    /// Clock-alignment data from the handshake, when
    /// [`ConnectOptions::traced`] was used.
    pub fn trace_link(&self) -> Option<TraceLink> {
        self.link
    }

    /// Events shipped so far (buffered daemon-side until `Finish`).
    pub fn events_sent(&self) -> u64 {
        self.events_sent
    }

    /// Ships one batch of `(site, taken)` outcomes. Does not wait for a
    /// reply; pair with [`flush`](Self::flush) for flow control.
    ///
    /// # Errors
    ///
    /// Transport errors; a daemon-side `Busy`/`Error` already queued on the
    /// socket is surfaced instead of a bare broken-pipe error when possible.
    pub fn send_events(&mut self, events: &[(SiteId, bool)]) -> Result<(), ClientError> {
        let packed: Vec<(u32, bool)> = events.iter().map(|&(s, t)| (s.0, t)).collect();
        let frame = ClientFrame::Events(packed);
        if let Err(e) = frame.write_to(&mut self.writer).and_then(|()| {
            // push batches toward the daemon eagerly; the BufWriter only
            // exists to coalesce the length prefix with the payload
            self.writer.flush()
        }) {
            return Err(self.explain_write_error(e));
        }
        self.events_sent += events.len() as u64;
        Ok(())
    }

    /// Round-trips a `Flush`, returning the daemon's ingested-event total —
    /// the protocol's synchronization and backpressure point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] if the daemon evicted the session, plus
    /// transport and protocol errors.
    pub fn flush(&mut self) -> Result<u64, ClientError> {
        ClientFrame::Flush.write_to(&mut self.writer)?;
        self.writer.flush()?;
        match self.read_reply()? {
            ServerFrame::Ack { events_total } => Ok(events_total),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Re-simulates everything streamed so far under a different predictor,
    /// server-side, without re-sending a single event. The daemon replays
    /// its recorded copy of the session's branch stream through a fresh
    /// profiler; the session stays open for more events, further
    /// re-simulations, or [`finish`](Self::finish).
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with [`codes::BAD_STATE`](crate::wire::codes)
    /// if the daemon runs with recording disabled (`--no-record`), plus
    /// transport and protocol errors.
    pub fn resimulate(&mut self, predictor: PredictorKind) -> Result<RemoteReport, ClientError> {
        ClientFrame::Resim(predictor).write_to(&mut self.writer)?;
        self.writer.flush()?;
        match self.read_reply()? {
            ServerFrame::Report(bytes) => RemoteReport::parse(bytes),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Ends the session and returns the daemon's profile report.
    ///
    /// # Errors
    ///
    /// As [`flush`](Self::flush).
    pub fn finish(mut self) -> Result<RemoteReport, ClientError> {
        if let Err(e) = ClientFrame::Finish
            .write_to(&mut self.writer)
            .and_then(|()| self.writer.flush())
        {
            return Err(self.explain_write_error(e));
        }
        match self.read_reply()? {
            ServerFrame::Report(bytes) => RemoteReport::parse(bytes),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Reads one server frame, mapping `Busy`/`Error` frames to errors.
    fn read_reply(&mut self) -> Result<ServerFrame, ClientError> {
        match ServerFrame::read_from(&mut self.reader)? {
            ServerFrame::Busy {
                msg,
                tier,
                retry_after_ms,
            } => Err(ClientError::refused(msg, tier, retry_after_ms)),
            ServerFrame::Error { code, msg } => Err(ClientError::Server { code, msg }),
            frame => Ok(frame),
        }
    }

    /// A write that fails after the daemon closed the connection usually
    /// means a `Busy`/`Error` frame is sitting in our receive buffer — read
    /// it so the caller sees the daemon's reason, not just a broken pipe.
    fn explain_write_error(&mut self, e: io::Error) -> ClientError {
        match self.read_reply() {
            Ok(frame) => unexpected("none (write failed)", &frame),
            Err(reply_err @ (ClientError::Refused { .. } | ClientError::Server { .. })) => {
                reply_err
            }
            Err(_) => ClientError::Io(e),
        }
    }
}

fn unexpected(wanted: &str, got: &ServerFrame) -> ClientError {
    let label = match got {
        ServerFrame::HelloOk { .. } => "HelloOk",
        ServerFrame::Ack { .. } => "Ack",
        ServerFrame::Busy { .. } => "Busy",
        ServerFrame::Report(_) => "Report",
        ServerFrame::Error { .. } => "Error",
        ServerFrame::StatsReply(_) => "StatsReply",
        ServerFrame::TraceAck { .. } => "TraceAck",
        ServerFrame::TraceSpans(_) => "TraceSpans",
        ServerFrame::VerdictSnapshot(_) => "VerdictSnapshot",
        ServerFrame::DriftEvent(_) => "DriftEvent",
        ServerFrame::JobResult { .. } => "JobResult",
        ServerFrame::CacheReply { .. } => "CacheReply",
        ServerFrame::BlackboxReply(_) => "BlackboxReply",
    };
    ClientError::Protocol(format!("expected {wanted}, got {label}"))
}

/// Clock-alignment data from a traced connect: the daemon's trace-clock
/// reading paired with the client-clock window of the round trip that
/// fetched it. Both processes timestamp spans in microseconds since their
/// own private epoch; this link is what maps one onto the other.
#[derive(Clone, Copy, Debug)]
pub struct TraceLink {
    /// The propagated 16-byte trace id.
    pub trace: u128,
    /// Daemon trace-clock microseconds when it handled the `TraceCtx`.
    pub anchor_us: u64,
    /// Client trace-clock microseconds just before sending `TraceCtx`.
    pub send_us: u64,
    /// Client trace-clock microseconds just after reading `TraceAck`.
    pub recv_us: u64,
}

impl TraceLink {
    /// Offset to add to a daemon timestamp to land on the client clock,
    /// assuming the daemon's anchor was taken mid-round-trip (NTP-style
    /// single-point sync; the error is bounded by half the RTT, which on
    /// the loopback/LAN links a profiling daemon lives on is tens of
    /// microseconds).
    pub fn offset_us(&self) -> i64 {
        let midpoint = self.send_us + (self.recv_us.saturating_sub(self.send_us)) / 2;
        midpoint as i64 - self.anchor_us as i64
    }

    /// Maps one daemon-clock microsecond reading onto the client clock.
    pub fn map_us(&self, server_us: u64) -> u64 {
        (server_us as i64 + self.offset_us()).max(0) as u64
    }
}

/// Fetches the daemon-side spans of `trace_id` over a one-shot connection
/// (sessionless, like [`fetch_stats`]) and returns them with their `pid`
/// lane still `0` — timestamps are on the *daemon's* clock; map them with
/// [`TraceLink::map_us`] before merging into a client timeline.
///
/// # Errors
///
/// Transport errors, plus [`ClientError::Protocol`] if the reply is not a
/// decodable `TraceSpans` block.
pub fn fetch_trace(
    addr: impl ToSocketAddrs,
    trace_id: u128,
) -> Result<Vec<ExportSpan>, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    ClientFrame::TraceExport { trace: trace_id }.write_to(&mut writer)?;
    writer.flush()?;
    match ServerFrame::read_from(&mut reader)? {
        ServerFrame::TraceSpans(bytes) => {
            let (decoded_trace, spans) = trace::decode_spans(&bytes)
                .map_err(|e| ClientError::Protocol(format!("undecodable span block: {e}")))?;
            if decoded_trace != trace_id {
                return Err(ClientError::Protocol(format!(
                    "span block for trace {decoded_trace:032x}, asked for {trace_id:032x}"
                )));
            }
            Ok(spans)
        }
        ServerFrame::Busy {
            msg,
            tier,
            retry_after_ms,
        } => Err(ClientError::refused(msg, tier, retry_after_ms)),
        ServerFrame::Error { code, msg } => Err(ClientError::Server { code, msg }),
        other => Err(unexpected("TraceSpans", &other)),
    }
}

/// Fetches the daemon's metrics snapshot over a one-shot connection: a
/// `Stats` frame needs no session, so this works against a daemon that is
/// busy, draining, or mid-session elsewhere.
///
/// # Errors
///
/// Transport errors, plus [`ClientError::Protocol`] if the reply is not a
/// decodable `StatsReply`.
pub fn fetch_stats(addr: impl ToSocketAddrs) -> Result<Snapshot, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    ClientFrame::Stats.write_to(&mut writer)?;
    writer.flush()?;
    match ServerFrame::read_from(&mut reader)? {
        ServerFrame::StatsReply(bytes) => Snapshot::from_bytes(&bytes)
            .map_err(|e| ClientError::Protocol(format!("undecodable stats snapshot: {e}"))),
        ServerFrame::Busy {
            msg,
            tier,
            retry_after_ms,
        } => Err(ClientError::refused(msg, tier, retry_after_ms)),
        ServerFrame::Error { code, msg } => Err(ClientError::Server { code, msg }),
        other => Err(unexpected("StatsReply", &other)),
    }
}

/// Fetches the daemon's flight-recorder ring over a one-shot connection (a
/// `Blackbox` frame is sessionless, like `Stats`) and decodes the
/// checksummed block into its events, oldest first.
///
/// # Errors
///
/// Transport errors, plus [`ClientError::Protocol`] if the reply is not a
/// `BlackboxReply` carrying a decodable flight block.
pub fn fetch_blackbox(addr: impl ToSocketAddrs) -> Result<Vec<FlightEvent>, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    ClientFrame::Blackbox.write_to(&mut writer)?;
    writer.flush()?;
    match ServerFrame::read_from(&mut reader)? {
        ServerFrame::BlackboxReply(bytes) => crate::flight::decode(&bytes)
            .map_err(|e| ClientError::Protocol(format!("undecodable flight block: {e}"))),
        ServerFrame::Busy {
            msg,
            tier,
            retry_after_ms,
        } => Err(ClientError::refused(msg, tier, retry_after_ms)),
        ServerFrame::Error { code, msg } => Err(ClientError::Server { code, msg }),
        other => Err(unexpected("BlackboxReply", &other)),
    }
}

/// Fetches the current streaming verdict snapshot for `program` over a
/// one-shot connection (`Subscribe` with the watch flag clear). Sessionless,
/// like [`fetch_stats`]; works while sessions for the program are still
/// streaming.
///
/// # Errors
///
/// [`ClientError::Server`] with [`codes::BAD_STATE`](crate::wire::codes) if
/// the daemon has never seen the program, plus transport errors and
/// [`ClientError::Protocol`] if the reply is not a decodable
/// `VerdictSnapshot`.
pub fn fetch_verdicts(
    addr: impl ToSocketAddrs,
    program: &str,
) -> Result<VerdictSnapshot, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    ClientFrame::Subscribe {
        program: program.to_owned(),
        watch: false,
    }
    .write_to(&mut writer)?;
    writer.flush()?;
    match ServerFrame::read_from(&mut reader)? {
        ServerFrame::VerdictSnapshot(bytes) => VerdictSnapshot::from_bytes(&bytes)
            .map_err(|e| ClientError::Protocol(format!("undecodable verdict snapshot: {e}"))),
        ServerFrame::Busy {
            msg,
            tier,
            retry_after_ms,
        } => Err(ClientError::refused(msg, tier, retry_after_ms)),
        ServerFrame::Error { code, msg } => Err(ClientError::Server { code, msg }),
        other => Err(unexpected("VerdictSnapshot", &other)),
    }
}

/// A live drift subscription: `Subscribe` with the watch flag set, holding
/// the connection open while the daemon pushes a [`DriftEvent`] frame for
/// every hysteresis-confirmed verdict flip.
///
/// The daemon answers the subscription with an initial [`VerdictSnapshot`]
/// (available via [`snapshot`](Self::snapshot)); after that, [`next`]
/// (Self::next) blocks on the socket until the next drift event arrives or
/// the daemon ends the stream.
pub struct WatchClient {
    reader: BufReader<TcpStream>,
    snapshot: VerdictSnapshot,
}

impl WatchClient {
    /// Connects and subscribes to `program`'s drift stream.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] with
    /// [`codes::BAD_STATE`](crate::wire::codes) if the daemon has never seen
    /// the program, plus transport and protocol errors.
    pub fn connect(addr: impl ToSocketAddrs, program: &str) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        ClientFrame::Subscribe {
            program: program.to_owned(),
            watch: true,
        }
        .write_to(&mut writer)?;
        writer.flush()?;
        let snapshot = match ServerFrame::read_from(&mut reader)? {
            ServerFrame::VerdictSnapshot(bytes) => VerdictSnapshot::from_bytes(&bytes)
                .map_err(|e| ClientError::Protocol(format!("undecodable verdict snapshot: {e}")))?,
            ServerFrame::Busy {
                msg,
                tier,
                retry_after_ms,
            } => return Err(ClientError::refused(msg, tier, retry_after_ms)),
            ServerFrame::Error { code, msg } => return Err(ClientError::Server { code, msg }),
            other => return Err(unexpected("VerdictSnapshot", &other)),
        };
        Ok(Self { reader, snapshot })
    }

    /// The verdict snapshot taken when the subscription was accepted.
    pub fn snapshot(&self) -> &VerdictSnapshot {
        &self.snapshot
    }

    /// Blocks until the next drift event. Returns `Ok(None)` when the
    /// daemon closes the stream cleanly (shutdown drain).
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] if the daemon shed this subscriber for falling
    /// behind, plus transport and protocol errors.
    pub fn next_event(&mut self) -> Result<Option<DriftEvent>, ClientError> {
        match ServerFrame::read_from(&mut self.reader) {
            Ok(ServerFrame::DriftEvent(bytes)) => DriftEvent::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| ClientError::Protocol(format!("undecodable drift event: {e}"))),
            Ok(ServerFrame::Busy {
                msg,
                tier,
                retry_after_ms,
            }) => Err(ClientError::refused(msg, tier, retry_after_ms)),
            Ok(ServerFrame::Error { code, msg }) => Err(ClientError::Server { code, msg }),
            Ok(other) => Err(unexpected("DriftEvent", &other)),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(ClientError::Io(e)),
        }
    }
}

/// A [`Tracer`] that batches branch events into `Events` frames bound for a
/// remote daemon.
///
/// Because [`Tracer::branch`] cannot return errors, transport failures are
/// latched and every later event is dropped; [`finish`](Self::finish)
/// surfaces the latched error. Compose with [`btrace::Tee`] to fan a live
/// run out to the daemon and a local observer simultaneously.
pub struct RemoteTracer {
    session: RemoteSession,
    buf: Vec<(SiteId, bool)>,
    batch: usize,
    error: Option<ClientError>,
}

impl RemoteTracer {
    /// Connects with the default batch size ([`DEFAULT_BATCH_EVENTS`]).
    ///
    /// # Errors
    ///
    /// As [`ConnectOptions::connect`].
    pub fn connect(
        addr: impl ToSocketAddrs,
        num_sites: usize,
        predictor: PredictorKind,
        slice: SliceConfig,
    ) -> Result<Self, ClientError> {
        Ok(Self::new(
            ConnectOptions::new(num_sites, predictor, slice).connect(addr)?,
        ))
    }

    /// Wraps an already-open session with the default batch size.
    pub fn new(session: RemoteSession) -> Self {
        Self::with_batch_size(session, DEFAULT_BATCH_EVENTS)
    }

    /// Wraps a session, shipping a frame every `batch` events.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch_size(session: RemoteSession, batch: usize) -> Self {
        assert!(batch > 0, "batch size must be positive");
        Self {
            session,
            buf: Vec::with_capacity(batch),
            batch,
            error: None,
        }
    }

    /// The first transport error hit while streaming, if any.
    pub fn error(&self) -> Option<&ClientError> {
        self.error.as_ref()
    }

    /// Events shipped to the daemon so far (excluding the unsent buffer).
    pub fn events_sent(&self) -> u64 {
        self.session.events_sent()
    }

    /// Events observed so far, including the not-yet-shipped buffer — what
    /// the daemon will have ingested once [`finish`](Self::finish) runs.
    pub fn events_total(&self) -> u64 {
        self.session.events_sent() + self.buf.len() as u64
    }

    fn ship_buffer(&mut self) {
        if self.error.is_some() || self.buf.is_empty() {
            return;
        }
        let result = self.session.send_events(&self.buf);
        self.buf.clear();
        if let Err(e) = result {
            self.error = Some(e);
        }
    }

    /// Ships any buffered events and ends the session, returning the
    /// daemon's report.
    ///
    /// # Errors
    ///
    /// The latched streaming error if one occurred, otherwise any error
    /// from the final `Finish` round trip.
    pub fn finish(mut self) -> Result<RemoteReport, ClientError> {
        self.ship_buffer();
        if let Some(e) = self.error {
            return Err(e);
        }
        self.session.finish()
    }
}

impl Tracer for RemoteTracer {
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        if self.error.is_some() {
            return;
        }
        self.buf.push((site, taken));
        if self.buf.len() >= self.batch {
            self.ship_buffer();
        }
    }
}
