//! The `twodprofd` daemon: a thread-per-connection TCP server that owns one
//! live [`TwoDProfiler`] per client session.
//!
//! # Session state machine
//!
//! ```text
//!            Hello ok                Events*/Flush*            Finish
//! CONNECTED ──────────► STREAMING ──────────────► STREAMING ─────────► DONE
//!     │                     │                                           │
//!     │ Hello bad/Busy      │ limit exceeded → Busy, close              │
//!     │ idle → GC           │ bad site/state → Error, close             │
//!     ▼                     │ disconnect / idle → session dropped       ▼
//!   CLOSED ◄────────────────┴──────────────────────────────────► Report sent
//! ```
//!
//! Admission control is explicit: a `Hello` beyond
//! [`ServerConfig::max_sessions`] (or during drain) gets a
//! [`ServerFrame::Busy`] reply, and a session exceeding
//! [`ServerConfig::max_events_per_session`] gets `Busy` mid-stream — the
//! client sees it at its next synchronization point. An idle-timeout GC
//! thread shuts down connections (sessions included) that go quiet for
//! longer than [`ServerConfig::idle_timeout`]. Shutdown via
//! [`ServerHandle::shutdown`] stops accepting, lets in-flight sessions run
//! to `Finish`, and force-closes stragglers only after
//! [`ServerConfig::drain_timeout`].

use crate::compute::{ComputeConfig, ComputePool, SharedWriter};
use crate::wire::{codes, ClientFrame, Hello, ServerFrame, MAX_SITES, PROTOCOL_VERSION};
use bpred::BranchPredictor;
use btrace::{RecordedTrace, SiteId, Tracer};
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use twodprof_core::{SliceConfig, Thresholds, TwoDProfiler};
use twodprof_obs::trace::{self, Span, TraceContext};
use twodprof_stream::{
    DriftEvent, SessionIngest, StreamConfig, StreamingProfiler, VerdictSnapshot,
};

/// Tuning knobs of a daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently open profiling sessions; a `Hello` beyond this
    /// is refused with `Busy`.
    pub max_sessions: usize,
    /// Per-session ceiling on ingested events; exceeding it earns a `Busy`
    /// reply and closes the session (backpressure, not silent truncation).
    pub max_events_per_session: u64,
    /// Connections (with or without an open session) idle longer than this
    /// are garbage-collected by the GC thread.
    pub idle_timeout: Duration,
    /// On shutdown, how long to wait for in-flight sessions to `Finish`
    /// before force-closing their connections.
    pub drain_timeout: Duration,
    /// Suppress per-connection log lines on stderr.
    pub quiet: bool,
    /// Emit a one-line stats summary (sessions, events, events/sec) on
    /// stderr at this cadence; `None` disables it.
    pub stats_interval: Option<Duration>,
    /// Keep a columnar [`RecordedTrace`] of each session's branch stream so
    /// clients can [`Resim`](ClientFrame::Resim) it under other predictors
    /// without re-streaming. Costs ~1.1 bytes per dynamic branch of daemon
    /// memory per open session; disable for ingest-only deployments.
    pub record_sessions: bool,
    /// Streaming-profiler geometry (epoch length, window, hysteresis)
    /// shared by every program this daemon aggregates.
    pub stream: StreamConfig,
    /// Drift events buffered per `watch` subscriber before the daemon sheds
    /// it (slow-consumer protection).
    pub max_subscriber_queue: usize,
    /// Run the fabric compute service: accept `SubmitJob`/`CacheQuery`
    /// frames on sessionless connections and execute them on a worker pool
    /// backed by this daemon's engine + cache tier. `None` (the default)
    /// rejects job frames with [`codes::BAD_STATE`].
    pub compute: Option<ComputeConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_events_per_session: u64::MAX,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            quiet: false,
            stats_interval: None,
            record_sessions: true,
            stream: StreamConfig::default(),
            max_subscriber_queue: 1024,
            compute: None,
        }
    }
}

/// Lifetime counters of a daemon instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions that completed `Hello`.
    pub sessions_opened: u64,
    /// Sessions that ran to `Finish` and received their report.
    pub sessions_finished: u64,
    /// Sessions dropped early: disconnects, protocol errors, idle GC,
    /// event-limit `Busy`.
    pub sessions_aborted: u64,
    /// Total branch events ingested across all sessions.
    pub events_ingested: u64,
}

struct ConnEntry {
    stream: TcpStream,
    last_seen: Arc<Mutex<Instant>>,
}

/// One program's shared streaming state: the merged profiler plus the
/// `watch` subscribers its drift events fan out to. Lives in the registry
/// for the daemon's lifetime so snapshots keep answering after every
/// session of the program ended.
struct ProgramStream {
    /// `None` until the program's first session declares its site table.
    profiler: Mutex<Option<StreamingProfiler>>,
    subscribers: Mutex<Vec<Arc<Subscriber>>>,
}

/// A `watch` connection's bounded drift-event queue, filled by publishing
/// session threads and drained by the watcher's push loop.
#[derive(Default)]
struct Subscriber {
    queue: Mutex<SubQueue>,
    cond: Condvar,
}

#[derive(Default)]
struct SubQueue {
    events: VecDeque<DriftEvent>,
    /// The queue overflowed; the push loop tells the client and hangs up.
    shed: bool,
    /// The push loop exited; publishers drop the subscriber on next fan-out.
    closed: bool,
}

/// A live session's attachment to its program's streaming profiler.
struct ProgramSession {
    stream: Arc<ProgramStream>,
    ingest: SessionIngest,
}

struct Shared {
    config: ServerConfig,
    /// The fabric compute pool, when `config.compute` is set.
    compute: Option<Arc<ComputePool>>,
    shutdown: AtomicBool,
    stopped: AtomicBool,
    next_conn: AtomicU64,
    active_conns: AtomicUsize,
    live_sessions: AtomicUsize,
    conns: Mutex<HashMap<u64, ConnEntry>>,
    /// Streaming profilers keyed by program id (from `Hello.program`).
    programs: Mutex<HashMap<String, Arc<ProgramStream>>>,
    sessions_opened: AtomicU64,
    sessions_finished: AtomicU64,
    sessions_aborted: AtomicU64,
    events_ingested: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_finished: self.sessions_finished.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
        }
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.config.quiet {
            eprintln!("[twodprofd] {msg}");
        }
    }

    /// Looks up (or creates) the program's streaming state and attaches a
    /// new session to it. The first session's site table sizes the shared
    /// profiler; later sessions may declare fewer sites but not more.
    fn join_program(&self, name: &str, num_sites: u32) -> Result<ProgramSession, String> {
        let stream = {
            let mut programs = self.programs.lock().expect("program table");
            programs
                .entry(name.to_owned())
                .or_insert_with(|| {
                    Arc::new(ProgramStream {
                        profiler: Mutex::new(None),
                        subscribers: Mutex::new(Vec::new()),
                    })
                })
                .clone()
        };
        let mut profiler = stream.profiler.lock().expect("stream profiler");
        let prof = profiler
            .get_or_insert_with(|| StreamingProfiler::new(num_sites as usize, self.config.stream));
        if num_sites as usize > prof.num_sites() {
            return Err(format!(
                "program {name:?} is registered with {} site(s); session declares {num_sites}",
                prof.num_sites()
            ));
        }
        let ingest = prof.begin_session();
        drop(profiler);
        Ok(ProgramSession { stream, ingest })
    }

    /// The program's current verdict snapshot, or an empty one if no
    /// session has initialized it yet (watchers may subscribe first).
    fn program_snapshot(&self, stream: &ProgramStream) -> VerdictSnapshot {
        let profiler = stream.profiler.lock().expect("stream profiler");
        match profiler.as_ref() {
            Some(p) => p.snapshot(),
            None => VerdictSnapshot {
                epoch: 0,
                window: self.config.stream.window as u64,
                slice_len: self.config.stream.slice.slice_len(),
                program_accuracy: None,
                sites: Vec::new(),
            },
        }
    }
}

/// Fans freshly folded drift events out to the program's watchers under a
/// `serve.push` span, shedding any subscriber whose bounded queue would
/// overflow, and publishes the deepest queue as the subscriber-lag gauge.
fn publish_drift(shared: &Shared, stream: &ProgramStream, events: &[DriftEvent]) {
    let _span = twodprof_obs::span!("serve.push");
    let mut max_depth = 0usize;
    let mut subs = stream.subscribers.lock().expect("subscriber list");
    subs.retain(|sub| {
        let mut q = sub.queue.lock().expect("subscriber queue");
        if q.closed || q.shed {
            return false;
        }
        if q.events.len() + events.len() > shared.config.max_subscriber_queue {
            q.shed = true;
            sub.cond.notify_all();
            twodprof_obs::counter!(
                "serve_subscriber_drops_total",
                "Watch subscribers shed because their drift queue overflowed."
            )
            .inc();
            return false;
        }
        q.events.extend(events.iter().copied());
        max_depth = max_depth.max(q.events.len());
        sub.cond.notify_all();
        true
    });
    drop(subs);
    twodprof_obs::gauge!(
        "serve_subscriber_lag",
        "Deepest watch-subscriber drift queue at last fan-out."
    )
    .set(max_depth as i64);
}

/// Detaches a session from its program's streaming profiler — on `Finish`
/// or on any abort path, so a dead session never stalls the fold watermark
/// — and fans out whatever drift events the final folds produced.
fn detach_program(shared: &Shared, ps: ProgramSession) {
    let mut out = Vec::new();
    {
        let mut profiler = ps.stream.profiler.lock().expect("stream profiler");
        if let Some(p) = profiler.as_mut() {
            p.finish_session(ps.ingest, &mut out);
        }
    }
    if !out.is_empty() {
        publish_drift(shared, &ps.stream, &out);
    }
}

/// Cloneable remote control for a running [`Server`]: request shutdown and
/// observe liveness from other threads (tests, signal handlers, benches).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// sessions, then return from [`Server::run`]. Safe to call from a
    /// signal handler (a single atomic store).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Number of sessions currently between `Hello` and `Finish`.
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::SeqCst)
    }

    /// Number of open connections (including pre-`Hello` ones).
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::SeqCst)
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// A bound, not-yet-running daemon. Call [`run`](Self::run) (usually on a
/// dedicated thread) to serve connections.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let compute = config.compute.as_ref().map(ComputePool::start);
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                config,
                compute,
                shutdown: AtomicBool::new(false),
                stopped: AtomicBool::new(false),
                next_conn: AtomicU64::new(1),
                active_conns: AtomicUsize::new(0),
                live_sessions: AtomicUsize::new(0),
                conns: Mutex::new(HashMap::new()),
                programs: Mutex::new(HashMap::new()),
                sessions_opened: AtomicU64::new(0),
                sessions_finished: AtomicU64::new(0),
                sessions_aborted: AtomicU64::new(0),
                events_ingested: AtomicU64::new(0),
            }),
        })
    }

    /// The daemon's bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A remote-control handle valid before, during, and after
    /// [`run`](Self::run).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serves connections until [`ServerHandle::shutdown`] is requested,
    /// then drains in-flight sessions and returns the lifetime stats.
    ///
    /// # Errors
    ///
    /// Returns socket-configuration errors; per-connection I/O errors are
    /// isolated to their connection threads.
    pub fn run(self) -> io::Result<ServerStats> {
        self.listener.set_nonblocking(true)?;
        let gc = {
            let shared = self.shared.clone();
            thread::Builder::new()
                .name("twodprofd-gc".into())
                .spawn(move || gc_loop(&shared))
                .expect("spawn GC thread")
        };
        let stats_thread = self.shared.config.stats_interval.map(|interval| {
            let shared = self.shared.clone();
            thread::Builder::new()
                .name("twodprofd-stats".into())
                .spawn(move || stats_loop(&shared, interval))
                .expect("spawn stats thread")
        });
        if let Some(pool) = &self.shared.compute {
            self.shared.log(format_args!(
                "compute service enabled, {} worker thread(s)",
                pool.threads()
            ));
        }
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, peer)) => self.spawn_conn(stream, peer),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.shared.log(format_args!("accept error: {e}"));
                    thread::sleep(Duration::from_millis(50));
                }
            }
        }
        self.drain();
        if let Some(pool) = &self.shared.compute {
            // after drain the compute connections are gone; finish whatever
            // is still queued (replies to dead peers fail silently) and
            // join the workers
            pool.shutdown();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        gc.join().expect("GC thread never panics");
        if let Some(t) = stats_thread {
            t.join().expect("stats thread never panics");
        }
        Ok(self.shared.stats())
    }

    fn spawn_conn(&self, stream: TcpStream, peer: SocketAddr) {
        let shared = self.shared.clone();
        let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        shared.active_conns.fetch_add(1, Ordering::SeqCst);
        let spawned = thread::Builder::new()
            .name(format!("twodprofd-conn-{id}"))
            .spawn(move || {
                let outcome = serve_conn(&shared, stream, id);
                shared.conns.lock().expect("conn table").remove(&id);
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                match outcome {
                    Ok(()) => {}
                    Err(e) => shared.log(format_args!("conn {id} ({peer}): {e}")),
                }
            });
        if spawned.is_err() {
            self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            self.shared.log(format_args!("failed to spawn conn thread"));
        }
    }

    /// Waits for in-flight connections to wind down, force-closing any left
    /// after the drain timeout.
    fn drain(&self) {
        let start = Instant::now();
        let mut forced = false;
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 {
            if !forced && start.elapsed() > self.shared.config.drain_timeout {
                forced = true;
                let conns = self.shared.conns.lock().expect("conn table");
                self.shared.log(format_args!(
                    "drain timeout: force-closing {} connection(s)",
                    conns.len()
                ));
                for entry in conns.values() {
                    let _ = entry.stream.shutdown(Shutdown::Both);
                }
            }
            thread::sleep(Duration::from_millis(10));
        }
        twodprof_obs::histogram!(
            "serve_drain_micros",
            "Shutdown drain duration, in microseconds."
        )
        .observe_duration(start.elapsed());
    }
}

/// Reaps connections that have gone idle past the configured timeout by
/// shutting their sockets; the owning connection thread then unblocks,
/// cleans up, and drops any live profiler.
fn gc_loop(shared: &Shared) {
    let tick = (shared.config.idle_timeout / 4)
        .clamp(Duration::from_millis(10), Duration::from_millis(250));
    while !shared.stopped.load(Ordering::SeqCst) {
        thread::sleep(tick);
        let now = Instant::now();
        let conns = shared.conns.lock().expect("conn table");
        for (id, entry) in conns.iter() {
            let last = *entry.last_seen.lock().expect("last_seen");
            if now.duration_since(last) > shared.config.idle_timeout {
                shared.log(format_args!("conn {id}: idle timeout, reaping"));
                twodprof_obs::counter!(
                    "serve_sessions_reaped_total",
                    "Connections reaped by the idle-timeout GC."
                )
                .inc();
                let _ = entry.stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// Periodic stderr stats summary: lifetime counters plus per-interval
/// rates computed with `Snapshot::delta` (always printed, even with
/// `quiet` connection logs — enabling the interval is itself the opt-in).
///
/// Four lines per tick: the session/event line, the storage-tier and
/// trace line — memo-tier vs disk-tier cache hits (distinct since the PR
/// that split the counters), misses, corrupt entries, and the recorded /
/// replayed trace totals — the fabric line (jobs submitted/completed and
/// remote cache hits served by the compute tier), and the streaming line
/// (windows folded, verdicts, drift events, subscriber drops).
fn stats_loop(shared: &Shared, interval: Duration) {
    let interval = interval.max(Duration::from_millis(10));
    let mut last_events = 0u64;
    let mut last_tick = Instant::now();
    let mut last_snap = twodprof_obs::global().snapshot();
    while !shared.stopped.load(Ordering::SeqCst) {
        // sleep in short hops so shutdown isn't delayed by a long interval
        let wake = last_tick + interval;
        while Instant::now() < wake {
            if shared.stopped.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(10).min(interval));
        }
        let now = Instant::now();
        let stats = shared.stats();
        let snap = twodprof_obs::global().snapshot();
        let delta = snap.delta(&last_snap);
        let secs = now.duration_since(last_tick).as_secs_f64().max(1e-9);
        // per-interval rate from the metrics delta; fall back to the shared
        // atomics when the registry is disabled (TWODPROF_METRICS=off)
        let events_delta = delta
            .counter("serve_events_total")
            .unwrap_or_else(|| stats.events_ingested - last_events);
        let rate = events_delta as f64 / secs;
        eprintln!(
            "[twodprofd] stats: {} live session(s), {} opened, {} finished, {} aborted, {} event(s), {:.0} events/s",
            shared.live_sessions.load(Ordering::SeqCst),
            stats.sessions_opened,
            stats.sessions_finished,
            stats.sessions_aborted,
            stats.events_ingested,
            rate,
        );
        let total = |name: &str| snap.counter(name).unwrap_or(0);
        let tick = |name: &str| delta.counter(name).unwrap_or(0);
        eprintln!(
            "[twodprofd] stats: cache {} memo hit(s), {} disk hit(s), {} miss(es), {} corrupt; traces {} recorded (+{}), {} replayed (+{})",
            total("engine_cache_memo_hits_total"),
            total("engine_cache_hits_total"),
            total("engine_cache_misses_total"),
            total("engine_cache_corrupt_total"),
            total("trace_record_total"),
            tick("trace_record_total"),
            total("trace_replay_total"),
            tick("trace_replay_total"),
        );
        eprintln!(
            "[twodprofd] stats: fabric {} job(s) submitted (+{}), {} completed (+{}), {} remote cache hit(s) (+{})",
            total("fabric_jobs_submitted_total"),
            tick("fabric_jobs_submitted_total"),
            total("fabric_jobs_completed_total"),
            tick("fabric_jobs_completed_total"),
            total("fabric_remote_cache_hits_total"),
            tick("fabric_remote_cache_hits_total"),
        );
        eprintln!(
            "[twodprofd] stats: stream {} window(s) folded (+{}), {} verdict(s) (+{}), {} drift event(s) (+{}), {} subscriber drop(s) (+{})",
            total("stream_windows_folded_total"),
            tick("stream_windows_folded_total"),
            total("stream_verdicts_total"),
            tick("stream_verdicts_total"),
            total("stream_drift_events_total"),
            tick("stream_drift_events_total"),
            total("serve_subscriber_drops_total"),
            tick("serve_subscriber_drops_total"),
        );
        last_events = stats.events_ingested;
        last_tick = now;
        last_snap = snap;
    }
}

/// One live profiling session (between `Hello` and `Finish`).
struct LiveSession {
    profiler: TwoDProfiler<Box<dyn BranchPredictor>>,
    num_sites: u32,
    events: u64,
    /// Columnar copy of the session's branch stream, kept when
    /// [`ServerConfig::record_sessions`] is on so `Resim` frames can replay
    /// it under other predictors.
    recorded: Option<RecordedTrace>,
    /// The session's slice geometry, reused verbatim for re-simulations.
    slice: SliceConfig,
    /// Attachment to the shared per-program streaming profiler, when the
    /// session's `Hello` named a program.
    program: Option<ProgramSession>,
    /// Context per-frame spans attach under: the session's trace id plus
    /// the session span's id.
    child_ctx: TraceContext,
    /// Covers the whole Hello→Finish (or abort) window; records itself
    /// into the trace collector when the session is dropped.
    _span: Span,
}

fn send<W: Write>(w: &mut W, frame: &ServerFrame) -> io::Result<()> {
    frame.write_to(w)?;
    w.flush()
}

fn send_error<W: Write>(w: &mut W, code: u64, msg: String) -> io::Result<()> {
    send(w, &ServerFrame::Error { code, msg })
}

fn serve_conn(shared: &Shared, stream: TcpStream, id: u64) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let last_seen = Arc::new(Mutex::new(Instant::now()));
    shared.conns.lock().expect("conn table").insert(
        id,
        ConnEntry {
            stream: stream.try_clone()?,
            last_seen: last_seen.clone(),
        },
    );
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut session = None;
    let mut handoff = None;
    let mut result = session_loop(
        shared,
        id,
        &mut reader,
        &mut writer,
        &mut session,
        &last_seen,
        &mut handoff,
    );
    if let Some(first) = handoff {
        // a sessionless connection turned out to be a fabric client:
        // session_loop stepped aside and the connection becomes a
        // compute channel for the rest of its life
        debug_assert!(session.is_none() && result.is_ok());
        result = compute_conn(shared, id, &mut reader, writer, first, &last_seen);
    }
    if let Some(mut s) = session {
        // the connection ended with a session still open: disconnect, idle
        // reap, or a protocol error — drop the profiler and account for it
        if let Some(ps) = s.program.take() {
            detach_program(shared, ps);
        }
        shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
        shared.sessions_aborted.fetch_add(1, Ordering::SeqCst);
        twodprof_obs::counter!(
            "serve_sessions_aborted_total",
            "Sessions dropped before Finish (disconnect, error, GC, limit)."
        )
        .inc();
        shared.log(format_args!(
            "conn {id}: session dropped after {} event(s)",
            s.events
        ));
    }
    result
}

fn session_loop<R: Read, W: Write>(
    shared: &Shared,
    id: u64,
    reader: &mut R,
    writer: &mut W,
    session: &mut Option<Box<LiveSession>>,
    last_seen: &Mutex<Instant>,
    handoff: &mut Option<ClientFrame>,
) -> io::Result<()> {
    // Trace context announced by a `TraceCtx` frame; sessions opened on
    // this connection join it, so do pre-session frame spans.
    let mut conn_ctx = TraceContext::NONE;
    loop {
        let frame = match ClientFrame::read_from(reader) {
            Ok(frame) => frame,
            // a clean close between frames with no open session is a normal
            // goodbye; anything else is worth a log line
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof && session.is_none() => {
                return Ok(())
            }
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    twodprof_obs::counter!(
                        "serve_frame_decode_errors_total",
                        "Client frames that failed to decode."
                    )
                    .inc();
                    // The framing layer consumed exactly the bad frame, so
                    // the stream is still in sync: tell the client what
                    // went wrong instead of silently dropping the
                    // connection. Best-effort — the error we report is the
                    // decode failure either way.
                    let _ = send_error(writer, codes::BAD_FRAME, format!("bad frame: {e}"));
                }
                return Err(e);
            }
        };
        *last_seen.lock().expect("last_seen") = Instant::now();
        // Adopt a TraceCtx before opening its own frame span, so even that
        // first span lands in the client's trace.
        if let ClientFrame::TraceCtx { trace, parent } = &frame {
            conn_ctx = TraceContext {
                trace: *trace,
                parent: *parent,
            };
        }
        let frame_ctx = session
            .as_ref()
            .map(|live| live.child_ctx)
            .unwrap_or(conn_ctx);
        let _ctx_guard = frame_ctx.is_active().then(|| trace::attach(frame_ctx));
        let _frame_span = twodprof_obs::span!(frame_name(&frame));
        match frame {
            ClientFrame::Hello(hello) => {
                if session.is_some() {
                    return send_error(writer, codes::BAD_STATE, "duplicate Hello".into());
                }
                match admit(shared, &hello, conn_ctx) {
                    Admission::Accept(live) => {
                        *session = Some(live);
                        shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
                        twodprof_obs::counter!(
                            "serve_sessions_opened_total",
                            "Sessions that completed Hello."
                        )
                        .inc();
                        send(writer, &ServerFrame::HelloOk { session_id: id })?;
                    }
                    Admission::Busy(msg) => {
                        shared.log(format_args!("conn {id}: busy ({msg})"));
                        twodprof_obs::counter!(
                            "serve_sessions_busy_rejected_total",
                            "Hellos refused with Busy (table full or draining)."
                        )
                        .inc();
                        return send(writer, &ServerFrame::Busy { msg });
                    }
                    Admission::Reject(code, msg) => {
                        shared.log(format_args!("conn {id}: bad hello ({msg})"));
                        return send_error(writer, code, msg);
                    }
                }
            }
            ClientFrame::Events(events) => {
                let Some(live) = session.as_mut() else {
                    return send_error(writer, codes::BAD_STATE, "Events before Hello".into());
                };
                let n = events.len() as u64;
                if live.events.saturating_add(n) > shared.config.max_events_per_session {
                    // explicit backpressure: refuse the batch, close the
                    // session (the abort accounting happens in serve_conn)
                    twodprof_obs::counter!(
                        "serve_sessions_busy_rejected_total",
                        "Hellos refused with Busy (table full or draining)."
                    )
                    .inc();
                    return send(
                        writer,
                        &ServerFrame::Busy {
                            msg: format!(
                                "event limit {} exceeded",
                                shared.config.max_events_per_session
                            ),
                        },
                    );
                }
                if let Some(&(site, _)) = events.iter().find(|&&(site, _)| site >= live.num_sites) {
                    return send_error(
                        writer,
                        codes::SITE_RANGE,
                        format!("site {site} outside table of {}", live.num_sites),
                    );
                }
                match live.program.as_mut() {
                    // Streaming sessions iterate in chunks bounded by the
                    // open epoch's remaining capacity, so the per-event
                    // streaming cost is two counter adds — the slice
                    // bookkeeping settles once per chunk.
                    Some(ps) => {
                        let mut rest = &events[..];
                        while !rest.is_empty() {
                            let take = (ps.ingest.slice_remaining() as usize).min(rest.len());
                            for &(site, taken) in &rest[..take] {
                                let correct = live.profiler.branch_outcome(SiteId(site), taken);
                                ps.ingest.tally(SiteId(site), correct);
                                if let Some(rec) = live.recorded.as_mut() {
                                    rec.branch(SiteId(site), taken);
                                }
                            }
                            ps.ingest.advance(take as u64);
                            rest = &rest[take..];
                        }
                    }
                    None => {
                        for &(site, taken) in &events {
                            live.profiler.branch_outcome(SiteId(site), taken);
                            if let Some(rec) = live.recorded.as_mut() {
                                rec.branch(SiteId(site), taken);
                            }
                        }
                    }
                }
                live.events += n;
                shared.events_ingested.fetch_add(n, Ordering::Relaxed);
                twodprof_obs::counter!(
                    "serve_events_total",
                    "Branch events ingested across all sessions."
                )
                .add(n);
                // hand completed epochs to the program's shared profiler and
                // fan out any drift its folds confirmed
                if let Some(ps) = live.program.as_mut() {
                    if ps.ingest.pending_epochs() > 0 {
                        let mut drift = Vec::new();
                        {
                            let mut profiler = ps.stream.profiler.lock().expect("stream profiler");
                            if let Some(p) = profiler.as_mut() {
                                p.ingest(&mut ps.ingest, &mut drift);
                            }
                        }
                        if !drift.is_empty() {
                            publish_drift(shared, &ps.stream, &drift);
                        }
                    }
                }
            }
            ClientFrame::Flush => {
                let Some(live) = session.as_ref() else {
                    return send_error(writer, codes::BAD_STATE, "Flush before Hello".into());
                };
                send(
                    writer,
                    &ServerFrame::Ack {
                        events_total: live.events,
                    },
                )?;
            }
            ClientFrame::Finish => {
                let Some(mut live) = session.take() else {
                    return send_error(writer, codes::BAD_STATE, "Finish before Hello".into());
                };
                if let Some(ps) = live.program.take() {
                    detach_program(shared, ps);
                }
                shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
                shared.sessions_finished.fetch_add(1, Ordering::Relaxed);
                twodprof_obs::counter!(
                    "serve_sessions_finished_total",
                    "Sessions that ran to Finish and received a report."
                )
                .inc();
                if live.recorded.is_some() {
                    twodprof_obs::counter!(
                        "trace_record_total",
                        "Branch streams recorded from live workload runs."
                    )
                    .inc();
                }
                let events = live.events;
                let report = live.profiler.finish(Thresholds::paper());
                shared.log(format_args!(
                    "conn {id}: session finished, {events} event(s), {} site(s)",
                    report.num_sites()
                ));
                return send(writer, &ServerFrame::Report(report.to_bytes()));
            }
            ClientFrame::Stats => {
                // valid in any state; replies and keeps the connection going
                let snapshot = twodprof_obs::global().snapshot();
                send(writer, &ServerFrame::StatsReply(snapshot.to_bytes()))?;
            }
            ClientFrame::Resim(kind) => {
                let Some(live) = session.as_ref() else {
                    return send_error(writer, codes::BAD_STATE, "Resim before Hello".into());
                };
                let Some(rec) = live.recorded.as_ref() else {
                    return send_error(
                        writer,
                        codes::BAD_STATE,
                        "session recording is disabled on this daemon".into(),
                    );
                };
                let mut profiler =
                    TwoDProfiler::new(live.num_sites as usize, kind.build(), live.slice);
                rec.replay_into(&mut profiler);
                let report = profiler.finish(Thresholds::paper());
                twodprof_obs::counter!(
                    "trace_replay_total",
                    "Simulations served by replaying a recorded trace."
                )
                .inc();
                shared.log(format_args!(
                    "conn {id}: resimulated {} event(s) under {kind}",
                    rec.events()
                ));
                // the session stays open: more events or further resims may
                // follow before Finish
                send(writer, &ServerFrame::Report(report.to_bytes()))?;
            }
            ClientFrame::TraceCtx { .. } => {
                // conn_ctx was adopted above, before the frame span opened;
                // reply with our trace clock so the client can align the
                // two processes' epochs from one round trip
                send(
                    writer,
                    &ServerFrame::TraceAck {
                        anchor_us: trace::now_micros(),
                    },
                )?;
            }
            ClientFrame::TraceExport { trace: trace_id } => {
                // sessionless, like Stats: drain every ring (including
                // those of finished connection threads) and ship whatever
                // this daemon recorded for the requested trace
                let spans = trace::collector().collect_trace(trace_id);
                let bytes = trace::encode_spans(trace_id, &spans);
                send(writer, &ServerFrame::TraceSpans(bytes))?;
            }
            ClientFrame::Subscribe { program, watch } => {
                if watch && session.is_some() {
                    return send_error(
                        writer,
                        codes::BAD_STATE,
                        "watch is not allowed on a session connection".into(),
                    );
                }
                let stream = shared
                    .programs
                    .lock()
                    .expect("program table")
                    .get(&program)
                    .cloned();
                let Some(stream) = stream else {
                    return send_error(
                        writer,
                        codes::BAD_STATE,
                        format!("unknown program {program:?}"),
                    );
                };
                let snapshot = shared.program_snapshot(&stream);
                send(writer, &ServerFrame::VerdictSnapshot(snapshot.to_bytes()))?;
                if !watch {
                    // snapshot-only query; the connection stays usable
                    continue;
                }
                let sub = Arc::new(Subscriber::default());
                stream
                    .subscribers
                    .lock()
                    .expect("subscriber list")
                    .push(sub.clone());
                shared.log(format_args!("conn {id}: watching program {program:?}"));
                let result = watch_loop(shared, writer, &sub, last_seen);
                sub.queue.lock().expect("subscriber queue").closed = true;
                return result;
            }
            frame @ (ClientFrame::SubmitJob { .. } | ClientFrame::CacheQuery { .. }) => {
                if session.is_some() {
                    return send_error(
                        writer,
                        codes::BAD_STATE,
                        "job frames are not allowed on a session connection".into(),
                    );
                }
                if shared.compute.is_none() {
                    return send_error(
                        writer,
                        codes::BAD_STATE,
                        "compute service is disabled on this daemon".into(),
                    );
                }
                // hand the connection (and this first frame) to the
                // compute loop, which owns a sharable writer so pool
                // workers can reply out of order
                *handoff = Some(frame);
                return Ok(());
            }
        }
    }
}

/// Serves a fabric client's connection after its first job frame: submits
/// jobs to the compute pool, answers cache queries inline, and keeps
/// `Stats` working. Replies share the socket through a mutex-guarded
/// writer because pool workers finish jobs out of submission order.
fn compute_conn(
    shared: &Shared,
    id: u64,
    reader: &mut BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    first: ClientFrame,
    last_seen: &Arc<Mutex<Instant>>,
) -> io::Result<()> {
    let pool = shared.compute.as_ref().expect("compute enabled").clone();
    shared.log(format_args!("conn {id}: fabric compute channel opened"));
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    let mut pending = Some(first);
    loop {
        let frame = match pending.take() {
            Some(frame) => frame,
            None => match ClientFrame::read_from(reader) {
                Ok(frame) => frame,
                // clean goodbye; any jobs still queued reply into the void
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
                Err(e) => {
                    if e.kind() == io::ErrorKind::InvalidData {
                        twodprof_obs::counter!(
                            "serve_frame_decode_errors_total",
                            "Client frames that failed to decode."
                        )
                        .inc();
                        let mut w = writer.lock().expect("compute writer");
                        let _ = send_error(&mut *w, codes::BAD_FRAME, format!("bad frame: {e}"));
                    }
                    return Err(e);
                }
            },
        };
        *last_seen.lock().expect("last_seen") = Instant::now();
        let _frame_span = twodprof_obs::span!(frame_name(&frame));
        match frame {
            ClientFrame::SubmitJob { job_id, spec } => {
                pool.submit(job_id, spec, writer.clone(), last_seen.clone());
            }
            ClientFrame::CacheQuery { job_id, spec } => {
                let result = pool.lookup(&spec);
                let mut w = writer.lock().expect("compute writer");
                send(&mut *w, &ServerFrame::CacheReply { job_id, result })?;
            }
            ClientFrame::Stats => {
                let snapshot = twodprof_obs::global().snapshot();
                let mut w = writer.lock().expect("compute writer");
                send(&mut *w, &ServerFrame::StatsReply(snapshot.to_bytes()))?;
            }
            other => {
                let mut w = writer.lock().expect("compute writer");
                return send_error(
                    &mut *w,
                    codes::BAD_STATE,
                    format!("{} is not allowed on a compute channel", frame_name(&other)),
                );
            }
        }
    }
}

/// Push loop of a `watch` connection: drains the subscriber's drift queue
/// into `DriftEvent` frames, waking at least every 100 ms to refresh the
/// idle-GC clock (an event-less watcher is idle on purpose) and to notice
/// daemon shutdown. Exits cleanly on shutdown, with `Busy` after a
/// queue-overflow shed, or with the I/O error of a dead peer.
fn watch_loop<W: Write>(
    shared: &Shared,
    writer: &mut W,
    sub: &Subscriber,
    last_seen: &Mutex<Instant>,
) -> io::Result<()> {
    loop {
        let batch: Vec<DriftEvent> = {
            let mut q = sub.queue.lock().expect("subscriber queue");
            loop {
                if q.shed {
                    return send(
                        writer,
                        &ServerFrame::Busy {
                            msg: "subscriber lagging; drift events dropped".into(),
                        },
                    );
                }
                if !q.events.is_empty() {
                    break q.events.drain(..).collect();
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                let (guard, _) = sub
                    .cond
                    .wait_timeout(q, Duration::from_millis(100))
                    .expect("subscriber queue");
                q = guard;
                *last_seen.lock().expect("last_seen") = Instant::now();
            }
        };
        for event in &batch {
            send(writer, &ServerFrame::DriftEvent(event.to_bytes()))?;
        }
        *last_seen.lock().expect("last_seen") = Instant::now();
    }
}

/// Static span name for each frame kind.
fn frame_name(frame: &ClientFrame) -> &'static str {
    match frame {
        ClientFrame::Hello(_) => "serve.frame.hello",
        ClientFrame::Events(_) => "serve.frame.events",
        ClientFrame::Flush => "serve.frame.flush",
        ClientFrame::Finish => "serve.frame.finish",
        ClientFrame::Stats => "serve.frame.stats",
        ClientFrame::Resim(_) => "serve.frame.resim",
        ClientFrame::TraceCtx { .. } => "serve.frame.trace_ctx",
        ClientFrame::TraceExport { .. } => "serve.frame.trace_export",
        ClientFrame::Subscribe { .. } => "serve.frame.subscribe",
        ClientFrame::SubmitJob { .. } => "serve.frame.submit_job",
        ClientFrame::CacheQuery { .. } => "serve.frame.cache_query",
    }
}

enum Admission {
    Accept(Box<LiveSession>),
    Busy(String),
    Reject(u64, String),
}

/// Validates a `Hello` and, if the session table has room, builds the
/// session's profiler. `ctx` is the connection's announced trace context;
/// the session span joins it (or starts a fresh trace when none was sent).
fn admit(shared: &Shared, hello: &Hello, ctx: TraceContext) -> Admission {
    if hello.protocol != PROTOCOL_VERSION {
        return Admission::Reject(
            codes::PROTOCOL,
            format!(
                "protocol {} unsupported (server speaks {PROTOCOL_VERSION})",
                hello.protocol
            ),
        );
    }
    if hello.num_sites == 0 || hello.num_sites > MAX_SITES {
        return Admission::Reject(
            codes::BAD_HELLO,
            format!("num_sites {} outside 1..={MAX_SITES}", hello.num_sites),
        );
    }
    if hello.slice_len == 0 || hello.exec_threshold >= hello.slice_len {
        return Admission::Reject(
            codes::BAD_HELLO,
            format!(
                "invalid slice config (len {}, threshold {})",
                hello.slice_len, hello.exec_threshold
            ),
        );
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return Admission::Busy("daemon is shutting down".into());
    }
    // atomically claim a session slot
    let claimed = shared
        .live_sessions
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            (cur < shared.config.max_sessions).then_some(cur + 1)
        });
    if claimed.is_err() {
        return Admission::Busy(format!(
            "session table full ({} sessions)",
            shared.config.max_sessions
        ));
    }
    let program = if hello.program.is_empty() {
        None
    } else {
        match shared.join_program(&hello.program, hello.num_sites) {
            Ok(ps) => Some(ps),
            Err(msg) => {
                // release the session slot claimed above
                shared.live_sessions.fetch_sub(1, Ordering::SeqCst);
                return Admission::Reject(codes::BAD_HELLO, msg);
            }
        }
    };
    let config = SliceConfig::new(hello.slice_len, hello.exec_threshold);
    let span = Span::child_of(ctx, "serve.session");
    let child_ctx = span.context();
    Admission::Accept(Box::new(LiveSession {
        profiler: TwoDProfiler::new(hello.num_sites as usize, hello.predictor.build(), config),
        num_sites: hello.num_sites,
        events: 0,
        recorded: shared
            .config
            .record_sessions
            .then(|| RecordedTrace::new(hello.num_sites as usize)),
        slice: config,
        program,
        child_ctx,
        _span: span,
    }))
}
