//! The `twodprofd` daemon: a sharded, poll-driven TCP server that owns one
//! live [`TwoDProfiler`](twodprof_core::TwoDProfiler) per client session.
//!
//! # Architecture
//!
//! The accept loop assigns each connection an id and hands its socket to
//! one of a small fixed pool of shard threads (`id % shard count`); each
//! shard multiplexes its connections with nonblocking I/O and a
//! `poll(2)` readiness loop (see [`crate::shard`]), so ten thousand idle
//! or trickling sessions cost ten thousand sockets, not ten thousand
//! stacks. Fabric compute connections are the exception: their replies
//! come from pool worker threads out of order, so the shard detaches them
//! back to a blocking thread on their first job frame.
//!
//! # Session state machine
//!
//! ```text
//!            Hello ok                Events*/Flush*            Finish
//! CONNECTED ──────────► STREAMING ──────────────► STREAMING ─────────► DONE
//!     │                     │                                           │
//!     │ Hello bad/Busy      │ limit exceeded → Busy, close              │
//!     │ idle → reap         │ bad site/state → Error, close             │
//!     ▼                     │ disconnect / idle → session dropped       ▼
//!   CLOSED ◄────────────────┴──────────────────────────────────► Report sent
//! ```
//!
//! Admission is tiered (see [`crate::wire::AdmissionTier`]): a `Hello`
//! beyond `limits.max_sessions`, during drain, or on a shard at its
//! memory budget gets [`ServerFrame`](crate::wire::ServerFrame)`::Busy`
//! with a retry-after hint; a shard past half its budget admits sessions
//! *degraded* (no recording — verdict streaming still works, `Resim`
//! does not). Recorded sessions spill to disk past
//! `shards.spill_threshold` so residency stays bounded. A session
//! exceeding `limits.max_events_per_session` gets `Busy` mid-stream.
//! Idle connections are reaped by the shard sweep after
//! `limits.idle_timeout`. Shutdown via [`ServerHandle::shutdown`] stops
//! accepting, lets in-flight sessions run to `Finish`, and force-closes
//! stragglers only after `limits.drain_timeout`.

use crate::compute::ComputePool;
use crate::config::ServerConfig;
use crate::flight::FlightRecorder;
use crate::shard::{current_tier, shard_loop, ShardState};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use twodprof_obs::Timeline;
use twodprof_stream::{DriftEvent, SessionIngest, StreamingProfiler, VerdictSnapshot};

/// Lifetime counters of a daemon instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sessions that completed `Hello`.
    pub sessions_opened: u64,
    /// Sessions that ran to `Finish` and received their report.
    pub sessions_finished: u64,
    /// Sessions dropped early: disconnects, protocol errors, idle reaps,
    /// event-limit `Busy`.
    pub sessions_aborted: u64,
    /// Total branch events ingested across all sessions.
    pub events_ingested: u64,
}

/// A connection detached to the blocking compute path, tracked so the
/// idle sweep and force-close can still reach its socket.
pub(crate) struct ConnEntry {
    pub(crate) stream: TcpStream,
    pub(crate) last_seen: Arc<Mutex<Instant>>,
}

/// One program's shared streaming state: the merged profiler plus the
/// `watch` subscribers its drift events fan out to. Lives in the registry
/// for the daemon's lifetime so snapshots keep answering after every
/// session of the program ended.
pub(crate) struct ProgramStream {
    /// `None` until the program's first session declares its site table.
    pub(crate) profiler: Mutex<Option<StreamingProfiler>>,
    pub(crate) subscribers: Mutex<Vec<Arc<Subscriber>>>,
}

/// A `watch` connection's bounded drift-event queue, filled by publishing
/// shard threads and drained by the owning shard's watch pump.
#[derive(Default)]
pub(crate) struct Subscriber {
    pub(crate) queue: Mutex<SubQueue>,
    /// Publishers still signal; nothing blocks on it since the watch pump
    /// polls, but it keeps `publish_drift` shard-agnostic.
    pub(crate) cond: Condvar,
}

#[derive(Default)]
pub(crate) struct SubQueue {
    pub(crate) events: VecDeque<DriftEvent>,
    /// The queue overflowed; the watch pump tells the client and hangs up.
    pub(crate) shed: bool,
    /// The watcher is gone; publishers drop the subscriber on next fan-out.
    pub(crate) closed: bool,
}

/// A live session's attachment to its program's streaming profiler.
pub(crate) struct ProgramSession {
    pub(crate) stream: Arc<ProgramStream>,
    pub(crate) ingest: SessionIngest,
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    /// The fabric compute pool, when `config.compute` is set.
    pub(crate) compute: Option<Arc<ComputePool>>,
    pub(crate) shutdown: AtomicBool,
    stopped: AtomicBool,
    /// The accept loop has exited; shards may drain to empty and stop.
    accept_stopped: AtomicBool,
    /// Drain timed out: shards tear down every remaining connection.
    force_close: AtomicBool,
    next_conn: AtomicU64,
    active_conns: AtomicUsize,
    pub(crate) live_sessions: AtomicUsize,
    /// The shard pool; admission and the accept loop index it by
    /// `conn_id % len`.
    pub(crate) shards: Vec<Arc<ShardState>>,
    /// Connections handed off to blocking compute threads.
    pub(crate) detached: Mutex<HashMap<u64, ConnEntry>>,
    /// Streaming profilers keyed by program id (from `Hello.program`).
    pub(crate) programs: Mutex<HashMap<String, Arc<ProgramStream>>>,
    /// Where session recordings spill; per-daemon-instance so parallel
    /// daemons (tests) never collide.
    pub(crate) spill_dir: PathBuf,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_finished: AtomicU64,
    pub(crate) sessions_aborted: AtomicU64,
    pub(crate) events_ingested: AtomicU64,
    /// The flight recorder's bounded ring of notable events (see
    /// [`crate::flight`]); per daemon instance so parallel daemons in one
    /// process never mix their postmortems.
    pub(crate) flight: FlightRecorder,
    /// Periodic metric deltas for rate queries and `/vars` history.
    pub(crate) timeline: Arc<Timeline>,
    /// Daemon start: the epoch for timeline timestamps and `/vars` uptime.
    pub(crate) start: Instant,
}

impl Shared {
    pub(crate) fn stats(&self) -> ServerStats {
        ServerStats {
            sessions_opened: self.sessions_opened.load(Ordering::Relaxed),
            sessions_finished: self.sessions_finished.load(Ordering::Relaxed),
            sessions_aborted: self.sessions_aborted.load(Ordering::Relaxed),
            events_ingested: self.events_ingested.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.config.quiet {
            eprintln!("[twodprofd] {msg}");
        }
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn accept_stopped(&self) -> bool {
        self.accept_stopped.load(Ordering::SeqCst)
    }

    pub(crate) fn force_closing(&self) -> bool {
        self.force_close.load(Ordering::SeqCst)
    }

    /// The daemon has fully shut down ([`Server::run`] is returning);
    /// helper threads (stats, timeline, HTTP exposition) exit on this.
    pub(crate) fn is_stopped(&self) -> bool {
        self.stopped.load(Ordering::SeqCst)
    }

    /// Open connections right now (including pre-`Hello` ones).
    pub(crate) fn active_connections(&self) -> usize {
        self.active_conns.load(Ordering::SeqCst)
    }

    /// One connection finished its life (shard teardown, failed handoff,
    /// or compute-thread exit).
    pub(crate) fn conn_gone(&self) {
        self.active_conns.fetch_sub(1, Ordering::SeqCst);
    }

    /// Looks up (or creates) the program's streaming state and attaches a
    /// new session to it. The first session's site table sizes the shared
    /// profiler; later sessions may declare fewer sites but not more.
    pub(crate) fn join_program(
        &self,
        name: &str,
        num_sites: u32,
    ) -> Result<ProgramSession, String> {
        let stream = {
            let mut programs = self.programs.lock().expect("program table");
            programs
                .entry(name.to_owned())
                .or_insert_with(|| {
                    Arc::new(ProgramStream {
                        profiler: Mutex::new(None),
                        subscribers: Mutex::new(Vec::new()),
                    })
                })
                .clone()
        };
        let mut profiler = stream.profiler.lock().expect("stream profiler");
        let prof = profiler
            .get_or_insert_with(|| StreamingProfiler::new(num_sites as usize, self.config.stream));
        if num_sites as usize > prof.num_sites() {
            return Err(format!(
                "program {name:?} is registered with {} site(s); session declares {num_sites}",
                prof.num_sites()
            ));
        }
        let ingest = prof.begin_session();
        drop(profiler);
        Ok(ProgramSession { stream, ingest })
    }

    /// The program's current verdict snapshot, or an empty one if no
    /// session has initialized it yet (watchers may subscribe first).
    pub(crate) fn program_snapshot(&self, stream: &ProgramStream) -> VerdictSnapshot {
        let profiler = stream.profiler.lock().expect("stream profiler");
        match profiler.as_ref() {
            Some(p) => p.snapshot(),
            None => VerdictSnapshot {
                epoch: 0,
                window: self.config.stream.window as u64,
                slice_len: self.config.stream.slice.slice_len(),
                program_accuracy: None,
                sites: Vec::new(),
            },
        }
    }
}

/// Fans freshly folded drift events out to the program's watchers under a
/// `serve.push` span, shedding any subscriber whose bounded queue would
/// overflow, and publishes the deepest queue as the subscriber-lag gauge.
pub(crate) fn publish_drift(shared: &Shared, stream: &ProgramStream, events: &[DriftEvent]) {
    let _span = twodprof_obs::span!("serve.push");
    let mut max_depth = 0usize;
    let mut subs = stream.subscribers.lock().expect("subscriber list");
    subs.retain(|sub| {
        let mut q = sub.queue.lock().expect("subscriber queue");
        if q.closed || q.shed {
            return false;
        }
        if q.events.len() + events.len() > shared.config.limits.max_subscriber_queue {
            q.shed = true;
            sub.cond.notify_all();
            twodprof_obs::counter!(
                "serve_subscriber_drops_total",
                "Watch subscribers shed because their drift queue overflowed."
            )
            .inc();
            return false;
        }
        q.events.extend(events.iter().copied());
        max_depth = max_depth.max(q.events.len());
        sub.cond.notify_all();
        true
    });
    drop(subs);
    twodprof_obs::gauge!(
        "serve_subscriber_lag",
        "Deepest watch-subscriber drift queue at last fan-out."
    )
    .set(max_depth as i64);
}

/// Detaches a session from its program's streaming profiler — on `Finish`
/// or on any abort path, so a dead session never stalls the fold watermark
/// — and fans out whatever drift events the final folds produced.
pub(crate) fn detach_program(shared: &Shared, ps: ProgramSession) {
    let mut out = Vec::new();
    {
        let mut profiler = ps.stream.profiler.lock().expect("stream profiler");
        if let Some(p) = profiler.as_mut() {
            p.finish_session(ps.ingest, &mut out);
        }
    }
    if !out.is_empty() {
        publish_drift(shared, &ps.stream, &out);
    }
}

/// Static span name for each frame kind.
pub(crate) fn frame_name(frame: &crate::wire::ClientFrame) -> &'static str {
    use crate::wire::ClientFrame;
    match frame {
        ClientFrame::Hello(_) => "serve.frame.hello",
        ClientFrame::Events(_) => "serve.frame.events",
        ClientFrame::Flush => "serve.frame.flush",
        ClientFrame::Finish => "serve.frame.finish",
        ClientFrame::Stats => "serve.frame.stats",
        ClientFrame::Resim(_) => "serve.frame.resim",
        ClientFrame::TraceCtx { .. } => "serve.frame.trace_ctx",
        ClientFrame::TraceExport { .. } => "serve.frame.trace_export",
        ClientFrame::Subscribe { .. } => "serve.frame.subscribe",
        ClientFrame::SubmitJob { .. } => "serve.frame.submit_job",
        ClientFrame::CacheQuery { .. } => "serve.frame.cache_query",
        ClientFrame::Blackbox => "serve.frame.blackbox",
    }
}

/// Where this daemon dumps its flight recorder: the configured blackbox
/// path, or a per-process temp file when none was given.
pub(crate) fn blackbox_path(shared: &Shared) -> PathBuf {
    shared.config.obs.blackbox_path.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("twodprofd-blackbox-{}.bin", std::process::id()))
    })
}

/// Dumps the flight recorder's ring to the blackbox path and returns where
/// it wrote. Shared by the `SIGUSR1` handshake, the panic hook, and
/// [`ServerHandle::dump_blackbox`].
pub(crate) fn dump_blackbox(shared: &Shared) -> io::Result<PathBuf> {
    let path = blackbox_path(shared);
    shared.flight.dump_to(&path)?;
    Ok(path)
}

/// Cloneable remote control for a running [`Server`]: request shutdown and
/// observe liveness from other threads (tests, signal handlers, benches).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// sessions, then return from [`Server::run`]. Safe to call from a
    /// signal handler (a single atomic store).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Number of sessions currently between `Hello` and `Finish`.
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::SeqCst)
    }

    /// Number of open connections (including pre-`Hello` ones).
    pub fn active_connections(&self) -> usize {
        self.shared.active_conns.load(Ordering::SeqCst)
    }

    /// Lifetime counters so far.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Dumps the flight recorder's ring to the configured blackbox path
    /// (or a per-process temp file) and returns where it wrote. The dump
    /// is a checksummed block decodable by
    /// [`flight::decode`](crate::flight::decode) and
    /// `twodprof-client blackbox --file`.
    ///
    /// # Errors
    ///
    /// Propagates file-write errors.
    pub fn dump_blackbox(&self) -> io::Result<PathBuf> {
        dump_blackbox(&self.shared)
    }
}

/// Distinguishes the spill directories of daemons sharing a process and a
/// temp dir (tests run many).
static DAEMON_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// A bound, not-yet-running daemon. Call [`run`](Self::run) (usually on a
/// dedicated thread) to serve connections.
pub struct Server {
    listener: TcpListener,
    /// The HTTP exposition listener, bound when `obs.http_addr` is set;
    /// moved to its serving thread by [`run`](Self::run).
    http_listener: Option<TcpListener>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let http_listener = match &config.obs.http_addr {
            Some(addr) => Some(TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let compute = config.compute.as_ref().map(ComputePool::start);
        let shards = (0..config.shards.count.max(1))
            .map(|i| Arc::new(ShardState::new(i)))
            .collect();
        let spill_dir = config.shards.spill_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "twodprofd-spill-{}-{}",
                std::process::id(),
                DAEMON_INSTANCE.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let flight = FlightRecorder::new(config.obs.blackbox_capacity);
        let timeline = Arc::new(Timeline::new(config.obs.timeline_capacity));
        Ok(Self {
            listener,
            http_listener,
            shared: Arc::new(Shared {
                config,
                compute,
                shutdown: AtomicBool::new(false),
                stopped: AtomicBool::new(false),
                accept_stopped: AtomicBool::new(false),
                force_close: AtomicBool::new(false),
                next_conn: AtomicU64::new(1),
                active_conns: AtomicUsize::new(0),
                live_sessions: AtomicUsize::new(0),
                shards,
                detached: Mutex::new(HashMap::new()),
                programs: Mutex::new(HashMap::new()),
                spill_dir,
                sessions_opened: AtomicU64::new(0),
                sessions_finished: AtomicU64::new(0),
                sessions_aborted: AtomicU64::new(0),
                events_ingested: AtomicU64::new(0),
                flight,
                timeline,
                start: Instant::now(),
            }),
        })
    }

    /// The daemon's bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The HTTP exposition listener's bound address, when `obs.http_addr`
    /// was configured (resolves ephemeral ports), or `None` when the
    /// listener is disabled.
    ///
    /// # Errors
    ///
    /// Propagates `getsockname` failures.
    pub fn http_addr(&self) -> io::Result<Option<SocketAddr>> {
        self.http_listener
            .as_ref()
            .map(|l| l.local_addr())
            .transpose()
    }

    /// A remote-control handle valid before, during, and after
    /// [`run`](Self::run).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serves connections until [`ServerHandle::shutdown`] is requested,
    /// then drains in-flight sessions and returns the lifetime stats.
    ///
    /// # Errors
    ///
    /// Returns socket-configuration errors; per-connection I/O errors are
    /// isolated to their shard (or compute thread).
    pub fn run(mut self) -> io::Result<ServerStats> {
        self.listener.set_nonblocking(true)?;
        let http_thread = self.http_listener.take().map(|listener| {
            let shared = self.shared.clone();
            thread::Builder::new()
                .name("twodprofd-http".into())
                .spawn(move || crate::http::http_loop(&shared, listener))
                .expect("spawn http thread")
        });
        let timeline_thread = {
            let shared = self.shared.clone();
            thread::Builder::new()
                .name("twodprofd-timeline".into())
                .spawn(move || timeline_loop(&shared))
                .expect("spawn timeline thread")
        };
        let shard_threads: Vec<_> = self
            .shared
            .shards
            .iter()
            .map(|shard| {
                let shared = self.shared.clone();
                let shard = shard.clone();
                thread::Builder::new()
                    .name(format!("twodprofd-shard-{}", shard.index))
                    .spawn(move || shard_loop(&shared, &shard))
                    .expect("spawn shard thread")
            })
            .collect();
        let stats_thread = self.shared.config.stats_interval.map(|interval| {
            let shared = self.shared.clone();
            thread::Builder::new()
                .name("twodprofd-stats".into())
                .spawn(move || stats_loop(&shared, interval))
                .expect("spawn stats thread")
        });
        if let Some(pool) = &self.shared.compute {
            self.shared.log(format_args!(
                "compute service enabled, {} worker thread(s)",
                pool.threads()
            ));
        }
        self.shared.log(format_args!(
            "{} shard thread(s), {} byte memory budget per shard",
            self.shared.shards.len(),
            self.shared.config.shards.memory_budget
        ));
        let shard_count = self.shared.shards.len() as u64;
        let mut last_sweep = Instant::now();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let id = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
                    self.shared.active_conns.fetch_add(1, Ordering::SeqCst);
                    let shard = &self.shared.shards[(id % shard_count) as usize];
                    shard.inbox.lock().expect("shard inbox").push((id, stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(15));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.shared.log(format_args!("accept error: {e}"));
                    thread::sleep(Duration::from_millis(50));
                }
            }
            // detached compute connections have no shard sweeping them
            if last_sweep.elapsed() > Duration::from_millis(250) {
                sweep_detached(&self.shared);
                last_sweep = Instant::now();
            }
            // SIGUSR1 handshake: the handler only sets a flag; the actual
            // blackbox dump happens here, off the signal stack
            if crate::flight::take_dump_request() {
                match dump_blackbox(&self.shared) {
                    Ok(path) => self
                        .shared
                        .log(format_args!("blackbox dumped to {}", path.display())),
                    Err(e) => self.shared.log(format_args!("blackbox dump failed: {e}")),
                }
            }
        }
        self.shared.accept_stopped.store(true, Ordering::SeqCst);
        self.drain();
        for t in shard_threads {
            t.join().expect("shard thread never panics");
        }
        if let Some(pool) = &self.shared.compute {
            // after drain the compute connections are gone; finish whatever
            // is still queued (replies to dead peers fail silently) and
            // join the workers
            pool.shutdown();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(t) = stats_thread {
            t.join().expect("stats thread never panics");
        }
        timeline_thread
            .join()
            .expect("timeline thread never panics");
        if let Some(t) = http_thread {
            t.join().expect("http thread never panics");
        }
        Ok(self.shared.stats())
    }

    /// Waits for in-flight connections to wind down, force-closing any left
    /// after the drain timeout. Shard-owned connections honor the
    /// `force_close` flag on their next tick; detached compute sockets are
    /// shut down directly.
    fn drain(&self) {
        let start = Instant::now();
        let mut forced = false;
        while self.shared.active_conns.load(Ordering::SeqCst) > 0 {
            if !forced && start.elapsed() > self.shared.config.limits.drain_timeout {
                forced = true;
                self.shared.force_close.store(true, Ordering::SeqCst);
                let detached = self.shared.detached.lock().expect("detached table");
                self.shared.log(format_args!(
                    "drain timeout: force-closing {} connection(s)",
                    self.shared.active_conns.load(Ordering::SeqCst)
                ));
                for entry in detached.values() {
                    let _ = entry.stream.shutdown(Shutdown::Both);
                }
            }
            sweep_detached(&self.shared);
            thread::sleep(Duration::from_millis(10));
        }
        twodprof_obs::histogram!(
            "serve_drain_micros",
            "Shutdown drain duration, in microseconds."
        )
        .observe_duration(start.elapsed());
    }
}

/// Reaps detached compute connections that have gone idle past the
/// configured timeout by shutting their sockets; the owning compute thread
/// then unblocks and cleans up. (Shard-owned connections are swept by
/// their shard's loop.)
fn sweep_detached(shared: &Shared) {
    let now = Instant::now();
    let detached = shared.detached.lock().expect("detached table");
    for (id, entry) in detached.iter() {
        let last = *entry.last_seen.lock().expect("last_seen");
        if now.duration_since(last) > shared.config.limits.idle_timeout {
            shared.log(format_args!("conn {id}: idle timeout, reaping"));
            twodprof_obs::counter!(
                "serve_sessions_reaped_total",
                "Connections reaped by the idle-timeout sweep."
            )
            .inc();
            let _ = entry.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Feeds the daemon's [`Timeline`] one registry snapshot per configured
/// interval (timestamps are milliseconds since daemon start) until the
/// daemon stops. The first record seeds the baseline immediately, so the
/// first retained interval covers startup, not the process's whole life.
fn timeline_loop(shared: &Shared) {
    let interval = shared
        .config
        .obs
        .timeline_interval
        .max(Duration::from_millis(10));
    let record = |shared: &Shared| {
        shared.timeline.record(
            shared.start.elapsed().as_millis() as u64,
            twodprof_obs::global().snapshot(),
        );
    };
    record(shared);
    let mut next = Instant::now() + interval;
    while !shared.is_stopped() {
        // sleep in short hops so shutdown isn't delayed by a long interval
        if Instant::now() >= next {
            record(shared);
            next += interval;
        }
        thread::sleep(Duration::from_millis(10).min(interval));
    }
}

/// Periodic stderr stats summary: lifetime counters plus per-interval
/// rates computed with `Snapshot::delta` (always printed, even with
/// `quiet` connection logs — enabling the interval is itself the opt-in).
///
/// Six lines per tick, assembled into one buffer and written with a
/// single `eprint!` so concurrent connection logs can never interleave
/// mid-summary: the session/event line, the storage-tier and trace line —
/// memo-tier vs disk-tier cache hits, misses, corrupt entries, and the
/// recorded / replayed trace totals — the fabric line (jobs
/// submitted/completed and remote cache hits served by the compute tier),
/// the streaming line (windows folded, verdicts, drift events, subscriber
/// drops), the admission line (tier counts plus spill segments/bytes),
/// and the shard-health line (per-shard admission tier, event-loop lag,
/// and reply-backlog high water).
fn stats_loop(shared: &Shared, interval: Duration) {
    use std::fmt::Write as _;
    let interval = interval.max(Duration::from_millis(10));
    let mut last_events = 0u64;
    let mut last_tick = Instant::now();
    let mut last_snap = twodprof_obs::global().snapshot();
    let mut out = String::new();
    while !shared.stopped.load(Ordering::SeqCst) {
        // sleep in short hops so shutdown isn't delayed by a long interval
        let wake = last_tick + interval;
        while Instant::now() < wake {
            if shared.stopped.load(Ordering::SeqCst) {
                return;
            }
            thread::sleep(Duration::from_millis(10).min(interval));
        }
        let now = Instant::now();
        let stats = shared.stats();
        let snap = twodprof_obs::global().snapshot();
        let delta = snap.delta(&last_snap);
        let secs = now.duration_since(last_tick).as_secs_f64().max(1e-9);
        // per-interval rate from the metrics delta; fall back to the shared
        // atomics when the registry is disabled (TWODPROF_METRICS=off)
        let events_delta = delta
            .counter("serve_events_total")
            .unwrap_or_else(|| stats.events_ingested - last_events);
        let rate = events_delta as f64 / secs;
        out.clear();
        let _ = writeln!(
            out,
            "[twodprofd] stats: {} live session(s), {} opened, {} finished, {} aborted, {} event(s), {:.0} events/s",
            shared.live_sessions.load(Ordering::SeqCst),
            stats.sessions_opened,
            stats.sessions_finished,
            stats.sessions_aborted,
            stats.events_ingested,
            rate,
        );
        let total = |name: &str| snap.counter(name).unwrap_or(0);
        let tick = |name: &str| delta.counter(name).unwrap_or(0);
        let _ = writeln!(
            out,
            "[twodprofd] stats: cache {} memo hit(s), {} disk hit(s), {} miss(es), {} corrupt; traces {} recorded (+{}), {} replayed (+{})",
            total("engine_cache_memo_hits_total"),
            total("engine_cache_hits_total"),
            total("engine_cache_misses_total"),
            total("engine_cache_corrupt_total"),
            total("trace_record_total"),
            tick("trace_record_total"),
            total("trace_replay_total"),
            tick("trace_replay_total"),
        );
        let _ = writeln!(
            out,
            "[twodprofd] stats: fabric {} job(s) submitted (+{}), {} completed (+{}), {} remote cache hit(s) (+{})",
            total("fabric_jobs_submitted_total"),
            tick("fabric_jobs_submitted_total"),
            total("fabric_jobs_completed_total"),
            tick("fabric_jobs_completed_total"),
            total("fabric_remote_cache_hits_total"),
            tick("fabric_remote_cache_hits_total"),
        );
        let _ = writeln!(
            out,
            "[twodprofd] stats: stream {} window(s) folded (+{}), {} verdict(s) (+{}), {} drift event(s) (+{}), {} subscriber drop(s) (+{})",
            total("stream_windows_folded_total"),
            tick("stream_windows_folded_total"),
            total("stream_verdicts_total"),
            tick("stream_verdicts_total"),
            total("stream_drift_events_total"),
            tick("stream_drift_events_total"),
            total("serve_subscriber_drops_total"),
            tick("serve_subscriber_drops_total"),
        );
        let _ = writeln!(
            out,
            "[twodprofd] stats: admit {} accepted (+{}), {} degraded (+{}), {} shed (+{}); spill {} segment(s) (+{}), {} byte(s) (+{})",
            total("serve_admit_accept_total"),
            tick("serve_admit_accept_total"),
            total("serve_admit_degrade_total"),
            tick("serve_admit_degrade_total"),
            total("serve_admit_shed_total"),
            tick("serve_admit_shed_total"),
            total("serve_spill_segments_total"),
            tick("serve_spill_segments_total"),
            total("serve_spill_bytes_total"),
            tick("serve_spill_bytes_total"),
        );
        out.push_str("[twodprofd] stats: shards");
        for shard in &shared.shards {
            let _ = write!(
                out,
                " | {} {} lag {}us backlog {}B",
                shard.index,
                current_tier(&shared.config, shard).label(),
                shard.last_lag_micros.load(Ordering::Relaxed),
                shard.out_high_water.load(Ordering::Relaxed),
            );
        }
        out.push('\n');
        eprint!("{out}");
        last_events = stats.events_ingested;
        last_tick = now;
        last_snap = snap;
    }
}
