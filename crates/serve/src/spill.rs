//! Spill-to-disk session recordings: a [`SessionTrace`] is the daemon-side
//! recording of one session's branch stream, kept as a chain of serialized
//! [`RecordedTrace`] segments on disk plus one active in-memory tail.
//!
//! Long sessions used to occupy RAM in proportion to their length (~1.1
//! bytes per dynamic branch, unbounded). Now the active buffer spills to a
//! segment file whenever it crosses the configured threshold, so a
//! session's resident share is bounded by `spill_threshold` while `Resim`
//! keeps working: replay walks the segments in order, then the tail, which
//! reproduces the exact event sequence — reports stay bit-identical to the
//! unspilled path because [`RecordedTrace`] serialization is lossless.
//!
//! Segment files live in the shard's spill directory, named by session id
//! and sequence number, and are deleted when the session ends (Drop).

use btrace::{RecordedTrace, SiteId, Tracer};
use std::fs;
use std::io;
use std::path::PathBuf;

/// One on-disk segment of a spilled session recording.
struct Segment {
    path: PathBuf,
    bytes: u64,
}

/// A session's recorded branch stream with bounded residency.
pub(crate) struct SessionTrace {
    /// In-memory tail of the recording.
    active: RecordedTrace,
    num_sites: usize,
    /// Resident-size ceiling before the tail is spilled; `usize::MAX`
    /// disables spilling (tests, tiny deployments).
    threshold: usize,
    dir: PathBuf,
    session_id: u64,
    segments: Vec<Segment>,
    /// Total events across spilled segments (the tail knows its own).
    spilled_events: u64,
    /// A spill write failed; keep everything in memory from then on
    /// rather than dropping events or failing the session.
    spill_broken: bool,
}

impl SessionTrace {
    pub(crate) fn new(num_sites: usize, session_id: u64, threshold: usize, dir: PathBuf) -> Self {
        Self {
            active: RecordedTrace::new(num_sites),
            num_sites,
            threshold,
            dir,
            session_id,
            segments: Vec::new(),
            spilled_events: 0,
            spill_broken: false,
        }
    }

    /// Appends one event to the tail.
    pub(crate) fn branch(&mut self, site: SiteId, taken: bool) {
        self.active.push(site, taken);
    }

    /// Total events recorded (segments + tail).
    pub(crate) fn events(&self) -> u64 {
        self.spilled_events + self.active.events()
    }

    /// Bytes the recording holds in memory right now.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.active.memory_bytes() as u64
    }

    /// Bytes the recording holds on disk right now.
    pub(crate) fn spilled_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// Spills the tail to a new segment file if it crossed the threshold.
    /// Returns the bytes written (0 when no spill happened). A failed
    /// write disables spilling for this session — the recording stays
    /// correct, just resident — and is reported once via the `Err`.
    pub(crate) fn maybe_spill(&mut self) -> io::Result<u64> {
        if self.spill_broken
            || self.active.is_empty()
            || self.active.memory_bytes() < self.threshold
        {
            return Ok(0);
        }
        let seq = self.segments.len();
        let path = self
            .dir
            .join(format!("sess-{}-{seq:04}.2dpr", self.session_id));
        let bytes = self.active.to_bytes();
        if let Err(e) = fs::create_dir_all(&self.dir).and_then(|()| fs::write(&path, &bytes)) {
            self.spill_broken = true;
            return Err(e);
        }
        let len = bytes.len() as u64;
        self.spilled_events += self.active.events();
        self.segments.push(Segment { path, bytes: len });
        self.active = RecordedTrace::new(self.num_sites);
        Ok(len)
    }

    /// Replays the whole recording — segments in spill order, then the
    /// tail — into `tracer`, reproducing the exact ingested sequence.
    ///
    /// # Errors
    ///
    /// I/O or decode errors reading a segment file back.
    pub(crate) fn replay_into<T: Tracer + ?Sized>(&self, tracer: &mut T) -> io::Result<()> {
        for seg in &self.segments {
            let bytes = fs::read(&seg.path)?;
            let trace = RecordedTrace::from_bytes(&bytes)?;
            trace.replay_into(tracer);
        }
        self.active.replay_into(tracer);
        Ok(())
    }
}

impl Drop for SessionTrace {
    fn drop(&mut self) {
        for seg in &self.segments {
            let _ = fs::remove_file(&seg.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Collect(Vec<(u32, bool)>);
    impl Tracer for Collect {
        fn branch(&mut self, site: SiteId, taken: bool) {
            self.0.push((site.0, taken));
        }
    }

    fn scratch() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("twodprof-spill-test-{}", std::process::id()));
        let _ = fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn spilled_replay_matches_ingest_order() {
        let mut st = SessionTrace::new(8, 42, 64, scratch());
        let events: Vec<(u32, bool)> = (0..10_000u32).map(|i| (i % 8, i % 3 == 0)).collect();
        for (i, &(site, taken)) in events.iter().enumerate() {
            st.branch(SiteId(site), taken);
            if i % 512 == 0 {
                st.maybe_spill().unwrap();
            }
        }
        assert!(!st.segments.is_empty(), "tiny threshold must have spilled");
        assert!(st.spilled_bytes() > 0);
        assert_eq!(st.events(), events.len() as u64);
        let mut got = Collect(Vec::new());
        st.replay_into(&mut got).unwrap();
        assert_eq!(got.0, events);
        let paths: Vec<_> = st.segments.iter().map(|s| s.path.clone()).collect();
        drop(st);
        for p in paths {
            assert!(!p.exists(), "segments must be deleted with the session");
        }
    }

    #[test]
    fn below_threshold_never_touches_disk() {
        let mut st = SessionTrace::new(4, 7, usize::MAX, scratch());
        for i in 0..1000u32 {
            st.branch(SiteId(i % 4), i % 2 == 0);
        }
        assert_eq!(st.maybe_spill().unwrap(), 0);
        assert_eq!(st.spilled_bytes(), 0);
        let mut got = Collect(Vec::new());
        st.replay_into(&mut got).unwrap();
        assert_eq!(got.0.len(), 1000);
    }
}
