//! Replaying a workload's branch stream against a live daemon, optionally
//! fanning the same run out to an in-process profiler for an equivalence
//! check.

use crate::client::{ClientError, RemoteReport, RemoteSession, RemoteTracer};
use bpred::PredictorKind;
use btrace::{CountingTracer, Tee};
use std::fmt;
use std::net::ToSocketAddrs;
use twodprof_core::{ProfileReport, SliceConfig, Thresholds, TwoDProfiler};
use workloads::Scale;

/// Errors from [`replay_workload`].
#[derive(Debug)]
pub enum ReplayError {
    /// The workload name is not in the suite.
    UnknownWorkload(String),
    /// The workload exists but lacks the named input set.
    UnknownInput {
        /// The workload consulted.
        workload: String,
        /// The missing input-set name.
        input: String,
    },
    /// A remote-session failure.
    Client(ClientError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownWorkload(w) => write!(f, "unknown workload {w:?}"),
            ReplayError::UnknownInput { workload, input } => {
                write!(f, "workload {workload:?} has no input set {input:?}")
            }
            ReplayError::Client(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClientError> for ReplayError {
    fn from(e: ClientError) -> Self {
        ReplayError::Client(e)
    }
}

/// What to replay and how.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Workload name (e.g. `"gzip"`).
    pub workload: String,
    /// Input-set name (e.g. `"train"`).
    pub input: String,
    /// Workload scale.
    pub scale: Scale,
    /// Profiling predictor for the remote session.
    pub predictor: PredictorKind,
    /// Events per `Events` frame.
    pub batch: usize,
    /// Slice configuration; `None` auto-scales from the run length (one
    /// extra local counting pass).
    pub slice: Option<SliceConfig>,
    /// Also run the in-process profiler over the same stream (via
    /// [`Tee`]) and keep its report for comparison.
    pub verify: bool,
}

/// The result of one replay.
#[derive(Clone, Debug)]
pub struct ReplaySummary {
    /// Dynamic branch events streamed.
    pub events: u64,
    /// Slice configuration used on both sides.
    pub slice: SliceConfig,
    /// The daemon's report.
    pub remote: RemoteReport,
    /// The in-process report, when [`ReplaySpec::verify`] was set.
    pub local: Option<ProfileReport>,
}

impl ReplaySummary {
    /// Whether the remote report is bit-identical to the in-process one
    /// (`None` when the replay did not verify).
    pub fn matches(&self) -> Option<bool> {
        self.local
            .as_ref()
            .map(|local| local.to_bytes() == self.remote.bytes())
    }
}

/// Replays `spec` against the daemon at `addr`.
///
/// With [`ReplaySpec::verify`] set, the single workload run is fanned out
/// through a [`Tee`] to both the [`RemoteTracer`] and a local
/// [`TwoDProfiler`] with identical configuration, so the two reports must be
/// bit-identical for a correct daemon.
///
/// # Errors
///
/// Returns a [`ReplayError`] for unknown workloads/inputs and any remote
/// failure.
pub fn replay_workload(
    addr: impl ToSocketAddrs + Copy,
    spec: &ReplaySpec,
) -> Result<ReplaySummary, ReplayError> {
    let workload = workloads::by_name(&spec.workload, spec.scale)
        .ok_or_else(|| ReplayError::UnknownWorkload(spec.workload.clone()))?;
    let input = workload
        .input_set(&spec.input)
        .ok_or_else(|| ReplayError::UnknownInput {
            workload: spec.workload.clone(),
            input: spec.input.clone(),
        })?;
    let slice = match spec.slice {
        Some(slice) => slice,
        None => {
            // auto-sizing needs the run length; workloads are deterministic,
            // so a counting pre-pass pins the same config on both sides
            let mut counter = CountingTracer::new();
            workload.run(&input, &mut counter);
            SliceConfig::auto(counter.count())
        }
    };
    let session = RemoteSession::connect(addr, workload.sites().len(), spec.predictor, slice)?;
    let remote = RemoteTracer::with_batch_size(session, spec.batch);
    if spec.verify {
        let local = TwoDProfiler::new(workload.sites().len(), spec.predictor.build(), slice);
        let mut tee = Tee::new(remote, local);
        workload.run(&input, &mut tee);
        let (remote, local) = tee.into_inner();
        let events = remote.events_total();
        let remote = remote.finish()?;
        Ok(ReplaySummary {
            events,
            slice,
            remote,
            local: Some(local.finish(Thresholds::paper())),
        })
    } else {
        let mut remote = remote;
        workload.run(&input, &mut remote);
        let events = remote.events_total();
        let remote = remote.finish()?;
        Ok(ReplaySummary {
            events,
            slice,
            remote,
            local: None,
        })
    }
}
