//! Replaying a workload's branch stream against a live daemon, optionally
//! fanning the same run out to an in-process profiler for an equivalence
//! check.

use crate::client::{
    fetch_trace, ClientError, ConnectOptions, RemoteReport, RemoteTracer, TraceLink,
};
use bpred::PredictorKind;
use btrace::{CountingTracer, Tee};
use std::collections::HashSet;
use std::fmt;
use std::net::ToSocketAddrs;
use twodprof_core::{ProfileReport, SliceConfig, Thresholds, TwoDProfiler};
use twodprof_obs::trace::{self, ExportSpan, Span, TraceContext};
use workloads::Scale;

/// Chrome-trace `pid` lane for client-side spans in a stitched replay trace.
pub const TRACE_PID_CLIENT: u32 = 1;
/// Chrome-trace `pid` lane for daemon-side spans in a stitched replay trace.
pub const TRACE_PID_DAEMON: u32 = 2;

/// Errors from [`replay_workload`].
#[derive(Debug)]
pub enum ReplayError {
    /// The workload name is not in the suite.
    UnknownWorkload(String),
    /// The workload exists but lacks the named input set.
    UnknownInput {
        /// The workload consulted.
        workload: String,
        /// The missing input-set name.
        input: String,
    },
    /// A remote-session failure.
    Client(ClientError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::UnknownWorkload(w) => write!(f, "unknown workload {w:?}"),
            ReplayError::UnknownInput { workload, input } => {
                write!(f, "workload {workload:?} has no input set {input:?}")
            }
            ReplayError::Client(e) => write!(f, "replay failed: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Client(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClientError> for ReplayError {
    fn from(e: ClientError) -> Self {
        ReplayError::Client(e)
    }
}

/// What to replay and how.
#[derive(Clone, Debug)]
pub struct ReplaySpec {
    /// Workload name (e.g. `"gzip"`).
    pub workload: String,
    /// Input-set name (e.g. `"train"`).
    pub input: String,
    /// Workload scale.
    pub scale: Scale,
    /// Profiling predictor for the remote session.
    pub predictor: PredictorKind,
    /// Events per `Events` frame.
    pub batch: usize,
    /// Slice configuration; `None` auto-scales from the run length (one
    /// extra local counting pass).
    pub slice: Option<SliceConfig>,
    /// Also run the in-process profiler over the same stream (via
    /// [`Tee`]) and keep its report for comparison.
    pub verify: bool,
    /// Capture a stitched client↔daemon span trace of the replay and
    /// return it in [`ReplaySummary::trace`].
    pub trace: bool,
    /// Program id announced in the `Hello`; non-empty joins this session to
    /// the daemon's shared streaming profiler for that program (`watch`).
    pub program: String,
}

/// The result of one replay.
#[derive(Clone, Debug)]
pub struct ReplaySummary {
    /// Dynamic branch events streamed.
    pub events: u64,
    /// Slice configuration used on both sides.
    pub slice: SliceConfig,
    /// The daemon's report.
    pub remote: RemoteReport,
    /// The in-process report, when [`ReplaySpec::verify`] was set.
    pub local: Option<ProfileReport>,
    /// The stitched span trace, when [`ReplaySpec::trace`] was set.
    pub trace: Option<ReplayTrace>,
}

/// A stitched client↔daemon span timeline for one replay: client spans on
/// `pid` [`TRACE_PID_CLIENT`], daemon spans mapped onto the client clock
/// (via [`TraceLink::map_us`]) on `pid` [`TRACE_PID_DAEMON`], all sharing
/// one trace id. Feed [`ReplayTrace::spans`] to
/// [`twodprof_obs::chrome::to_json`] for a Perfetto-loadable file.
#[derive(Clone, Debug)]
pub struct ReplayTrace {
    /// The trace id every span in [`ReplayTrace::spans`] belongs to.
    pub trace: u128,
    /// All spans, client then daemon, deduplicated by span id.
    pub spans: Vec<ExportSpan>,
}

impl ReplaySummary {
    /// Whether the remote report is bit-identical to the in-process one
    /// (`None` when the replay did not verify).
    pub fn matches(&self) -> Option<bool> {
        self.local
            .as_ref()
            .map(|local| local.to_bytes() == self.remote.bytes())
    }
}

/// Replays `spec` against the daemon at `addr`.
///
/// With [`ReplaySpec::verify`] set, the single workload run is fanned out
/// through a [`Tee`] to both the [`RemoteTracer`] and a local
/// [`TwoDProfiler`] with identical configuration, so the two reports must be
/// bit-identical for a correct daemon.
///
/// # Errors
///
/// Returns a [`ReplayError`] for unknown workloads/inputs and any remote
/// failure.
pub fn replay_workload(
    addr: impl ToSocketAddrs + Copy,
    spec: &ReplaySpec,
) -> Result<ReplaySummary, ReplayError> {
    let workload = workloads::by_name(&spec.workload, spec.scale)
        .ok_or_else(|| ReplayError::UnknownWorkload(spec.workload.clone()))?;
    let input = workload
        .input_set(&spec.input)
        .ok_or_else(|| ReplayError::UnknownInput {
            workload: spec.workload.clone(),
            input: spec.input.clone(),
        })?;
    let root = spec.trace.then(|| Span::root("client.replay"));
    let ctx = root
        .as_ref()
        .map(Span::context)
        .unwrap_or(TraceContext::NONE);
    let slice = match spec.slice {
        Some(slice) => slice,
        None => {
            // auto-sizing needs the run length; workloads are deterministic,
            // so a counting pre-pass pins the same config on both sides
            let _sp = ctx.is_active().then(|| Span::enter("client.count"));
            let mut counter = CountingTracer::new();
            workload.run(&input, &mut counter);
            SliceConfig::auto(counter.count())
        }
    };
    let mut options =
        ConnectOptions::new(workload.sites().len(), spec.predictor, slice).program(&spec.program);
    if ctx.is_active() {
        options = options.traced(ctx);
    }
    let session = {
        let _sp = ctx.is_active().then(|| Span::enter("client.connect"));
        options.connect(addr)?
    };
    let link = session.trace_link();
    let remote = RemoteTracer::with_batch_size(session, spec.batch);
    let (events, remote, local) = if spec.verify {
        let local = TwoDProfiler::new(workload.sites().len(), spec.predictor.build(), slice);
        let mut tee = Tee::new(remote, local);
        {
            let _sp = ctx.is_active().then(|| Span::enter("client.stream"));
            workload.run(&input, &mut tee);
        }
        let (remote, local) = tee.into_inner();
        let events = remote.events_total();
        let _sp = ctx.is_active().then(|| Span::enter("client.finish"));
        (
            events,
            remote.finish()?,
            Some(local.finish(Thresholds::paper())),
        )
    } else {
        let mut remote = remote;
        {
            let _sp = ctx.is_active().then(|| Span::enter("client.stream"));
            workload.run(&input, &mut remote);
        }
        let events = remote.events_total();
        let _sp = ctx.is_active().then(|| Span::enter("client.finish"));
        (events, remote.finish()?, None)
    };
    let trace = match (root, link) {
        (Some(root), Some(link)) => Some(stitch_trace(addr, root, &link)?),
        (Some(root), None) => {
            root.finish();
            None
        }
        _ => None,
    };
    Ok(ReplaySummary {
        events,
        slice,
        remote,
        local,
        trace,
    })
}

/// Closes the client root span, then merges the daemon's view of the same
/// trace into the client's: daemon timestamps are mapped onto the client
/// clock with [`TraceLink::map_us`] and clamped into the root-span window
/// (RTT and clock noise must not push a daemon span outside the request
/// that caused it), daemon spans land on `pid` [`TRACE_PID_DAEMON`], and
/// spans already collected client-side are skipped by id (an in-process
/// daemon shares the collector, so its spans arrive on both paths).
fn stitch_trace(
    addr: impl ToSocketAddrs + Copy,
    root: Span,
    link: &TraceLink,
) -> Result<ReplayTrace, ReplayError> {
    let trace_id = root.trace();
    let root_start = root.start_us();
    root.finish();
    let collector = trace::collector();
    collector.flush();
    let mut spans = collector.collect_trace(trace_id);
    for span in &mut spans {
        span.pid = TRACE_PID_CLIENT;
    }
    let root_end = spans
        .iter()
        .filter(|s| s.name == "client.replay")
        .map(|s| s.start_us + s.dur_us)
        .max()
        .unwrap_or(root_start);
    let mut seen: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for mut span in fetch_trace(addr, trace_id)? {
        if !seen.insert(span.id) {
            continue;
        }
        span.pid = TRACE_PID_DAEMON;
        let start = link.map_us(span.start_us).clamp(root_start, root_end);
        let end = (start + span.dur_us).clamp(start, root_end);
        span.start_us = start;
        span.dur_us = end - start;
        spans.push(span);
    }
    Ok(ReplayTrace {
        trace: trace_id,
        spans,
    })
}
