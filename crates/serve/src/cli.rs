//! Argument parsing and entry points shared by the `twodprofd` /
//! `twodprof-client` binaries and the `repro serve` / `repro replay`
//! subcommands.

use crate::client::{
    fetch_blackbox, fetch_stats, fetch_verdicts, ClientError, ConnectOptions, WatchClient,
    DEFAULT_BATCH_EVENTS,
};
use crate::compute::ComputeConfig;
use crate::config::ServerConfig;
use crate::replay::{replay_workload, ReplaySpec};
use crate::server::{Server, ServerHandle};
use crate::wire::AdmissionTier;
use bpred::PredictorKind;
use btrace::SiteId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use twodprof_core::SliceConfig;
use twodprof_obs::Snapshot;
use twodprof_stream::{StreamConfig, VerdictSnapshot};
use workloads::Scale;

/// Default daemon endpoint shared by both sides.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4272";

fn parse_scale(v: &str) -> Result<Scale, String> {
    match v {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale {other:?}")),
    }
}

fn parse_predictor(v: &str) -> Result<PredictorKind, String> {
    PredictorKind::from_id(v).ok_or_else(|| {
        format!(
            "unknown predictor {v:?} (valid: {})",
            PredictorKind::ids().collect::<Vec<_>>().join(" ")
        )
    })
}

fn numeric<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("{flag} needs a number, got {v:?}"))
}

/// Entry point for `twodprofd` (and `repro serve`).
///
/// # Errors
///
/// Returns a usage/launch error message for the caller to print.
pub fn serve_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut builder = ServerConfig::builder();
    let mut stream = StreamConfig::default();
    let mut compute: Option<ComputeConfig> = None;
    let mut quiet = false;
    let mut addr_file = None;
    let mut http_addr_file = None;
    let mut stream_slice_len: Option<u64> = None;
    let mut stream_exec_threshold: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.to_owned(),
            "--addr-file" => addr_file = Some(value("--addr-file")?.to_owned()),
            "--http-addr" => builder = builder.http_addr(value("--http-addr")?),
            "--http-addr-file" => {
                http_addr_file = Some(value("--http-addr-file")?.to_owned());
            }
            "--timeline-capacity" => {
                builder = builder.timeline_capacity(numeric(
                    "--timeline-capacity",
                    value("--timeline-capacity")?,
                )?);
            }
            "--timeline-interval" => {
                let secs: f64 = numeric("--timeline-interval", value("--timeline-interval")?)?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--timeline-interval needs a positive number of seconds".to_owned());
                }
                builder = builder.timeline_interval(Duration::from_secs_f64(secs));
            }
            "--blackbox-capacity" => {
                builder = builder.blackbox_capacity(numeric(
                    "--blackbox-capacity",
                    value("--blackbox-capacity")?,
                )?);
            }
            "--blackbox-file" => {
                builder = builder.blackbox_path(value("--blackbox-file")?.to_owned());
            }
            "--max-sessions" => {
                builder =
                    builder.max_sessions(numeric("--max-sessions", value("--max-sessions")?)?);
            }
            "--max-events" => {
                builder = builder
                    .max_events_per_session(numeric("--max-events", value("--max-events")?)?);
            }
            "--idle-timeout-ms" => {
                builder = builder.idle_timeout(Duration::from_millis(numeric(
                    "--idle-timeout-ms",
                    value("--idle-timeout-ms")?,
                )?));
            }
            "--drain-timeout-ms" => {
                builder = builder.drain_timeout(Duration::from_millis(numeric(
                    "--drain-timeout-ms",
                    value("--drain-timeout-ms")?,
                )?));
            }
            "--retry-after-ms" => {
                builder = builder.retry_after(Duration::from_millis(numeric(
                    "--retry-after-ms",
                    value("--retry-after-ms")?,
                )?));
            }
            "--shards" => {
                builder = builder.shards(numeric("--shards", value("--shards")?)?);
            }
            "--shard-memory-budget" => {
                builder = builder.shard_memory_budget(numeric(
                    "--shard-memory-budget",
                    value("--shard-memory-budget")?,
                )?);
            }
            "--spill-threshold" => {
                builder = builder
                    .spill_threshold(numeric("--spill-threshold", value("--spill-threshold")?)?);
            }
            "--spill-dir" => {
                builder = builder.spill_dir(value("--spill-dir")?.to_owned());
            }
            "--quiet" => {
                quiet = true;
                builder = builder.quiet(true);
            }
            "--no-record" => builder = builder.record_sessions(false),
            "--stats-interval" => {
                let secs: f64 = numeric("--stats-interval", value("--stats-interval")?)?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--stats-interval needs a positive number of seconds".to_owned());
                }
                builder = builder.stats_interval(Some(Duration::from_secs_f64(secs)));
            }
            "--stream-slice-len" => {
                stream_slice_len =
                    Some(numeric("--stream-slice-len", value("--stream-slice-len")?)?);
            }
            "--stream-exec-threshold" => {
                stream_exec_threshold = Some(numeric(
                    "--stream-exec-threshold",
                    value("--stream-exec-threshold")?,
                )?);
            }
            "--stream-window" => {
                let w: usize = numeric("--stream-window", value("--stream-window")?)?;
                if w == 0 {
                    return Err("--stream-window must be at least 1".to_owned());
                }
                stream.window = w;
            }
            "--stream-hysteresis" => {
                let h: u32 = numeric("--stream-hysteresis", value("--stream-hysteresis")?)?;
                if h == 0 {
                    return Err("--stream-hysteresis must be at least 1".to_owned());
                }
                stream.hysteresis = h;
            }
            "--stream-max-lag" => {
                let l: usize = numeric("--stream-max-lag", value("--stream-max-lag")?)?;
                if l == 0 {
                    return Err("--stream-max-lag must be at least 1".to_owned());
                }
                stream.max_lag = l;
            }
            "--max-subscriber-queue" => {
                builder = builder.max_subscriber_queue(numeric(
                    "--max-subscriber-queue",
                    value("--max-subscriber-queue")?,
                )?);
            }
            "--compute" => {
                compute.get_or_insert_with(ComputeConfig::default);
            }
            "--compute-threads" => {
                let n: usize = numeric("--compute-threads", value("--compute-threads")?)?;
                compute.get_or_insert_with(ComputeConfig::default).threads = n;
            }
            "--compute-cache-dir" => {
                let dir = value("--compute-cache-dir")?.to_owned();
                compute.get_or_insert_with(ComputeConfig::default).cache_dir = Some(dir.into());
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprofd [--addr HOST:PORT] [--addr-file PATH]\n\
                     \x20               [--http-addr HOST:PORT] [--http-addr-file PATH]\n\
                     \x20               [--timeline-capacity N] [--timeline-interval SECS]\n\
                     \x20               [--blackbox-capacity N] [--blackbox-file PATH]\n\
                     \x20               [--max-sessions N] [--max-events N]\n\
                     \x20               [--idle-timeout-ms N] [--drain-timeout-ms N] [--quiet]\n\
                     \x20               [--retry-after-ms N] [--shards N]\n\
                     \x20               [--shard-memory-budget BYTES] [--spill-threshold BYTES]\n\
                     \x20               [--spill-dir DIR]\n\
                     \x20               [--stats-interval SECS] [--no-record]\n\
                     \x20               [--stream-slice-len N --stream-exec-threshold N]\n\
                     \x20               [--stream-window N] [--stream-hysteresis N]\n\
                     \x20               [--stream-max-lag N] [--max-subscriber-queue N]\n\
                     \x20               [--compute] [--compute-threads N]\n\
                     \x20               [--compute-cache-dir DIR]\n\
                     default address {DEFAULT_ADDR}; port 0 binds an ephemeral port\n\
                     --addr-file writes the bound address to PATH once listening\n\
                     --http-addr serves GET /metrics, /healthz, and /vars over\n\
                     HTTP (Prometheus text, readiness, JSON); --http-addr-file\n\
                     writes its bound address to PATH once listening\n\
                     --timeline-* shape the in-memory metrics timeline (ring of\n\
                     per-interval deltas behind /vars)\n\
                     --blackbox-* shape the flight recorder: a ring of notable\n\
                     events fetchable with `twodprof-client blackbox`, dumped\n\
                     to --blackbox-file on SIGUSR1 or panic\n\
                     --shards sets the event-loop thread count; each shard owns\n\
                     1/N of the sessions, a --shard-memory-budget of resident\n\
                     recording bytes (degrade past half, shed at the budget with\n\
                     a --retry-after-ms hint), and spills recordings larger than\n\
                     --spill-threshold to segment files under --spill-dir\n\
                     --stats-interval prints a stderr stats line every SECS seconds\n\
                     --no-record disables session trace recording (Resim frames\n\
                     then fail with BAD_STATE, at ~1 byte/event less memory)\n\
                     --stream-* shape the per-program streaming profiler backing\n\
                     the Subscribe/watch drift feed (window is in slices,\n\
                     hysteresis in consecutive folds, max-lag in epochs)\n\
                     --compute serves SubmitJob/CacheQuery fabric frames on a\n\
                     worker pool (threads default to the CPU count); with\n\
                     --compute-cache-dir its results persist and the node acts\n\
                     as a shared cache tier for every fabric client\n\
                     SIGINT/SIGTERM shut down gracefully, finishing in-flight sessions"
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    stream.slice = match (stream_slice_len, stream_exec_threshold) {
        (None, None) => stream.slice,
        (Some(len), Some(thr)) if len > 0 && thr < len => SliceConfig::new(len, thr),
        (Some(_), Some(_)) => {
            return Err("need --stream-exec-threshold < --stream-slice-len > 0".to_owned());
        }
        _ => {
            return Err("--stream-slice-len and --stream-exec-threshold go together".to_owned());
        }
    };
    builder = builder.stream(stream);
    if let Some(c) = compute {
        builder = builder.compute(c);
    }
    let config = builder.build().map_err(|e| e.to_string())?;
    let server = Server::bind(&addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = server
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    println!("twodprofd listening on {local}");
    if let Some(path) = addr_file {
        std::fs::write(&path, local.to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    let http = server
        .http_addr()
        .map_err(|e| format!("cannot resolve exposition address: {e}"))?;
    if let Some(http) = http {
        println!("twodprofd exposition on http://{http}");
        if let Some(path) = http_addr_file {
            std::fs::write(&path, http.to_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    install_signal_handlers(server.handle());
    install_panic_dump(server.handle());
    let stats = server.run().map_err(|e| format!("server failed: {e}"))?;
    if !quiet {
        eprintln!(
            "[twodprofd] shut down: {} session(s) opened, {} finished, {} aborted, {} event(s)",
            stats.sessions_opened,
            stats.sessions_finished,
            stats.sessions_aborted,
            stats.events_ingested
        );
    }
    Ok(())
}

/// Entry point for `twodprof-client` (and `repro replay`).
///
/// # Errors
///
/// Returns a usage/replay error message for the caller to print. A failed
/// `--verify` comparison is an error, so scripted callers exit non-zero.
pub fn replay_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut spec = ReplaySpec {
        workload: String::new(),
        input: String::new(),
        scale: Scale::Tiny,
        predictor: PredictorKind::Gshare4Kb,
        batch: DEFAULT_BATCH_EVENTS,
        slice: None,
        verify: false,
        trace: false,
        program: String::new(),
    };
    let mut trace_out: Option<String> = None;
    let mut slice_len = None;
    let mut exec_threshold = None;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.to_owned(),
            "--scale" => spec.scale = parse_scale(value("--scale")?)?,
            "--predictor" => spec.predictor = parse_predictor(value("--predictor")?)?,
            "--batch" => spec.batch = numeric("--batch", value("--batch")?)?,
            "--slice-len" => slice_len = Some(numeric("--slice-len", value("--slice-len")?)?),
            "--exec-threshold" => {
                exec_threshold = Some(numeric("--exec-threshold", value("--exec-threshold")?)?);
            }
            "--verify" => spec.verify = true,
            "--trace-out" => {
                trace_out = Some(value("--trace-out")?.to_owned());
                spec.trace = true;
            }
            "--program" => spec.program = value("--program")?.to_owned(),
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client replay WORKLOAD INPUT [--addr HOST:PORT]\n\
                     \x20      [--scale tiny|small|full] [--predictor ID] [--batch N]\n\
                     \x20      [--slice-len N --exec-threshold N] [--verify]\n\
                     \x20      [--trace-out PATH] [--program NAME]\n\
                     streams WORKLOAD's INPUT branch stream to a twodprofd at --addr\n\
                     (default {DEFAULT_ADDR}) and prints the returned report summary;\n\
                     --verify also profiles in-process and fails on any report diff\n\
                     --trace-out writes a stitched client+daemon span trace as\n\
                     Chrome trace-event JSON (load in chrome://tracing or Perfetto)\n\
                     --program joins the session to the daemon's shared streaming\n\
                     profiler under NAME (observe with `twodprof-client watch NAME`)\n\
                     predictors: {}",
                    PredictorKind::ids().collect::<Vec<_>>().join(" ")
                ));
            }
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    // accept both `replay gzip train` and plain `gzip train`, so the binary
    // subcommand form and `repro replay ...` parse identically
    if positional.first().map(String::as_str) == Some("replay") {
        positional.remove(0);
    }
    let [workload, input] = positional.as_slice() else {
        return Err("expected: replay WORKLOAD INPUT (try --help)".to_owned());
    };
    spec.workload = workload.clone();
    spec.input = input.clone();
    spec.slice = match (slice_len, exec_threshold) {
        (None, None) => None,
        (Some(len), Some(thr)) if len > 0 && thr < len => Some(SliceConfig::new(len, thr)),
        (Some(_), Some(_)) => return Err("need --exec-threshold < --slice-len > 0".to_owned()),
        _ => return Err("--slice-len and --exec-threshold go together".to_owned()),
    };
    let summary = replay_workload(addr.as_str(), &spec).map_err(|e| e.to_string())?;
    let report = summary.remote.report();
    println!(
        "replayed {}/{} to {}: {} event(s), {} slice(s) of {}, predictor {}",
        spec.workload,
        spec.input,
        addr,
        summary.events,
        report.total_slices(),
        summary.slice.slice_len(),
        report.predictor_name()
    );
    println!(
        "program accuracy {:.4}; {} of {} branch(es) predicted input-dependent",
        report.program_accuracy().unwrap_or(f64::NAN),
        report.predicted_dependent().count(),
        report.num_sites()
    );
    match summary.matches() {
        None => {}
        Some(true) => println!("verify: remote report is bit-identical to in-process run"),
        Some(false) => return Err("verify: remote report DIFFERS from in-process run".to_owned()),
    }
    if let Some(path) = trace_out {
        let trace = summary
            .trace
            .as_ref()
            .ok_or_else(|| "no trace captured for --trace-out".to_owned())?;
        let doc = twodprof_obs::chrome::to_json(
            &trace.spans,
            &[
                (crate::replay::TRACE_PID_CLIENT, "twodprof-client"),
                (crate::replay::TRACE_PID_DAEMON, "twodprofd"),
            ],
        );
        std::fs::write(&path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "trace: wrote {} span(s) of trace {:032x} to {path}",
            trace.spans.len(),
            trace.trace
        );
    }
    Ok(())
}

/// Entry point for `twodprof-client stats` (and `repro stats`): fetches a
/// live daemon's metrics snapshot and prints it as Prometheus text lines.
///
/// # Errors
///
/// Returns a usage/transport error message for the caller to print.
pub fn stats_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "stats" => {} // tolerated so `stats --addr ...` and `--addr ...` both parse
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--addr needs a value".to_owned())?;
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client stats [--addr HOST:PORT]\n\
                     fetches the metrics snapshot of a twodprofd at --addr\n\
                     (default {DEFAULT_ADDR}) and prints Prometheus text lines"
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let snapshot = fetch_stats(addr.as_str()).map_err(|e| e.to_string())?;
    print!("{}", snapshot.to_text());
    Ok(())
}

/// Entry point for `twodprof-client watch` (and `repro watch`): subscribes
/// to a program's streaming verdicts, prints the initial snapshot table,
/// then streams drift events until the daemon closes, `--limit` is reached,
/// or the process is killed.
///
/// # Errors
///
/// Returns a usage/transport error message for the caller to print.
pub fn watch_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut snapshot_only = false;
    let mut limit: u64 = 0;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.to_owned(),
            "--snapshot" => snapshot_only = true,
            "--limit" => limit = numeric("--limit", value("--limit")?)?,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client watch PROGRAM [--addr HOST:PORT]\n\
                     \x20      [--snapshot] [--limit N]\n\
                     subscribes to PROGRAM's streaming verdicts on a twodprofd at\n\
                     --addr (default {DEFAULT_ADDR}): prints the current verdict\n\
                     table, then one line per drift event as windows fold\n\
                     --snapshot prints the table and exits without subscribing\n\
                     --limit N exits successfully after N drift events (0 = run\n\
                     until the daemon closes the stream)"
                ));
            }
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if positional.first().map(String::as_str) == Some("watch") {
        positional.remove(0);
    }
    let [program] = positional.as_slice() else {
        return Err("expected: watch PROGRAM (try --help)".to_owned());
    };
    if snapshot_only {
        let snap = fetch_verdicts(addr.as_str(), program).map_err(|e| e.to_string())?;
        print_snapshot(&snap, program);
        return Ok(());
    }
    let mut watch = WatchClient::connect(addr.as_str(), program).map_err(|e| e.to_string())?;
    print_snapshot(watch.snapshot(), program);
    let mut seen = 0u64;
    loop {
        match watch.next_event().map_err(|e| e.to_string())? {
            Some(ev) => {
                println!(
                    "drift: site {} {} -> {} @ epoch {}",
                    ev.site, ev.from, ev.to, ev.epoch
                );
                seen += 1;
                if limit > 0 && seen >= limit {
                    break;
                }
            }
            None => {
                println!("watch: daemon closed the stream after {seen} drift event(s)");
                break;
            }
        }
    }
    Ok(())
}

fn print_snapshot(snap: &VerdictSnapshot, program: &str) {
    let fmt_opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.4}"),
        None => "-".to_owned(),
    };
    println!(
        "program {program:?}: {} epoch(s) folded, window {} slice(s) of {}, accuracy {}",
        snap.epoch,
        snap.window,
        snap.slice_len,
        fmt_opt(snap.program_accuracy)
    );
    println!(
        "{:>6}  {:<13} {:>7} {:>8} {:>8} {:>8}",
        "site", "verdict", "slices", "mean", "std", "pam"
    );
    for (i, s) in snap.sites.iter().enumerate() {
        println!(
            "{:>6}  {:<13} {:>7} {:>8} {:>8} {:>8}",
            i,
            s.verdict.to_string(),
            s.slices,
            fmt_opt(s.mean),
            fmt_opt(s.std_dev),
            fmt_opt(s.pam_fraction)
        );
    }
}

/// Entry point for `twodprof-client drive`: streams a synthetic
/// phase-changing workload into a daemon under a program id, so a
/// concurrent `watch` of the same program observes drift events. Site 0
/// alternates between an always-taken phase and a pseudo-random phase every
/// `--flip-every` events (the paper's input-dependent signature); the
/// remaining sites stay steadily predictable.
///
/// # Errors
///
/// Returns a usage/transport error message for the caller to print.
pub fn drive_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut sites: u32 = 4;
    let mut events: u64 = 400_000;
    let mut flip_every: u64 = 50_000;
    let mut seed: u64 = 0x2545_F491_4F6C_DD1D;
    let mut predictor = PredictorKind::Gshare4Kb;
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.to_owned(),
            "--sites" => sites = numeric("--sites", value("--sites")?)?,
            "--events" => events = numeric("--events", value("--events")?)?,
            "--flip-every" => flip_every = numeric("--flip-every", value("--flip-every")?)?,
            "--seed" => seed = numeric("--seed", value("--seed")?)?,
            "--predictor" => predictor = parse_predictor(value("--predictor")?)?,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client drive PROGRAM [--addr HOST:PORT]\n\
                     \x20      [--sites N] [--events N] [--flip-every N] [--seed N]\n\
                     \x20      [--predictor ID]\n\
                     streams a synthetic phase-changing branch workload to a\n\
                     twodprofd at --addr (default {DEFAULT_ADDR}) under PROGRAM:\n\
                     site 0 flips between always-taken and pseudo-random phases\n\
                     every --flip-every events, driving verdict drift observable\n\
                     with `twodprof-client watch PROGRAM`"
                ));
            }
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if positional.first().map(String::as_str) == Some("drive") {
        positional.remove(0);
    }
    let [program] = positional.as_slice() else {
        return Err("expected: drive PROGRAM (try --help)".to_owned());
    };
    if sites == 0 {
        return Err("--sites must be at least 1".to_owned());
    }
    let slice = SliceConfig::new(8192, 16);
    let mut session = ConnectOptions::new(sites as usize, predictor, slice)
        .program(program)
        .connect(addr.as_str())
        .map_err(|e| e.to_string())?;
    let mut rng = seed | 1;
    let mut batch: Vec<(SiteId, bool)> = Vec::with_capacity(DEFAULT_BATCH_EVENTS);
    let mut sent = 0u64;
    for i in 0..events {
        let site = (i % sites as u64) as u32;
        let taken = if site == 0 {
            let phase = (i / flip_every) % 2;
            if phase == 0 {
                true
            } else {
                rng = rng
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                (rng >> 63) & 1 == 1
            }
        } else {
            // steady alternation: trivially learnable, so these sites stay
            // input-independent and never drift
            (i / sites as u64).is_multiple_of(2)
        };
        batch.push((SiteId(site), taken));
        if batch.len() >= DEFAULT_BATCH_EVENTS {
            session.send_events(&batch).map_err(|e| e.to_string())?;
            sent += batch.len() as u64;
            batch.clear();
            if sent.is_multiple_of(DEFAULT_BATCH_EVENTS as u64 * 16) {
                session.flush().map_err(|e| e.to_string())?;
            }
        }
    }
    if !batch.is_empty() {
        session.send_events(&batch).map_err(|e| e.to_string())?;
    }
    let report = session.finish().map_err(|e| e.to_string())?;
    let report = report.report();
    println!(
        "drove {events} event(s) across {sites} site(s) into program {program:?} at {addr}: \
         {} slice(s), {} predicted input-dependent",
        report.total_slices(),
        report.predicted_dependent().count()
    );
    Ok(())
}

/// Entry point for `twodprof-client soak`: hammers a daemon with many short
/// loopback sessions from a pool of worker threads, honoring the daemon's
/// retry-after hints on shed, and reports admission-tier counts plus a
/// shed-rate gate. This is the load generator behind
/// `scripts/ingest_soak.sh`'s 10k-session CI soak.
///
/// # Errors
///
/// Returns a usage/transport error message, or a gate-failure message when
/// any session errored out or the shed rate exceeded `--max-shed-pct`.
pub fn soak_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut sessions: u64 = 10_000;
    let mut concurrency: usize = 64;
    let mut events: u64 = 2_000;
    let mut sites: usize = 32;
    let mut program = String::new();
    let mut max_shed_pct: f64 = 1.0;
    let mut predictor = PredictorKind::Gshare4Kb;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "soak" => {} // tolerated so `soak --addr ...` and `--addr ...` both parse
            "--addr" => addr = value("--addr")?.to_owned(),
            "--sessions" => sessions = numeric("--sessions", value("--sessions")?)?,
            "--concurrency" => concurrency = numeric("--concurrency", value("--concurrency")?)?,
            "--events" => events = numeric("--events", value("--events")?)?,
            "--sites" => sites = numeric("--sites", value("--sites")?)?,
            "--program" => program = value("--program")?.to_owned(),
            "--max-shed-pct" => {
                max_shed_pct = numeric("--max-shed-pct", value("--max-shed-pct")?)?;
            }
            "--predictor" => predictor = parse_predictor(value("--predictor")?)?,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client soak [--addr HOST:PORT] [--sessions N]\n\
                     \x20      [--concurrency N] [--events N] [--sites N]\n\
                     \x20      [--program NAME] [--max-shed-pct F] [--predictor ID]\n\
                     opens --sessions short profiling sessions against a twodprofd\n\
                     at --addr (default {DEFAULT_ADDR}) from --concurrency worker\n\
                     threads, --events branch events each; shed sessions retry\n\
                     after the daemon's hint and are counted, degraded admissions\n\
                     are counted, and the run fails if any session errors out or\n\
                     the shed retry rate exceeds --max-shed-pct percent"
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if sessions == 0 || concurrency == 0 || sites == 0 {
        return Err("--sessions, --concurrency, and --sites must be at least 1".to_owned());
    }
    let next = Arc::new(AtomicU64::new(0));
    let sheds = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(AtomicU64::new(0));
    let failures = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let mut workers = Vec::with_capacity(concurrency);
    for w in 0..concurrency {
        let addr = addr.clone();
        let program = program.clone();
        let next = Arc::clone(&next);
        let sheds = Arc::clone(&sheds);
        let degraded = Arc::clone(&degraded);
        let failures = Arc::clone(&failures);
        let worker = std::thread::Builder::new()
            .name(format!("twodprof-soak-{w}"))
            .spawn(move || {
                let slice = SliceConfig::new(256, 4);
                let mut batch: Vec<(SiteId, bool)> = Vec::with_capacity(events as usize);
                while next.fetch_add(1, Ordering::Relaxed) < sessions {
                    let session = loop {
                        let mut opts = ConnectOptions::new(sites, predictor, slice);
                        if !program.is_empty() {
                            opts = opts.program(&program);
                        }
                        match opts.connect(addr.as_str()) {
                            Ok(s) => break Ok(s),
                            Err(ClientError::Refused { retry_after, .. }) => {
                                sheds.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(retry_after.max(Duration::from_millis(5)));
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    let mut session = match session {
                        Ok(s) => s,
                        Err(e) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            eprintln!("soak: connect failed: {e}");
                            continue;
                        }
                    };
                    if session.admission_tier() == AdmissionTier::Degrade {
                        degraded.fetch_add(1, Ordering::Relaxed);
                    }
                    batch.clear();
                    for i in 0..events {
                        let site = (i % sites as u64) as u32;
                        // site 0 pseudo-random, the rest steady: a mix of
                        // input-dependent and predictable branches
                        let taken = if site == 0 {
                            (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63) & 1 == 1
                        } else {
                            i.is_multiple_of(2)
                        };
                        batch.push((SiteId(site), taken));
                    }
                    let sent = session
                        .send_events(&batch)
                        .and_then(|()| session.finish().map(|_| ()));
                    if let Err(e) = sent {
                        failures.fetch_add(1, Ordering::Relaxed);
                        eprintln!("soak: session failed: {e}");
                    }
                }
            })
            .map_err(|e| format!("cannot spawn soak worker: {e}"))?;
        workers.push(worker);
    }
    for worker in workers {
        worker
            .join()
            .map_err(|_| "soak worker panicked".to_owned())?;
    }
    let elapsed = start.elapsed();
    let sheds = sheds.load(Ordering::Relaxed);
    let degraded = degraded.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    let shed_pct = 100.0 * sheds as f64 / sessions as f64;
    let rate = sessions as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "soak: sessions={sessions} events_per_session={events} concurrency={concurrency} \
         elapsed_s={:.2} rate_per_s={rate:.0} shed_retries={sheds} shed_pct={shed_pct:.3} \
         degraded={degraded} failures={failures}",
        elapsed.as_secs_f64()
    );
    if failures > 0 {
        return Err(format!("soak: {failures} session(s) failed"));
    }
    if shed_pct > max_shed_pct {
        return Err(format!(
            "soak: shed rate {shed_pct:.3}% exceeds gate of {max_shed_pct}%"
        ));
    }
    Ok(())
}

/// Entry point for `twodprof-client top`: a live terminal dashboard over
/// one or more daemons. Each refresh fetches every `--node`'s `Stats`
/// snapshot, differences it against the previous refresh for rates, and
/// renders per-node session/event/cache lines plus one row per shard
/// (admission tier, sessions, residency, event-loop lag, reply backlog).
/// `--iterations N` renders N frames and exits (scripted mode; a single
/// iteration never clears the screen), `0` runs until killed.
///
/// # Errors
///
/// Returns a usage error message for the caller to print. Unreachable
/// nodes render as an error row and do not abort the dashboard.
pub fn top_main(args: &[String]) -> Result<(), String> {
    use std::fmt::Write as _;
    let mut nodes: Vec<String> = Vec::new();
    let mut interval = Duration::from_secs(2);
    let mut iterations: u64 = 0;
    let mut clear = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "top" => {} // tolerated so `top --node ...` and `--node ...` both parse
            "--node" => nodes.push(value("--node")?.to_owned()),
            "--interval" => {
                let secs: f64 = numeric("--interval", value("--interval")?)?;
                if !(secs > 0.0 && secs.is_finite()) {
                    return Err("--interval needs a positive number of seconds".to_owned());
                }
                interval = Duration::from_secs_f64(secs);
            }
            "--iterations" => iterations = numeric("--iterations", value("--iterations")?)?,
            "--no-clear" => clear = false,
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client top [--node HOST:PORT]... [--interval SECS]\n\
                     \x20      [--iterations N] [--no-clear]\n\
                     live dashboard over one or more twodprofd daemons (default\n\
                     node {DEFAULT_ADDR}): per-node session counts, event rates,\n\
                     cache hits, and drift rates with deltas per refresh, plus\n\
                     one row per shard with its admission tier, residency,\n\
                     event-loop lag, and reply-backlog high water\n\
                     --iterations N renders N frames and exits (0 = until\n\
                     killed); --no-clear appends frames instead of repainting"
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if nodes.is_empty() {
        nodes.push(DEFAULT_ADDR.to_owned());
    }
    let mut last: Vec<Option<Snapshot>> = nodes.iter().map(|_| None).collect();
    let mut round: u64 = 0;
    loop {
        round += 1;
        let mut frame = String::new();
        let _ = writeln!(
            frame,
            "twodprof top | {} node(s), refresh {:.1}s, frame {round}",
            nodes.len(),
            interval.as_secs_f64()
        );
        for (i, node) in nodes.iter().enumerate() {
            match fetch_stats(node.as_str()) {
                Ok(snap) => {
                    render_top_node(
                        &mut frame,
                        node,
                        &snap,
                        last[i].as_ref(),
                        interval.as_secs_f64(),
                    );
                    last[i] = Some(snap);
                }
                Err(e) => {
                    let _ = writeln!(frame, "node {node}: unreachable ({e})");
                    last[i] = None;
                }
            }
        }
        if clear && iterations != 1 {
            // ANSI clear + home: repaint in place like top(1)
            print!("\x1b[2J\x1b[H");
        }
        print!("{frame}");
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if iterations != 0 && round >= iterations {
            break;
        }
        std::thread::sleep(interval);
    }
    Ok(())
}

/// Renders one node's dashboard block from its snapshot (and the previous
/// refresh's snapshot for per-refresh rates).
fn render_top_node(
    out: &mut String,
    node: &str,
    snap: &Snapshot,
    prev: Option<&Snapshot>,
    secs: f64,
) {
    use std::fmt::Write as _;
    let delta = prev.map(|p| snap.delta(p));
    let total = |name: &str| snap.counter(name).unwrap_or(0);
    let rate = |name: &str| -> f64 {
        delta.as_ref().and_then(|d| d.counter(name)).unwrap_or(0) as f64 / secs.max(1e-9)
    };
    let _ = writeln!(out, "node {node}");
    let _ = writeln!(
        out,
        "  sessions: opened {} ({:.1}/s), finished {} ({:.1}/s), aborted {}; admit {} acc / {} deg / {} shed",
        total("serve_sessions_opened_total"),
        rate("serve_sessions_opened_total"),
        total("serve_sessions_finished_total"),
        rate("serve_sessions_finished_total"),
        total("serve_sessions_aborted_total"),
        total("serve_admit_accept_total"),
        total("serve_admit_degrade_total"),
        total("serve_admit_shed_total"),
    );
    let _ = writeln!(
        out,
        "  events: {} total ({:.0}/s); drift {} ({:.1}/s); cache {} memo / {} disk / {} miss",
        total("serve_events_total"),
        rate("serve_events_total"),
        total("stream_drift_events_total"),
        rate("stream_drift_events_total"),
        total("engine_cache_memo_hits_total"),
        total("engine_cache_hits_total"),
        total("engine_cache_misses_total"),
    );
    let mut shard = 0usize;
    while let Some(sessions) = snap.gauge(&format!("serve_shard{shard}_sessions")) {
        let tier = match snap.gauge(&format!("serve_shard{shard}_tier")).unwrap_or(0) {
            0 => "accept",
            1 => "degrade",
            _ => "shed",
        };
        let _ = writeln!(
            out,
            "  shard {shard}: {tier:<8} {sessions} session(s), resident {}B, spilled {}B, lag {}us, backlog {}B",
            snap.gauge(&format!("serve_shard{shard}_resident_bytes"))
                .unwrap_or(0),
            snap.gauge(&format!("serve_shard{shard}_spilled_bytes"))
                .unwrap_or(0),
            snap.gauge(&format!("serve_shard{shard}_lag_micros"))
                .unwrap_or(0),
            snap.gauge(&format!("serve_shard{shard}_out_buffer_high_water_bytes"))
                .unwrap_or(0),
        );
        shard += 1;
    }
    if shard == 0 {
        let _ = writeln!(
            out,
            "  (no per-shard gauges in the snapshot; daemon metrics disabled?)"
        );
    }
}

/// Entry point for `twodprof-client blackbox`: fetches a live daemon's
/// flight-recorder ring (or decodes a `SIGUSR1`/panic dump from `--file`)
/// and prints the events, oldest first. Decoding verifies the block's
/// checksum, so a torn dump fails loudly instead of printing garbage.
///
/// # Errors
///
/// Returns a usage/transport/decode error message for the caller to print.
pub fn blackbox_main(args: &[String]) -> Result<(), String> {
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut file: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "blackbox" => {} // tolerated so both invocation forms parse
            "--addr" => addr = value("--addr")?.to_owned(),
            "--file" => file = Some(value("--file")?.to_owned()),
            "--help" | "-h" => {
                return Err(format!(
                    "usage: twodprof-client blackbox [--addr HOST:PORT] [--file PATH]\n\
                     prints the flight recorder's ring of notable daemon events\n\
                     (decode errors, tier transitions, spills, aborts, slow\n\
                     ticks), oldest first\n\
                     default: fetch live over the wire from --addr\n\
                     (default {DEFAULT_ADDR}); --file instead decodes a blackbox\n\
                     dump written on SIGUSR1 or panic, verifying its checksum"
                ));
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    let events = match file {
        Some(path) => {
            let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
            crate::flight::decode(&bytes).map_err(|e| format!("{path}: {e}"))?
        }
        None => fetch_blackbox(addr.as_str()).map_err(|e| e.to_string())?,
    };
    println!("blackbox: {} event(s)", events.len());
    for event in &events {
        println!("{event}");
    }
    Ok(())
}

/// Installs SIGINT/SIGTERM handlers that request a graceful shutdown, and a
/// SIGUSR1 handler that requests a flight-recorder (blackbox) dump.
///
/// Uses the C `signal` entry point directly (std links libc anyway) to stay
/// dependency-free; every handler body is a single atomic store, which is
/// async-signal-safe. The actual dump happens on the accept loop's next
/// pass, off the signal stack.
#[cfg(unix)]
fn install_signal_handlers(handle: ServerHandle) {
    static HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIGUSR1: i32 = 10;
    extern "C" fn on_signal(signum: i32) {
        if signum == SIGUSR1 {
            crate::flight::request_dump();
            return;
        }
        if let Some(handle) = HANDLE.get() {
            handle.shutdown();
        }
    }
    let _ = HANDLE.set(handle);
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGUSR1, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_handle: ServerHandle) {}

/// Wraps the default panic hook so a crashing daemon leaves a blackbox dump
/// behind (the same file `SIGUSR1` writes) before the usual backtrace.
fn install_panic_dump(handle: ServerHandle) {
    static PANIC_HANDLE: OnceLock<ServerHandle> = OnceLock::new();
    if PANIC_HANDLE.set(handle).is_err() {
        return;
    }
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(handle) = PANIC_HANDLE.get() {
            match handle.dump_blackbox() {
                Ok(path) => eprintln!("[twodprofd] panic: blackbox dumped to {}", path.display()),
                Err(e) => eprintln!("[twodprofd] panic: blackbox dump failed: {e}"),
            }
        }
        default_hook(info);
    }));
}
