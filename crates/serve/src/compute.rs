//! The daemon's compute service: a bounded worker pool that executes
//! [`JobSpec`]s submitted over the wire against the daemon's own engine and
//! cache tier.
//!
//! Enabled with `twodprofd --compute`, this turns a daemon into a fabric
//! node: remote clients ship `SubmitJob`/`CacheQuery` frames on sessionless
//! connections, the pool runs them through an [`Engine`] whose disk cache
//! is shared by every client of this node, and workers reply with
//! `JobResult` frames whenever their job finishes — out of submission
//! order, correlated by `job_id`. Because the engine memoizes and persists
//! by content hash, a fleet of clients sweeping overlapping grids
//! deduplicates work here: the first submission computes, the rest hit the
//! cache tier (reported as `cached`, counted in
//! `fabric_remote_cache_hits_total`).
//!
//! Replies go through a shared [`BufWriter`] behind a mutex, because the
//! connection's reader thread (answering `CacheQuery` inline) and N pool
//! workers (answering `SubmitJob` eventually) interleave writes to the same
//! socket. A reply that fails to write is dropped silently — the client
//! treats the dead connection as node loss and requeues, which is exactly
//! the semantic we want on daemon shutdown.

use crate::wire::{JobOutcome, JobPayload, ServerFrame, MAX_RESULT_PAYLOAD};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;
use twodprof_engine::{payload_checksum, Engine, EngineConfig, JobSpec, JobStatus};

/// Compute-service knobs, carried inside `ServerConfig`.
#[derive(Clone, Debug, Default)]
pub struct ComputeConfig {
    /// Worker threads executing submitted jobs; `0` means
    /// `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Disk-cache directory of the node's engine; `None` keeps the cache
    /// tier memory-only (still deduplicates within the daemon's lifetime).
    pub cache_dir: Option<PathBuf>,
}

/// The socket writer a compute connection's replies funnel through.
pub(crate) type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

struct Task {
    job_id: u64,
    spec: JobSpec,
    writer: SharedWriter,
    /// The submitting connection's idle-GC clock; refreshed when the reply
    /// lands so a connection waiting on a deep queue isn't reaped.
    last_seen: Arc<Mutex<Instant>>,
}

#[derive(Default)]
struct Queue {
    tasks: VecDeque<Task>,
    /// Tasks popped but not yet replied to, across all workers. The queue
    /// is only "drained" (trace-release point) when both are zero.
    active: usize,
    shutdown: bool,
}

/// The worker pool plus the engine it executes against.
pub(crate) struct ComputePool {
    engine: Arc<Engine>,
    queue: Mutex<Queue>,
    cond: Condvar,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ComputePool {
    /// Builds the engine and spawns the worker threads.
    pub(crate) fn start(config: &ComputeConfig) -> Arc<Self> {
        let threads = if config.threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let engine = Arc::new(Engine::new(EngineConfig {
            // the pool fans out across tasks itself; each task runs on one
            // worker thread, so the engine's internal pool stays at 1
            jobs: 1,
            cache_dir: config.cache_dir.clone(),
            progress: false,
            ..EngineConfig::default()
        }));
        let pool = Arc::new(Self {
            engine,
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            workers: Mutex::new(Vec::new()),
        });
        let mut workers = pool.workers.lock().expect("worker list");
        for i in 0..threads {
            let pool2 = pool.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("twodprofd-compute-{i}"))
                    .spawn(move || pool2.worker_loop())
                    .expect("spawn compute worker"),
            );
        }
        drop(workers);
        pool
    }

    /// Number of worker threads.
    pub(crate) fn threads(&self) -> usize {
        self.workers.lock().expect("worker list").len()
    }

    /// Enqueues a job; a worker replies on `writer` when it finishes.
    pub(crate) fn submit(
        &self,
        job_id: u64,
        spec: JobSpec,
        writer: SharedWriter,
        last_seen: Arc<Mutex<Instant>>,
    ) {
        twodprof_obs::counter!(
            "fabric_jobs_submitted_total",
            "Jobs accepted by this process's fabric tier (daemon: received; client: sent)."
        )
        .inc();
        let mut q = self.queue.lock().expect("compute queue");
        q.tasks.push_back(Task {
            job_id,
            spec,
            writer,
            last_seen,
        });
        drop(q);
        self.cond.notify_one();
    }

    /// Probes the node's cache tier (memo + disk) without scheduling
    /// compute — the `CacheQuery` path. Counts a fabric cache hit when it
    /// answers.
    pub(crate) fn lookup(&self, spec: &JobSpec) -> Option<JobPayload> {
        let output = self.engine.peek(spec)?;
        twodprof_obs::counter!(
            "fabric_remote_cache_hits_total",
            "Jobs answered from a remote daemon's shared cache tier."
        )
        .inc();
        Some(payload_of(spec, &output.to_payload(), true))
    }

    /// Stops accepting work, finishes what is queued (replies to dead
    /// connections fail silently), and joins the workers.
    pub(crate) fn shutdown(&self) {
        self.queue.lock().expect("compute queue").shutdown = true;
        self.cond.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list"));
        for w in workers {
            w.join().expect("compute worker never panics");
        }
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().expect("compute queue");
                loop {
                    if let Some(task) = q.tasks.pop_front() {
                        q.active += 1;
                        break task;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = self.cond.wait(q).expect("compute queue");
                }
            };
            let outcome = self.execute(&task.spec);
            let frame = ServerFrame::JobResult {
                job_id: task.job_id,
                outcome,
            };
            {
                // a dead peer is fine: the client requeues the job elsewhere
                let mut w = task.writer.lock().expect("compute writer");
                if frame.write_to(&mut *w).and_then(|()| w.flush()).is_ok() {
                    *task.last_seen.lock().expect("last_seen") = Instant::now();
                }
            }
            twodprof_obs::counter!(
                "fabric_jobs_completed_total",
                "Jobs this process's fabric tier finished (daemon: replied; client: resolved)."
            )
            .inc();
            let mut q = self.queue.lock().expect("compute queue");
            q.active -= 1;
            if q.active == 0 && q.tasks.is_empty() {
                // the queue ran dry: traces recorded for this burst are on
                // disk (when caching) — drop the in-memory copies so a
                // long-lived node's footprint stays bounded
                drop(q);
                self.engine.release_traces();
            }
        }
    }

    fn execute(&self, spec: &JobSpec) -> JobOutcome {
        let _span = twodprof_obs::span!("fabric.compute");
        let result = self.engine.run_one(spec);
        if let JobStatus::Failed(msg) = &result.status {
            return JobOutcome::Failed(msg.clone());
        }
        let Some(output) = result.output else {
            return JobOutcome::Failed("job produced no output".into());
        };
        let bytes = output.to_payload();
        if bytes.len() > MAX_RESULT_PAYLOAD {
            return JobOutcome::TooLarge;
        }
        let cached = matches!(result.status, JobStatus::Cached);
        if cached {
            twodprof_obs::counter!(
                "fabric_remote_cache_hits_total",
                "Jobs answered from a remote daemon's shared cache tier."
            )
            .inc();
        }
        JobOutcome::Done(payload_of(spec, &bytes, cached))
    }
}

fn payload_of(spec: &JobSpec, bytes: &[u8], cached: bool) -> JobPayload {
    JobPayload {
        cached,
        spec_hash: spec.content_hash(),
        checksum: payload_checksum(bytes),
        bytes: bytes.to_vec(),
    }
}
