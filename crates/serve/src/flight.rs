//! The flight recorder: a bounded ring of recent notable daemon events,
//! dumped to a checksummed file for postmortems.
//!
//! Metrics aggregate and forget; when a daemon sheds load or dies, the
//! operator wants the last N *events* — which connection hit a decode
//! error, when the shard crossed into Degrade, which session aborted —
//! in order. The [`FlightRecorder`] keeps exactly that: a fixed-capacity
//! `VecDeque` of [`FlightEvent`]s behind one mutex, written only on the
//! cold paths (errors, tier transitions, spills, aborts, slow ticks), so
//! the ingest hot path never touches it.
//!
//! The ring leaves the process three ways: the sessionless `Blackbox` wire
//! frame (any client can fetch it live), a `SIGUSR1`-triggered dump to
//! disk, and an automatic dump from the daemon's panic hook. Dumps and
//! wire replies share one [`encode`](FlightRecorder::encode) format — a
//! versioned varint block with an FNV-1a checksum trailer (the same
//! [`payload_checksum`] the cache tier uses) — so [`decode`] can tell a
//! torn write from an empty ring.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use twodprof_engine::payload_checksum;

/// Serialization format version for [`FlightRecorder::encode`].
const FLIGHT_VERSION: u8 = 1;

/// Hard cap on the event count a decoder will accept.
const MAX_EVENTS: usize = 1 << 16;

/// Hard cap on one event's detail-string length.
const MAX_DETAIL: usize = 1 << 12;

/// What kind of notable event a [`FlightEvent`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A connection's byte stream failed frame decoding.
    DecodeError,
    /// A shard's admission tier crossed into Degrade.
    Degrade,
    /// A shard's admission tier crossed into Shed, or a `Hello` was shed.
    Shed,
    /// A session's recording buffer spilled to a disk segment.
    Spill,
    /// A session ended without `Finish` (disconnect, error, reap, limit).
    SessionAbort,
    /// A shard's service pass ran long enough to starve its peers.
    SlowTick,
}

impl FlightKind {
    fn as_u8(self) -> u8 {
        match self {
            FlightKind::DecodeError => 0,
            FlightKind::Degrade => 1,
            FlightKind::Shed => 2,
            FlightKind::Spill => 3,
            FlightKind::SessionAbort => 4,
            FlightKind::SlowTick => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => FlightKind::DecodeError,
            1 => FlightKind::Degrade,
            2 => FlightKind::Shed,
            3 => FlightKind::Spill,
            4 => FlightKind::SessionAbort,
            5 => FlightKind::SlowTick,
            _ => return None,
        })
    }

    /// Lowercase label for logs and dashboards.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::DecodeError => "decode-error",
            FlightKind::Degrade => "degrade",
            FlightKind::Shed => "shed",
            FlightKind::Spill => "spill",
            FlightKind::SessionAbort => "abort",
            FlightKind::SlowTick => "slow-tick",
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Milliseconds since the recorder (i.e. the daemon) started.
    pub at_millis: u64,
    /// Event kind.
    pub kind: FlightKind,
    /// Owning shard index, or `u32::MAX` for events with no shard context.
    pub shard: u32,
    /// Connection id, or 0 for events with no connection context.
    pub conn: u64,
    /// Free-form context (error text, byte counts, tier names).
    pub detail: String,
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[+{:>9.3}s] {:<12}",
            self.at_millis as f64 / 1000.0,
            self.kind.label()
        )?;
        if self.shard != u32::MAX {
            write!(f, " shard {}", self.shard)?;
        }
        if self.conn != 0 {
            write!(f, " conn {}", self.conn)?;
        }
        write!(f, "  {}", self.detail)
    }
}

/// The bounded event ring. One per daemon instance (it lives on the
/// server's shared state), so parallel daemons in one process never mix
/// their postmortems.
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    events: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// An empty recorder retaining at most `capacity` events (clamped to
    /// at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            start: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Records one event, evicting the oldest past capacity.
    pub fn record(&self, kind: FlightKind, shard: u32, conn: u64, detail: String) {
        let event = FlightEvent {
            at_millis: self.start.elapsed().as_millis() as u64,
            kind,
            shard,
            conn,
            detail,
        };
        let mut events = self.events.lock().expect("flight ring");
        events.push_back(event);
        while events.len() > self.capacity {
            events.pop_front();
        }
        drop(events);
        twodprof_obs::counter!(
            "serve_flight_events_total",
            "Notable events captured by the flight recorder."
        )
        .inc();
    }

    /// A copy of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events
            .lock()
            .expect("flight ring")
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the ring: version byte, varint event count, per-event
    /// fields, and an 8-byte little-endian FNV-1a checksum of everything
    /// before it.
    pub fn encode(&self) -> Vec<u8> {
        encode_events(&self.snapshot())
    }

    /// Writes [`encode`](Self::encode) to `path` (replacing any previous
    /// dump).
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn dump_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.encode())
    }
}

/// Serializes a slice of events in the [`FlightRecorder::encode`] format.
pub fn encode_events(events: &[FlightEvent]) -> Vec<u8> {
    let mut out = vec![FLIGHT_VERSION];
    // writes into a Vec never fail
    let varint = |out: &mut Vec<u8>, v: u64| {
        btrace::write_varint(out, v).expect("vec write");
    };
    varint(&mut out, events.len() as u64);
    for e in events {
        varint(&mut out, e.at_millis);
        out.push(e.kind.as_u8());
        varint(&mut out, e.shard as u64);
        varint(&mut out, e.conn);
        varint(&mut out, e.detail.len() as u64);
        out.extend_from_slice(e.detail.as_bytes());
    }
    let checksum = payload_checksum(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a [`FlightRecorder::encode`] block, verifying the checksum
/// trailer and rejecting unknown versions, oversized fields, and trailing
/// bytes.
///
/// # Errors
///
/// Returns `InvalidData` naming what failed (checksum mismatch, truncation,
/// unknown kind, overlong detail).
pub fn decode(bytes: &[u8]) -> io::Result<Vec<FlightEvent>> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    if bytes.len() < 8 {
        return Err(invalid("flight block too short for its checksum"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let declared = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if payload_checksum(body) != declared {
        return Err(invalid("flight block checksum mismatch (torn dump?)"));
    }
    let mut r = body;
    let (&version, rest) = r
        .split_first()
        .ok_or_else(|| invalid("empty flight block"))?;
    r = rest;
    if version != FLIGHT_VERSION {
        return Err(invalid("unsupported flight-block version"));
    }
    let count = btrace::read_varint(&mut r)? as usize;
    if count > MAX_EVENTS {
        return Err(invalid("flight event count too large"));
    }
    let mut events = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let at_millis = btrace::read_varint(&mut r)?;
        let (&kind, rest) = r
            .split_first()
            .ok_or_else(|| invalid("truncated flight event"))?;
        r = rest;
        let kind = FlightKind::from_u8(kind).ok_or_else(|| invalid("unknown flight-event kind"))?;
        let shard = btrace::read_varint(&mut r)?;
        if shard > u32::MAX as u64 {
            return Err(invalid("flight-event shard index out of range"));
        }
        let conn = btrace::read_varint(&mut r)?;
        let len = btrace::read_varint(&mut r)? as usize;
        if len > MAX_DETAIL {
            return Err(invalid("flight-event detail too long"));
        }
        if len > r.len() {
            return Err(invalid("flight-event detail overruns block"));
        }
        let (detail, rest) = r.split_at(len);
        r = rest;
        let detail = std::str::from_utf8(detail)
            .map_err(|_| invalid("flight-event detail is not UTF-8"))?
            .to_owned();
        events.push(FlightEvent {
            at_millis,
            kind,
            shard: shard as u32,
            conn,
            detail,
        });
    }
    if !r.is_empty() {
        return Err(invalid("trailing bytes in flight block"));
    }
    Ok(events)
}

/// `SIGUSR1` handshake: the signal handler may only touch an atomic, so it
/// sets this flag and the accept loop performs the actual dump on its next
/// pass.
static DUMP_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Requests a blackbox dump. Async-signal-safe (a single atomic store).
pub fn request_dump() {
    DUMP_REQUESTED.store(true, Ordering::SeqCst);
}

/// Consumes a pending dump request, if any.
pub(crate) fn take_dump_request() -> bool {
    DUMP_REQUESTED.swap(false, Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<FlightEvent> {
        vec![
            FlightEvent {
                at_millis: 12,
                kind: FlightKind::DecodeError,
                shard: 0,
                conn: 7,
                detail: "bad varint".into(),
            },
            FlightEvent {
                at_millis: 99,
                kind: FlightKind::Shed,
                shard: 3,
                conn: 0,
                detail: "resident 4096 >= budget 4096".into(),
            },
            FlightEvent {
                at_millis: 100,
                kind: FlightKind::SlowTick,
                shard: u32::MAX,
                conn: 0,
                detail: "tick 250ms".into(),
            },
        ]
    }

    #[test]
    fn ring_evicts_oldest_past_capacity() {
        let rec = FlightRecorder::new(2);
        rec.record(FlightKind::Spill, 0, 1, "a".into());
        rec.record(FlightKind::Spill, 0, 2, "b".into());
        rec.record(FlightKind::Spill, 0, 3, "c".into());
        let events = rec.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].conn, 2);
        assert_eq!(events[1].conn, 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let events = sample_events();
        let bytes = encode_events(&events);
        assert_eq!(decode(&bytes).expect("roundtrip"), events);
        // an empty ring still carries a valid checksum
        let empty = encode_events(&[]);
        assert!(decode(&empty).expect("empty roundtrip").is_empty());
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut bytes = encode_events(&sample_events());
        // flip one body byte: the checksum must catch it
        bytes[3] ^= 0xff;
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // truncation is caught too (the trailer no longer matches)
        let bytes = encode_events(&sample_events());
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode(&[]).is_err());
        // trailing bytes shift the checksum window and fail
        let mut padded = encode_events(&sample_events());
        padded.push(0);
        assert!(decode(&padded).is_err());
    }

    #[test]
    fn dump_roundtrips_through_a_file() {
        let rec = FlightRecorder::new(8);
        rec.record(FlightKind::SessionAbort, 1, 42, "peer hung up".into());
        let dir = std::env::temp_dir().join(format!("twodprof-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blackbox.bin");
        rec.dump_to(&path).expect("dump");
        let events = decode(&std::fs::read(&path).unwrap()).expect("decode dump");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, FlightKind::SessionAbort);
        assert_eq!(events[0].conn, 42);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn display_is_humane() {
        let e = &sample_events()[1];
        let line = e.to_string();
        assert!(line.contains("shed"), "{line}");
        assert!(line.contains("shard 3"), "{line}");
        assert!(line.contains("budget"), "{line}");
    }
}
