//! Daemon configuration: the sectioned [`ServerConfig`] and its validating
//! [builder](ServerConfigBuilder).
//!
//! The config grew one flat field per PR until misconfiguration became
//! easy (a zero session table, a spill threshold above the memory budget
//! it is meant to protect). Knobs are now grouped by concern —
//! [`limits`](LimitsConfig), [`shards`](ShardConfig), stream, compute,
//! [`obs`](ObsConfig) —
//! and the builder's [`build`](ServerConfigBuilder::build) rejects zero or
//! mutually conflicting limits instead of letting the daemon run with
//! them. `ServerConfig::default()` remains valid and cheap (tests and
//! embedders construct it directly); the builder is the front door for
//! anything driven by flags.

use crate::compute::ComputeConfig;
use std::path::PathBuf;
use std::time::Duration;
use twodprof_stream::StreamConfig;

/// Admission and lifecycle ceilings, shared by every shard.
#[derive(Clone, Debug)]
pub struct LimitsConfig {
    /// Maximum concurrently open profiling sessions across all shards; a
    /// `Hello` beyond this is shed with `Busy`.
    pub max_sessions: usize,
    /// Per-session ceiling on ingested events; exceeding it earns a `Busy`
    /// reply and closes the session (backpressure, not silent truncation).
    pub max_events_per_session: u64,
    /// Connections (with or without an open session) idle longer than this
    /// are reaped by their owning shard.
    pub idle_timeout: Duration,
    /// On shutdown, how long to wait for in-flight sessions to `Finish`
    /// before force-closing their connections.
    pub drain_timeout: Duration,
    /// Drift events buffered per `watch` subscriber before the daemon sheds
    /// it (slow-consumer protection).
    pub max_subscriber_queue: usize,
    /// Retry-after hint attached to shed (`Busy`) replies, so well-behaved
    /// clients back off for a bounded, server-chosen interval instead of
    /// hammering or guessing.
    pub retry_after: Duration,
}

impl Default for LimitsConfig {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_events_per_session: u64::MAX,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            max_subscriber_queue: 1024,
            retry_after: Duration::from_millis(100),
        }
    }
}

/// Shard-pool geometry and memory policy.
///
/// Each shard owns `1/count` of the connections (by session id), a
/// resident-memory budget for recorded session traces, and a spill
/// directory where long sessions overflow to disk. Admission tiers hang
/// off the budget: below half the budget sessions get full service
/// (`Accept`), above half they are admitted without recording
/// (`Degrade`), and at the full budget they are refused (`Shed`).
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Shard event-loop threads. Each owns its slice of the session table.
    pub count: usize,
    /// Per-shard ceiling on resident recorded-trace bytes. Crossing half
    /// of it degrades new admissions (no recording); crossing all of it
    /// sheds them.
    pub memory_budget: usize,
    /// Per-session resident ceiling before the active recording buffer is
    /// spilled to a disk segment. Bounds any one session's RAM share.
    pub spill_threshold: usize,
    /// Directory for spill segments; `None` uses the system temp dir.
    /// Segments are deleted when their session ends.
    pub spill_dir: Option<PathBuf>,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            count: 4,
            memory_budget: 256 << 20,
            spill_threshold: 4 << 20,
            spill_dir: None,
        }
    }
}

/// Observability-plane knobs: HTTP exposition, metrics timeline, and the
/// flight recorder.
#[derive(Clone, Debug)]
pub struct ObsConfig {
    /// Bind address for the std-only HTTP/1.0 exposition listener
    /// (`/metrics`, `/healthz`, `/vars`); `None` (the default) disables it.
    pub http_addr: Option<String>,
    /// Retention of the metrics timeline, in recorded intervals.
    pub timeline_capacity: usize,
    /// Cadence of timeline snapshots while the HTTP listener is enabled.
    pub timeline_interval: Duration,
    /// Retention of the flight recorder, in events.
    pub blackbox_capacity: usize,
    /// Where a blackbox dump lands on panic or `SIGUSR1`; `None` uses
    /// `twodprofd-blackbox-<pid>.bin` in the system temp dir.
    pub blackbox_path: Option<PathBuf>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            http_addr: None,
            timeline_capacity: 256,
            timeline_interval: Duration::from_secs(1),
            blackbox_capacity: 256,
            blackbox_path: None,
        }
    }
}

/// Tuning knobs of a daemon instance, grouped by concern.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Admission and lifecycle ceilings.
    pub limits: LimitsConfig,
    /// Shard-pool geometry and memory policy.
    pub shards: ShardConfig,
    /// Streaming-profiler geometry (epoch length, window, hysteresis)
    /// shared by every program this daemon aggregates.
    pub stream: StreamConfig,
    /// Run the fabric compute service: accept `SubmitJob`/`CacheQuery`
    /// frames on sessionless connections and execute them on a worker pool
    /// backed by this daemon's engine + cache tier. `None` (the default)
    /// rejects job frames.
    pub compute: Option<ComputeConfig>,
    /// Keep a columnar recording of each session's branch stream so
    /// clients can `Resim` it under other predictors without re-streaming.
    /// Costs ~1.1 bytes per dynamic branch (bounded per session by
    /// [`ShardConfig::spill_threshold`]); disable for ingest-only
    /// deployments.
    pub record_sessions: bool,
    /// Suppress per-connection log lines on stderr.
    pub quiet: bool,
    /// Emit a stats summary on stderr at this cadence; `None` disables it.
    pub stats_interval: Option<Duration>,
    /// Observability plane: HTTP exposition, timeline, flight recorder.
    pub obs: ObsConfig,
}

impl ServerConfig {
    /// A validating builder over the default configuration.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            limits: LimitsConfig::default(),
            shards: ShardConfig::default(),
            stream: StreamConfig::default(),
            compute: None,
            record_sessions: true,
            quiet: false,
            stats_interval: None,
            obs: ObsConfig::default(),
        }
    }
}

/// Error from [`ServerConfigBuilder::build`]: a zero or conflicting limit,
/// with a message naming the offending knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ServerConfig`] whose [`build`](Self::build) validates the
/// combination of knobs. Every setter maps onto one field of one section.
#[derive(Clone, Debug)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// See [`LimitsConfig::max_sessions`].
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.config.limits.max_sessions = n;
        self
    }

    /// See [`LimitsConfig::max_events_per_session`].
    pub fn max_events_per_session(mut self, n: u64) -> Self {
        self.config.limits.max_events_per_session = n;
        self
    }

    /// See [`LimitsConfig::idle_timeout`].
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.config.limits.idle_timeout = d;
        self
    }

    /// See [`LimitsConfig::drain_timeout`]. Zero is valid: force-close
    /// immediately on shutdown.
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.config.limits.drain_timeout = d;
        self
    }

    /// See [`LimitsConfig::max_subscriber_queue`].
    pub fn max_subscriber_queue(mut self, n: usize) -> Self {
        self.config.limits.max_subscriber_queue = n;
        self
    }

    /// See [`LimitsConfig::retry_after`].
    pub fn retry_after(mut self, d: Duration) -> Self {
        self.config.limits.retry_after = d;
        self
    }

    /// See [`ShardConfig::count`].
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards.count = n;
        self
    }

    /// See [`ShardConfig::memory_budget`].
    pub fn shard_memory_budget(mut self, bytes: usize) -> Self {
        self.config.shards.memory_budget = bytes;
        self
    }

    /// See [`ShardConfig::spill_threshold`].
    pub fn spill_threshold(mut self, bytes: usize) -> Self {
        self.config.shards.spill_threshold = bytes;
        self
    }

    /// See [`ShardConfig::spill_dir`].
    pub fn spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.shards.spill_dir = Some(dir.into());
        self
    }

    /// See [`ServerConfig::stream`].
    pub fn stream(mut self, stream: StreamConfig) -> Self {
        self.config.stream = stream;
        self
    }

    /// See [`ServerConfig::compute`].
    pub fn compute(mut self, compute: ComputeConfig) -> Self {
        self.config.compute = Some(compute);
        self
    }

    /// See [`ServerConfig::record_sessions`].
    pub fn record_sessions(mut self, on: bool) -> Self {
        self.config.record_sessions = on;
        self
    }

    /// See [`ServerConfig::quiet`].
    pub fn quiet(mut self, on: bool) -> Self {
        self.config.quiet = on;
        self
    }

    /// See [`ServerConfig::stats_interval`].
    pub fn stats_interval(mut self, interval: Option<Duration>) -> Self {
        self.config.stats_interval = interval;
        self
    }

    /// See [`ObsConfig::http_addr`].
    pub fn http_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.obs.http_addr = Some(addr.into());
        self
    }

    /// See [`ObsConfig::timeline_capacity`].
    pub fn timeline_capacity(mut self, n: usize) -> Self {
        self.config.obs.timeline_capacity = n;
        self
    }

    /// See [`ObsConfig::timeline_interval`].
    pub fn timeline_interval(mut self, d: Duration) -> Self {
        self.config.obs.timeline_interval = d;
        self
    }

    /// See [`ObsConfig::blackbox_capacity`].
    pub fn blackbox_capacity(mut self, n: usize) -> Self {
        self.config.obs.blackbox_capacity = n;
        self
    }

    /// See [`ObsConfig::blackbox_path`].
    pub fn blackbox_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.obs.blackbox_path = Some(path.into());
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on any zero limit that would make the daemon
    /// useless (sessions, events, queues, timeouts, shard count, budgets)
    /// or on conflicting limits (a spill threshold that exceeds the memory
    /// budget it is supposed to keep bounded).
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = &self.config;
        if c.limits.max_sessions == 0 {
            return Err(ConfigError("limits.max_sessions must be > 0".into()));
        }
        if c.limits.max_events_per_session == 0 {
            return Err(ConfigError(
                "limits.max_events_per_session must be > 0".into(),
            ));
        }
        if c.limits.idle_timeout.is_zero() {
            return Err(ConfigError(
                "limits.idle_timeout must be > 0 (every connection would reap instantly)".into(),
            ));
        }
        if c.limits.max_subscriber_queue == 0 {
            return Err(ConfigError(
                "limits.max_subscriber_queue must be > 0".into(),
            ));
        }
        if c.shards.count == 0 {
            return Err(ConfigError("shards.count must be > 0".into()));
        }
        if c.shards.memory_budget == 0 {
            return Err(ConfigError("shards.memory_budget must be > 0".into()));
        }
        if c.shards.spill_threshold == 0 {
            return Err(ConfigError("shards.spill_threshold must be > 0".into()));
        }
        if c.obs.timeline_capacity == 0 {
            return Err(ConfigError("obs.timeline_capacity must be > 0".into()));
        }
        if c.obs.timeline_interval.is_zero() {
            return Err(ConfigError(
                "obs.timeline_interval must be > 0 (the recorder would spin)".into(),
            ));
        }
        if c.obs.blackbox_capacity == 0 {
            return Err(ConfigError("obs.blackbox_capacity must be > 0".into()));
        }
        if c.shards.spill_threshold > c.shards.memory_budget {
            return Err(ConfigError(format!(
                "shards.spill_threshold ({}) exceeds shards.memory_budget ({}): sessions could \
                 never spill before the shard sheds",
                c.shards.spill_threshold, c.shards.memory_budget
            )));
        }
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_passes_validation() {
        assert!(ServerConfig::builder().build().is_ok());
    }

    #[test]
    fn builder_sets_every_section() {
        let config = ServerConfig::builder()
            .max_sessions(7)
            .max_events_per_session(1000)
            .idle_timeout(Duration::from_secs(5))
            .drain_timeout(Duration::ZERO)
            .max_subscriber_queue(16)
            .retry_after(Duration::from_millis(250))
            .shards(2)
            .shard_memory_budget(1 << 20)
            .spill_threshold(1 << 16)
            .spill_dir("/tmp/spill")
            .record_sessions(false)
            .quiet(true)
            .stats_interval(Some(Duration::from_secs(1)))
            .http_addr("127.0.0.1:9090")
            .timeline_capacity(32)
            .timeline_interval(Duration::from_millis(500))
            .blackbox_capacity(64)
            .blackbox_path("/tmp/blackbox.bin")
            .build()
            .unwrap();
        assert_eq!(config.limits.max_sessions, 7);
        assert_eq!(config.limits.max_events_per_session, 1000);
        assert_eq!(config.limits.retry_after, Duration::from_millis(250));
        assert_eq!(config.shards.count, 2);
        assert_eq!(config.shards.memory_budget, 1 << 20);
        assert_eq!(config.shards.spill_threshold, 1 << 16);
        assert_eq!(
            config.shards.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/spill"))
        );
        assert!(!config.record_sessions);
        assert!(config.quiet);
        assert_eq!(config.obs.http_addr.as_deref(), Some("127.0.0.1:9090"));
        assert_eq!(config.obs.timeline_capacity, 32);
        assert_eq!(config.obs.timeline_interval, Duration::from_millis(500));
        assert_eq!(config.obs.blackbox_capacity, 64);
        assert_eq!(
            config.obs.blackbox_path.as_deref(),
            Some(std::path::Path::new("/tmp/blackbox.bin"))
        );
    }

    #[test]
    fn zero_limits_are_rejected() {
        assert!(ServerConfig::builder().max_sessions(0).build().is_err());
        assert!(ServerConfig::builder()
            .max_events_per_session(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .idle_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .max_subscriber_queue(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder().shards(0).build().is_err());
        assert!(ServerConfig::builder()
            .shard_memory_budget(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder().spill_threshold(0).build().is_err());
        assert!(ServerConfig::builder()
            .timeline_capacity(0)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .timeline_interval(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServerConfig::builder()
            .blackbox_capacity(0)
            .build()
            .is_err());
    }

    #[test]
    fn conflicting_spill_threshold_is_rejected() {
        let err = ServerConfig::builder()
            .shard_memory_budget(1 << 20)
            .spill_threshold(2 << 20)
            .build()
            .unwrap_err();
        assert!(err.0.contains("spill_threshold"), "{err}");
    }

    #[test]
    fn drain_timeout_zero_is_allowed() {
        assert!(ServerConfig::builder()
            .drain_timeout(Duration::ZERO)
            .build()
            .is_ok());
    }
}
